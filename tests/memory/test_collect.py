"""Collect is not linearizable; its reads are — the Section 3 analogy."""

import pytest

from repro.analysis.linearizability import (
    CompletedOperation,
    RegisterSpec,
    SnapshotSpec,
    check_linearizable,
    history_from_trace,
)
from repro.errors import ModelError
from repro.memory import AfekSnapshot
from repro.memory.collect import Collect
from repro.runtime import AdversarialScheduler, RandomScheduler, System


class TestBasics:
    def test_store_then_collect(self):
        obj = Collect("C", writers=[0, 1])
        system = System()

        def body(proc):
            yield from obj.store(proc.pid, f"v{proc.pid}")
            return (yield from obj.collect(proc.pid))

        for _ in range(2):
            system.add_process(body)
        result = system.run(RandomScheduler(3))
        for view in result.outputs.values():
            assert len(view) == 2

    def test_store_restricted_to_writers(self):
        obj = Collect("C", writers=[0])
        with pytest.raises(ModelError):
            list(obj.store(5, "v"))

    def test_duplicate_writers_rejected(self):
        with pytest.raises(ModelError):
            Collect("C", writers=[1, 1])

    def test_space_is_one_register_per_writer(self):
        assert Collect("C", writers=[0, 1, 2]).register_count() == 3


def new_old_inversion_run(make_object, collect_method, store_method):
    """The inversion schedule: the collector reads R1 before w1's write,
    then reads R2 after w2's write — where w1's write entirely precedes
    w2's.  Returns (system, collector output)."""
    system = System()
    obj = make_object()

    def collector(proc):
        return (yield from collect_method(obj, proc.pid))

    def writer(value):
        def body(proc):
            yield from store_method(obj, proc.pid, value)

        return body

    system.add_process(collector, pid=0)
    system.add_process(writer("a"), pid=1)
    system.add_process(writer("b"), pid=2)
    # pid 0 reads R[1]; pid 1 writes "a"; pid 2 writes "b"; pid 0 reads R[2].
    script = [0, 1, 2, 0] + [0] * 30
    result = system.run(AdversarialScheduler(script), max_steps=10_000)
    assert result.completed
    return system, result.outputs[0]


class TestNewOldInversion:
    def test_collect_exhibits_the_inversion(self):
        system, view = new_old_inversion_run(
            lambda: Collect("C", writers=[1, 2]),
            lambda obj, pid: obj.collect(pid),
            lambda obj, pid, v: obj.store(pid, v),
        )
        # The collect saw w2's later write but missed w1's earlier one.
        assert view == (None, "b")

    def test_collect_history_is_not_linearizable_as_snapshot(self):
        system, view = new_old_inversion_run(
            lambda: Collect("C", writers=[1, 2]),
            lambda obj, pid: obj.collect(pid),
            lambda obj, pid, v: obj.store(pid, v),
        )
        history = history_from_trace(system.trace, "C")
        ok, _witness = check_linearizable(history, SnapshotSpec(2))
        assert not ok  # collect-as-scan: rejected

    def test_individual_reads_are_linearizable(self):
        """Re-expressed as register reads/writes, the same execution is
        perfectly fine — only the composite operation is at fault."""
        system, _view = new_old_inversion_run(
            lambda: Collect("C", writers=[1, 2]),
            lambda obj, pid: obj.collect(pid),
            lambda obj, pid, v: obj.store(pid, v),
        )
        for register_name in ("C.R[1]", "C.R[2]"):
            ops = []
            for event in system.trace.steps():
                if event.obj_name == register_name:
                    ops.append(
                        CompletedOperation(
                            op_id=f"{register_name}#{event.seq}",
                            pid=event.pid,
                            op=event.op,
                            args=event.args,
                            result=event.result,
                            start=event.seq,
                            end=event.seq,
                        )
                    )
            ok, _ = check_linearizable(ops, RegisterSpec())
            assert ok

    def test_afek_snapshot_immune_under_same_schedule(self):
        """The [AAD+93] construction spends extra steps (double collects)
        precisely to rule the inversion out."""
        system = System()
        snapshot = AfekSnapshot("S", writers=[1, 2], initial=None)

        def collector(proc):
            return (yield from snapshot.scan(proc.pid))

        def writer(value):
            def body(proc):
                yield from snapshot.update(proc.pid, value)

            return body

        system.add_process(collector, pid=0)
        system.add_process(writer("a"), pid=1)
        system.add_process(writer("b"), pid=2)
        # One collector read, then each writer's full update (scan = two
        # collects of 2 reads, plus the write = 5 steps); the collector
        # finishes under the round-robin continuation.
        script = [0] + [1] * 5 + [2] * 5
        result = system.run(
            AdversarialScheduler(script), max_steps=10_000
        )
        assert result.completed
        history = history_from_trace(system.trace, "S")
        ok, _witness = check_linearizable(history, SnapshotSpec(2))
        assert ok
