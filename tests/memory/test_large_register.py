"""The composed large-register-from-binary-registers construction.

:class:`~repro.memory.LargeRegister` is a *regular* register, not an
atomic one: under a single writer, every read must return the value of
an overlapping or immediately preceding write, but two sequential reads
concurrent with one write may legally observe new-then-old.  The
regularity harness here drives writer and reader generators through the
real scheduler and checks exactly that from the trace markers — plus
the structural claims: ℓ binary registers of space, single-writer
enforcement, and the opposite-sweep-directions invariant that a read
never falls off the bit array.
"""

import pytest

from repro.analysis.linearizability import history_from_trace
from repro.errors import ModelError
from repro.memory import LargeRegister
from repro.runtime import RandomScheduler, RoundRobinScheduler, System


def run_system(bodies, scheduler=None, max_steps=100_000):
    system = System()
    for body in bodies:
        system.add_process(body)
    result = system.run(
        scheduler or RoundRobinScheduler(), max_steps=max_steps
    )
    assert result.completed, "run did not complete"
    return system, result


class TestSequential:
    def test_fresh_register_reads_initial(self):
        reg = LargeRegister("R", domain=4, writer=0, initial=2)

        def body(proc):
            return (yield from reg.read(proc.pid))

        _, result = run_system([body])
        assert result.outputs[0] == 2

    def test_write_then_read(self):
        reg = LargeRegister("R", domain=4, writer=0)

        def body(proc):
            yield from reg.write(proc.pid, 3)
            return (yield from reg.read(proc.pid))

        _, result = run_system([body])
        assert result.outputs[0] == 3
        # Set-then-clear-downward: bit 3 set, everything below cleared.
        assert reg.view() == (0, 0, 0, 1)

    def test_space_is_domain_binary_registers(self):
        assert LargeRegister("R", domain=7, writer=0).register_count() == 7

    def test_single_writer_enforced(self):
        reg = LargeRegister("R", domain=2, writer=0)
        with pytest.raises(ModelError):
            list(reg.write(1, 1))

    def test_out_of_domain_write_rejected(self):
        reg = LargeRegister("R", domain=2, writer=0)
        with pytest.raises(ModelError):
            list(reg.write(0, 2))

    def test_invalid_construction_rejected(self):
        with pytest.raises(ModelError):
            LargeRegister("R", domain=0, writer=0)
        with pytest.raises(ModelError):
            LargeRegister("R", domain=2, writer=0, initial=9)


class TestRegularity:
    """Every read returns an overlapping or latest-preceding write."""

    @pytest.mark.parametrize("seed", range(20))
    def test_reads_are_regular_under_random_interleavings(self, seed):
        reg = LargeRegister("R", domain=5, writer=0, initial=0)
        writes = [3, 1, 4, 2]

        def writer(proc):
            for value in writes:
                yield from reg.write(proc.pid, value)

        def reader(proc):
            for _ in range(6):
                yield from reg.read(proc.pid)

        system, _result = run_system([writer, reader], RandomScheduler(seed))
        history = history_from_trace(system.trace, "R")
        write_ops = [op for op in history if op.op == "write"]
        reads = [op for op in history if op.op == "read"]
        assert len(reads) == 6
        for read in reads:
            # Legal values: any write overlapping the read, plus the
            # latest write that completed before the read began — or
            # the initial value if no write precedes it.
            legal = set()
            preceding = [w for w in write_ops if w.end < read.start]
            if preceding:
                legal.add(max(preceding, key=lambda w: w.end).args[0])
            else:
                legal.add(0)
            legal.update(
                w.args[0] for w in write_ops
                if w.start < read.end and w.end > read.start
            )
            assert read.result in legal, (
                f"read returned {read.result} outside legal set {legal} "
                f"(seed {seed})"
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_reads_never_fall_off_the_array(self, seed):
        """The safe sweep order's key invariant: an upward probe always
        crosses a set bit, so ``read`` always returns."""
        reg = LargeRegister("R", domain=4, writer=0, initial=3)

        def writer(proc):
            for value in (0, 2, 1):
                yield from reg.write(proc.pid, value)

        def reader(proc):
            for _ in range(8):
                yield from reg.read(proc.pid)

        _, result = run_system([writer, reader], RandomScheduler(seed))
        assert result.completed
