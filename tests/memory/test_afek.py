"""Tests for the [AAD+93] snapshot constructions from registers.

Full linearizability is established in tests/analysis/test_linearizability.py
via the checker; here we test structural and behavioural properties directly:
sequential correctness, self-inclusion, monotonicity of views, and
wait-freedom under adversarial interleavings.
"""

import pytest

from repro.errors import ModelError
from repro.memory import AfekSnapshot
from repro.memory.afek import AfekMWSnapshot
from repro.runtime import RandomScheduler, RoundRobinScheduler, System


def run_system(bodies, scheduler=None, max_steps=100_000):
    sys_ = System()
    for body in bodies:
        sys_.add_process(body)
    result = sys_.run(scheduler or RoundRobinScheduler(), max_steps=max_steps)
    assert result.completed, "run did not complete"
    return sys_, result


class TestAfekSequential:
    def test_scan_of_fresh_object(self):
        snap = AfekSnapshot("S", writers=[0, 1], initial=0)

        def body(proc):
            return (yield from snap.scan(proc.pid))

        _, result = run_system([body])
        assert result.outputs[0] == (0, 0)

    def test_update_visible_to_later_scan(self):
        snap = AfekSnapshot("S", writers=[0, 1], initial=None)

        def body(proc):
            yield from snap.update(proc.pid, "mine")
            return (yield from snap.scan(proc.pid))

        _, result = run_system([body])
        assert result.outputs[0][0] == "mine"

    def test_non_writer_update_rejected(self):
        snap = AfekSnapshot("S", writers=[0])
        with pytest.raises(ModelError):
            list(snap.update(5, "v"))

    def test_space_is_one_register_per_writer(self):
        assert AfekSnapshot("S", writers=[0, 1, 2]).register_count() == 3

    def test_duplicate_writers_rejected(self):
        with pytest.raises(ModelError):
            AfekSnapshot("S", writers=[0, 0])


class TestAfekConcurrent:
    @pytest.mark.parametrize("seed", range(12))
    def test_scans_contain_own_completed_updates(self, seed):
        """A scan after my update must reflect it (or a later one)."""
        writers = [0, 1, 2, 3]
        snap = AfekSnapshot("S", writers=writers, initial=0)

        def body(proc):
            yield from snap.update(proc.pid, proc.pid + 100)
            view = yield from snap.scan(proc.pid)
            return view

        _, result = run_system(
            [body] * len(writers), RandomScheduler(seed)
        )
        for idx, pid in enumerate(writers):
            assert result.outputs[pid][idx] == pid + 100

    @pytest.mark.parametrize("seed", range(12))
    def test_views_are_comparable_per_component(self, seed):
        """Any returned view's components come from real updates."""
        writers = [0, 1, 2]
        snap = AfekSnapshot("S", writers=writers, initial=0)
        legal = {0}
        for pid in writers:
            legal.add(pid + 100)

        def body(proc):
            yield from snap.update(proc.pid, proc.pid + 100)
            return (yield from snap.scan(proc.pid))

        _, result = run_system([body] * 3, RandomScheduler(seed))
        for view in result.outputs.values():
            assert set(view) <= legal

    def test_wait_free_bounded_steps(self):
        """Every operation finishes within O(n^2) primitive steps."""
        writers = list(range(5))
        snap = AfekSnapshot("S", writers=writers, initial=0)

        def body(proc):
            for round_no in range(3):
                yield from snap.update(proc.pid, round_no)
                yield from snap.scan(proc.pid)

        sys_, result = run_system([body] * 5, RandomScheduler(99))
        # 5 procs x 3 rounds x (update+scan); generous bound on steps.
        assert result.steps < 5 * 3 * 2 * (5 * 5 * 10)


class TestAfekMultiWriter:
    def test_sequential_update_scan(self):
        snap = AfekMWSnapshot("MW", components=3)

        def body(proc):
            yield from snap.update(proc.pid, 1, "hello")
            return (yield from snap.scan(proc.pid))

        _, result = run_system([body])
        assert result.outputs[0] == (None, "hello", None)

    def test_space_is_m_registers(self):
        assert AfekMWSnapshot("MW", components=4).register_count() == 4

    def test_component_range_checked(self):
        snap = AfekMWSnapshot("MW", components=2)
        with pytest.raises(ModelError):
            list(snap.update(0, 2, "v"))

    def test_at_least_one_component(self):
        with pytest.raises(ModelError):
            AfekMWSnapshot("MW", components=0)

    @pytest.mark.parametrize("seed", range(10))
    def test_last_writer_wins_per_component(self, seed):
        """After all updates complete, a quiescent scan sees the last write
        in real-time order for each component."""
        snap = AfekMWSnapshot("MW", components=2, initial="init")

        def writer(proc):
            yield from snap.update(proc.pid, proc.pid % 2, f"w{proc.pid}")

        sys_ = System()
        for _ in range(4):
            sys_.add_process(writer)
        result = sys_.run(RandomScheduler(seed))
        assert result.completed

        def reader(proc):
            return (yield from snap.scan(proc.pid))

        reader_proc = sys_.add_process(reader, pid=100)
        result = sys_.run(RoundRobinScheduler())
        view = sys_.processes[100].output
        assert view[0] in {"w0", "w2"}
        assert view[1] in {"w1", "w3"}

    @pytest.mark.parametrize("seed", range(10))
    def test_concurrent_scans_terminate(self, seed):
        snap = AfekMWSnapshot("MW", components=3)

        def body(proc):
            for round_no in range(2):
                yield from snap.update(proc.pid, round_no % 3, proc.pid)
                yield from snap.scan(proc.pid)

        _, result = run_system([body] * 4, RandomScheduler(seed))
        assert result.completed
