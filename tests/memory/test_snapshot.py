"""Unit tests for native atomic snapshot objects."""

import pytest

from repro.errors import ModelError
from repro.memory import AtomicSnapshot, SingleWriterSnapshot


class TestAtomicSnapshot:
    def test_initial_view(self):
        snap = AtomicSnapshot("M", components=3, initial=None)
        assert snap.apply(0, "scan", ()) == (None, None, None)

    def test_update_then_scan(self):
        snap = AtomicSnapshot("M", components=3)
        snap.apply(0, "update", (1, "v"))
        assert snap.apply(1, "scan", ()) == (None, "v", None)

    def test_any_process_updates_any_component(self):
        snap = AtomicSnapshot("M", components=2)
        snap.apply(5, "update", (0, "a"))
        snap.apply(9, "update", (0, "b"))
        assert snap.apply(0, "scan", ()) == ("b", None)

    def test_out_of_range_component(self):
        snap = AtomicSnapshot("M", components=2)
        with pytest.raises(ModelError):
            snap.apply(0, "update", (2, "v"))
        with pytest.raises(ModelError):
            snap.apply(0, "update", (-1, "v"))

    def test_space_is_m(self):
        assert AtomicSnapshot("M", components=7).register_count() == 7

    def test_at_least_one_component(self):
        with pytest.raises(ModelError):
            AtomicSnapshot("M", components=0)

    def test_unknown_operation(self):
        with pytest.raises(ModelError):
            AtomicSnapshot("M", components=1).apply(0, "collect", ())

    def test_view_helper_matches_scan(self):
        snap = AtomicSnapshot("M", components=2)
        snap.apply(0, "update", (0, 1))
        assert snap.view() == snap.apply(0, "scan", ())


class TestSingleWriterSnapshot:
    def test_writers_own_their_slots(self):
        snap = SingleWriterSnapshot("H", writers=[10, 20, 30])
        assert snap.slot_of(20) == 1
        snap.apply(20, "update", (1, "x"))
        assert snap.apply(10, "scan", ())[1] == "x"

    def test_foreign_component_update_rejected(self):
        snap = SingleWriterSnapshot("H", writers=[10, 20])
        with pytest.raises(ModelError):
            snap.apply(10, "update", (1, "x"))

    def test_non_writer_update_rejected(self):
        snap = SingleWriterSnapshot("H", writers=[10, 20])
        with pytest.raises(ModelError):
            snap.apply(99, "update", (0, "x"))

    def test_non_writer_may_scan(self):
        snap = SingleWriterSnapshot("H", writers=[10])
        assert snap.apply(99, "scan", ()) == (None,)

    def test_unknown_pid_slot_raises(self):
        snap = SingleWriterSnapshot("H", writers=[10])
        with pytest.raises(ModelError):
            snap.slot_of(11)

    def test_duplicate_writers_rejected(self):
        with pytest.raises(ModelError):
            SingleWriterSnapshot("H", writers=[1, 1])
