"""Cross-primitive conformance harness for the memory substrate.

Every exported base object — registers, the read-modify-write cells, and
the snapshot flavours — must honour the same contract the analysis and
certification layers assume: one ``apply`` call is one atomic step, each
operation's return value follows the documented convention (writes echo
the value, read-modify-writes return the *old* value), a fresh object
reads its initial value, unknown operations are
:class:`~repro.errors.ModelError`, and the object pickles (campaign
workers ship objects across process boundaries).

The harness is a table of :class:`Case` descriptors, one per primitive,
so adding a primitive to :mod:`repro.memory` without a row here is a
conscious omission, not an accident: ``test_every_primitive_has_a_case``
fails on any exported object type the table misses.
"""

import pickle

import pytest

import repro.memory as memory_module
from repro.errors import ModelError
from repro.memory import (
    AtomicSnapshot,
    CompareAndSwap,
    Register,
    RMWSnapshot,
    Swap,
)

# Aliased so pytest does not try to collect the class as a test suite.
TAS = memory_module.TestAndSet


class Case:
    """One primitive's binding to the shared conformance contract.

    ``step(obj, value)`` applies the primitive's canonical mutating
    operation installing ``value`` (TAS always installs 1) as a single
    ``apply`` call; ``expected_result`` / ``expected_read`` state the
    contract for that step's return value and the contents afterwards.
    """

    def __init__(self, name, cls, make, read, step,
                 expected_result, expected_read, initial_read):
        self.name = name
        self.cls = cls
        self.make = make              # (initial) -> object
        self.read = read              # (obj) -> observable contents
        self.step = step              # (obj, value) -> result
        self.expected_result = expected_result  # (old, value) -> result
        self.expected_read = expected_read      # (old, value) -> contents
        self.initial_read = initial_read        # (initial) -> contents

    def __repr__(self):
        return self.name


def _cell_read(obj):
    return obj.apply(0, "read", ())


def _scan(obj):
    return obj.apply(0, "scan", ())


CASES = [
    Case(
        "register", Register,
        make=lambda initial: Register("r", initial=initial),
        read=_cell_read,
        step=lambda obj, value: obj.apply(0, "write", (value,)),
        expected_result=lambda old, value: value,
        expected_read=lambda old, value: value,
        initial_read=lambda initial: initial,
    ),
    Case(
        "swap", Swap,
        make=lambda initial: Swap("s", initial=initial),
        read=_cell_read,
        step=lambda obj, value: obj.apply(0, "swap", (value,)),
        expected_result=lambda old, value: old,
        expected_read=lambda old, value: value,
        initial_read=lambda initial: initial,
    ),
    Case(
        "test-and-set", TAS,
        make=lambda initial: TAS("t", initial=initial),
        read=_cell_read,
        step=lambda obj, value: obj.apply(0, "test_and_set", ()),
        expected_result=lambda old, value: old,
        expected_read=lambda old, value: 1,
        initial_read=lambda initial: initial,
    ),
    Case(
        "compare-and-swap", CompareAndSwap,
        make=lambda initial: CompareAndSwap("c", initial=initial),
        read=_cell_read,
        # The canonical step CASes over whatever is there, so it
        # succeeds; the expectation peeks at ``.value`` rather than
        # issuing a read so the step stays a single model step.
        step=lambda obj, value: obj.apply(
            0, "compare_and_swap", (obj.value, value)
        ),
        expected_result=lambda old, value: old,
        expected_read=lambda old, value: value,
        initial_read=lambda initial: initial,
    ),
    Case(
        "snapshot", AtomicSnapshot,
        make=lambda initial: AtomicSnapshot("M", 3, initial=initial),
        read=_scan,
        step=lambda obj, value: obj.apply(0, "update", (1, value)),
        expected_result=lambda old, value: None,
        expected_read=lambda old, value: (old[0], value, old[2]),
        initial_read=lambda initial: (initial,) * 3,
    ),
    Case(
        "rmw-snapshot", RMWSnapshot,
        make=lambda initial: RMWSnapshot("M", 3, initial=initial),
        read=_scan,
        step=lambda obj, value: obj.apply(0, "rmw", (1, "swap", (value,))),
        expected_result=lambda old, value: old[1],
        expected_read=lambda old, value: (old[0], value, old[2]),
        initial_read=lambda initial: (initial,) * 3,
    ),
]

IDS = [case.name for case in CASES]


def _step_counters(obj):
    """Sum of the object's per-operation step counters."""
    return sum(
        getattr(obj, counter, 0)
        for counter in ("read_count", "write_count", "rmw_count",
                        "scan_count", "update_count")
    )


@pytest.mark.parametrize("case", CASES, ids=IDS)
class TestPrimitiveContract:
    def test_fresh_object_reads_initial(self, case):
        obj = case.make(7)
        assert case.read(obj) == case.initial_read(7)

    def test_mutating_step_is_one_atomic_application(self, case):
        obj = case.make(0)
        before = _step_counters(obj)
        case.step(obj, 1)
        assert _step_counters(obj) == before + 1

    def test_step_return_value_convention(self, case):
        obj = case.make(0)
        old = case.read(obj)
        assert case.step(obj, 1) == case.expected_result(old, 1)

    def test_step_installs_the_new_contents(self, case):
        obj = case.make(0)
        old = case.read(obj)
        case.step(obj, 1)
        assert case.read(obj) == case.expected_read(old, 1)

    def test_two_steps_chain(self, case):
        """The second step observes the first: no lost updates."""
        obj = case.make(0)
        case.step(obj, 1)
        mid = case.read(obj)
        result = case.step(obj, 1)
        assert result == case.expected_result(mid, 1)

    def test_unknown_operation_rejected(self, case):
        with pytest.raises(ModelError):
            case.make(0).apply(0, "no-such-operation", ())

    def test_register_count_positive(self, case):
        assert case.make(0).register_count() >= 1

    def test_pickle_round_trip_preserves_contents(self, case):
        obj = case.make(0)
        case.step(obj, 1)
        copy = pickle.loads(pickle.dumps(obj))
        assert case.read(copy) == case.read(obj)
        assert copy.register_count() == obj.register_count()

    def test_pickled_copy_is_independent(self, case):
        obj = case.make(0)
        copy = pickle.loads(pickle.dumps(obj))
        case.step(copy, 1)
        assert case.read(obj) == case.initial_read(0)


def test_every_primitive_has_a_case():
    """Every exported memory class with atomic ``apply`` steps is covered.

    Composed objects (AfekSnapshot, CollectObject, LargeRegister, the
    register arrays) take *multiple* base-object steps per high-level
    operation, so the single-step contract does not apply to them — they
    are exercised by their own linearizability / regularity suites.
    """
    composed = {
        "AfekSnapshot", "CollectObject", "LargeRegister",
        "RegisterArray", "SingleWriterRegisterArray",
    }
    covered = {case.cls.__name__ for case in CASES}
    covered.add("SingleWriterSnapshot")  # AtomicSnapshot + access control
    exported = {
        name for name in memory_module.__all__
        if isinstance(getattr(memory_module, name), type)
        and hasattr(getattr(memory_module, name), "apply")
    }
    assert exported - composed == covered


class TestTASBitSpecifics:
    def test_reset_restores_initial(self):
        bit = TAS("t")
        assert bit.apply(0, "test_and_set", ()) == 0
        assert bit.apply(1, "reset", ()) == 0
        assert bit.apply(2, "test_and_set", ()) == 0

    def test_second_winner_sees_set_bit(self):
        bit = TAS("t")
        assert bit.apply(0, "test_and_set", ()) == 0
        assert bit.apply(1, "test_and_set", ()) == 1

    def test_arguments_rejected(self):
        with pytest.raises(ModelError):
            TAS("t").apply(0, "test_and_set", (1,))
        with pytest.raises(ModelError):
            TAS("t").apply(0, "reset", (1,))


class TestCompareAndSwapSpecifics:
    def test_failed_cas_leaves_contents(self):
        cell = CompareAndSwap("c", initial=5)
        assert cell.apply(0, "compare_and_swap", (4, 9)) == 5
        assert cell.apply(0, "read", ()) == 5

    def test_success_is_old_equals_expected(self):
        cell = CompareAndSwap("c", initial=None)
        assert cell.apply(0, "compare_and_swap", (None, "x")) is None
        assert cell.apply(1, "compare_and_swap", (None, "y")) == "x"
        assert cell.apply(1, "read", ()) == "x"
