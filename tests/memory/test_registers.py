"""Unit tests for registers and register arrays."""

import pytest

from repro.errors import ModelError
from repro.memory import Register, RegisterArray


class TestRegister:
    def test_initial_value(self):
        assert Register("r", initial=7).apply(0, "read", ()) == 7

    def test_write_then_read(self):
        reg = Register("r")
        assert reg.apply(0, "write", (42,)) == 42  # writes return the value
        assert reg.apply(1, "read", ()) == 42

    def test_counts(self):
        reg = Register("r")
        reg.apply(0, "write", (1,))
        reg.apply(0, "read", ())
        reg.apply(0, "read", ())
        assert (reg.write_count, reg.read_count) == (1, 2)

    def test_single_writer_enforced(self):
        reg = Register("r", writer=3)
        reg.apply(3, "write", (1,))
        with pytest.raises(ModelError):
            reg.apply(4, "write", (2,))

    def test_single_reader_enforced(self):
        reg = Register("r", reader=3)
        reg.apply(3, "read", ())
        with pytest.raises(ModelError):
            reg.apply(4, "read", ())

    def test_unknown_operation(self):
        with pytest.raises(ModelError):
            Register("r").apply(0, "cas", (0, 1))

    def test_register_count_is_one(self):
        assert Register("r").register_count() == 1


class TestRegisterArray:
    def test_unwritten_cell_reads_initial(self):
        arr = RegisterArray("L", initial="bottom")
        assert arr.apply(0, "read", (100,)) == "bottom"

    def test_write_then_read_cell(self):
        arr = RegisterArray("L")
        arr.apply(0, "write", (5, "x"))
        assert arr.apply(1, "read", (5,)) == "x"
        assert arr.apply(1, "read", (6,)) is None

    def test_lazy_space_accounting(self):
        arr = RegisterArray("L")
        assert arr.register_count() == 0
        arr.apply(0, "write", (0, "a"))
        arr.apply(0, "write", (999, "b"))
        arr.apply(0, "write", (0, "c"))  # rewrite: no new cell
        assert arr.register_count() == 2

    def test_reads_do_not_allocate(self):
        arr = RegisterArray("L")
        arr.apply(0, "read", (123,))
        assert arr.register_count() == 0

    def test_single_writer_enforced(self):
        arr = RegisterArray("L", writer=1)
        arr.apply(1, "write", (0, "v"))
        with pytest.raises(ModelError):
            arr.apply(2, "write", (0, "v"))

    def test_single_reader_enforced(self):
        arr = RegisterArray("L", reader=1)
        arr.apply(1, "read", (0,))
        with pytest.raises(ModelError):
            arr.apply(2, "read", (0,))

    def test_unknown_operation(self):
        with pytest.raises(ModelError):
            RegisterArray("L").apply(0, "swap", (0, 1))
