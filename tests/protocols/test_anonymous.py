"""The anonymous-racing case study: folklore is wrong, exhaustively.

The natural anonymous multi-writer sweep algorithm — the first thing
anyone writes when asked for anonymous consensus on n registers — is NOT
consensus.  The bounded-exhaustive model checker proves it at every small
scope, with concrete, shrinkable counterexamples.  The attack shape is the
covering one: a process that witnessed a full clean sweep of the losing
value parks a higher-round write, lets the other camp decide, then
overwrites and drags the system to the other value.  Raising the decision
round only shifts the attack up a round.

This is a deliberate *negative* reproduction artifact: it quantifies why
the register-optimal anonymous constructions of [Zhu15, BRS15] — which the
paper cites as the upper bounds its lower bound chases — are nontrivial.
"""

import pytest

from repro.analysis import explore_protocol, check_obstruction_freedom
from repro.analysis.shrink import shrink_schedule, violates
from repro.protocols import KSetAgreementTask
from repro.protocols.anonymous import AnonymousSweepConsensus, _stronger
from repro.errors import ValidationError

TASK = KSetAgreementTask(1)


class TestAdoptionOrder:
    def test_higher_round_wins(self):
        assert _stronger((2, 9), (1, 0)) == (2, 9)

    def test_smaller_value_wins_at_equal_round(self):
        assert _stronger((2, 1), (2, 0)) == (2, 0)

    def test_reflexive(self):
        assert _stronger((1, 1), (1, 1)) == (1, 1)


class TestStructure:
    def test_validation(self):
        with pytest.raises(ValidationError):
            AnonymousSweepConsensus(0)
        with pytest.raises(ValidationError):
            AnonymousSweepConsensus(2, decision_round=0)
        with pytest.raises(ValidationError):
            AnonymousSweepConsensus(2, m=0)

    def test_anonymity(self):
        """Identical inputs give identical states — the anonymity condition."""
        protocol = AnonymousSweepConsensus(3)
        a = protocol.initial_state(0, "v")
        b = protocol.initial_state(2, "v")
        assert a == b
        view = ((1, "v"), None, None)
        assert protocol.advance(a, view) == protocol.advance(b, view)

    def test_solo_run_decides_own_input(self):
        from repro.protocols.base import solo_run

        protocol = AnonymousSweepConsensus(2, m=2)
        state = protocol.initial_state(0, 7)
        _s, _c, _p, decision = solo_run(protocol, state, (None, None))
        assert decision == 7

    def test_agreeing_inputs_are_safe(self):
        report = explore_protocol(
            AnonymousSweepConsensus(2, m=2), [1, 1], TASK,
            max_configs=200_000,
        )
        assert report.safe

    @pytest.mark.parametrize("seed", range(5))
    def test_obstruction_freedom_probes(self, seed):
        import random

        rng = random.Random(seed)
        schedules = [
            [rng.randrange(2) for _ in range(rng.randrange(0, 40))]
            for _ in range(10)
        ]
        assert check_obstruction_freedom(
            AnonymousSweepConsensus(2, m=2), [0, 1], schedules
        ) == []


class TestTheCoveringAttack:
    """The negative results, certified exhaustively (no truncation)."""

    @pytest.mark.parametrize("n,m,inputs", [
        (2, 2, (0, 1)),
        (3, 3, (0, 1, 1)),
        (3, 2, (0, 1, 1)),
        (2, 3, (0, 1)),
    ])
    def test_agreement_fails_at_every_small_scope(self, n, m, inputs):
        report = explore_protocol(
            AnonymousSweepConsensus(n, m=m), list(inputs), TASK,
            max_configs=800_000, max_steps=40,
        )
        assert not report.safe
        assert not report.truncated  # certified, not merely sampled
        assert report.counterexample is not None

    def test_raising_the_decision_round_does_not_help(self):
        """The attack shifts up a round: d=3 breaks just like d=2."""
        for d in (2, 3):
            report = explore_protocol(
                AnonymousSweepConsensus(2, m=2, decision_round=d),
                [0, 1], TASK, max_configs=800_000, max_steps=40,
            )
            assert not report.safe

    def test_minimal_counterexample_is_replayable(self):
        protocol = AnonymousSweepConsensus(2, m=2)
        report = explore_protocol(
            protocol, [0, 1], TASK, max_configs=800_000, max_steps=40
        )
        result = shrink_schedule(
            protocol, [0, 1], TASK, report.counterexample
        )
        assert violates(protocol, [0, 1], TASK, result.minimized)
        # The attack needs both camps to complete sweeps: it is not short.
        assert len(result.minimized) >= 10

    def test_contrast_with_single_writer_racing(self):
        """The identical decision logic is SAFE with single-writer
        components (RacingConsensus) — multi-writer anonymity is precisely
        what admits the covering attack."""
        from repro.protocols import RacingConsensus

        report = explore_protocol(
            RacingConsensus(2), [0, 1], TASK,
            max_configs=800_000, max_steps=40,
        )
        assert report.safe
