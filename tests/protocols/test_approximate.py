"""Tests for approximate agreement protocols (Appendix D's upper bounds)."""

import pytest

from repro.analysis import explore_protocol
from repro.errors import ValidationError
from repro.protocols import (
    ApproxAgreementTask,
    AveragingApprox,
    BisectionApprox,
    run_protocol,
)
from repro.protocols.approximate import rounds_for
from repro.runtime import RandomScheduler, RoundRobinScheduler, SoloScheduler


class TestRoundsFor:
    def test_standard_values(self):
        assert rounds_for(0.5) == 1
        assert rounds_for(0.25) == 2
        assert rounds_for(0.125) == 3
        assert rounds_for(2 ** -10) == 10

    def test_epsilon_above_one(self):
        assert rounds_for(2.0) == 1

    def test_invalid_epsilon(self):
        with pytest.raises(ValidationError):
            rounds_for(0)


class TestAveraging:
    def test_input_validation(self):
        protocol = AveragingApprox(2, 0.5)
        with pytest.raises(ValidationError):
            protocol.initial_state(0, 0.5)

    def test_same_inputs_decide_exactly(self):
        protocol = AveragingApprox(3, 0.25)
        _, result = run_protocol(protocol, [1, 1, 1], RoundRobinScheduler())
        assert set(result.outputs.values()) == {1.0}

    @pytest.mark.parametrize("eps", [0.5, 0.25, 0.125, 0.0625])
    def test_exhaustive_two_process_safety(self, eps):
        report = explore_protocol(
            AveragingApprox(2, eps),
            [0, 1],
            ApproxAgreementTask(eps),
            max_configs=2_000_000,
        )
        assert not report.truncated  # finite: exhaustively verified
        assert report.safe, report.violations

    @pytest.mark.parametrize("seed", range(15))
    def test_random_runs_three_processes(self, seed):
        eps = 0.125
        inputs = [seed % 2, (seed + 1) % 2, (seed // 2) % 2]
        _, result = run_protocol(
            AveragingApprox(3, eps), inputs, RandomScheduler(seed),
            max_steps=50_000,
        )
        assert result.completed  # wait-free: always terminates
        assert ApproxAgreementTask(eps).check(inputs, result.outputs) == []

    def test_wait_free_step_bound(self):
        """Every process decides within O(rounds) of its own steps."""
        protocol = AveragingApprox(2, 2 ** -8)
        system, result = run_protocol(
            protocol, [0, 1], RoundRobinScheduler(), max_steps=10_000
        )
        assert result.completed
        for proc in system.processes.values():
            assert proc.steps_taken <= 4 * (protocol.rounds + 2)

    def test_solo_decides_own_input(self):
        _, result = run_protocol(
            AveragingApprox(4, 0.01), [1], SoloScheduler(0)
        )
        assert result.outputs == {0: 1.0}


class TestBisection:
    def test_two_processes_only(self):
        protocol = BisectionApprox(0.5)
        assert protocol.n == 2
        with pytest.raises(ValidationError):
            protocol.initial_state(2, 0)

    def test_space_is_two_registers_per_round(self):
        assert BisectionApprox(2 ** -6).m == 12

    @pytest.mark.parametrize("eps", [0.5, 0.25, 0.125, 0.0625])
    def test_exhaustive_safety(self, eps):
        report = explore_protocol(
            BisectionApprox(eps),
            [0, 1],
            ApproxAgreementTask(eps),
            max_configs=2_000_000,
        )
        assert not report.truncated
        assert report.safe, report.violations

    @pytest.mark.parametrize("seed", range(15))
    def test_random_runs(self, seed):
        eps = 2 ** -6
        inputs = [seed % 2, (seed + 1) % 2]
        _, result = run_protocol(
            BisectionApprox(eps), inputs, RandomScheduler(seed),
            max_steps=20_000,
        )
        assert result.completed
        assert ApproxAgreementTask(eps).check(inputs, result.outputs) == []

    def test_step_complexity_is_theta_log_eps(self):
        """Steps per process grow linearly in rounds = log2(1/eps) — the
        curve E6 compares against the log3(1/eps) lower bound."""
        steps = {}
        for exp in (2, 4, 8):
            protocol = BisectionApprox(2 ** -exp)
            system, result = run_protocol(
                protocol, [0, 1], RoundRobinScheduler(), max_steps=10_000
            )
            assert result.completed
            steps[exp] = max(p.steps_taken for p in system.processes.values())
        assert steps[4] > steps[2]
        assert steps[8] > steps[4]
        # Linear shape: doubling the exponent roughly doubles the steps.
        assert steps[8] <= 3 * steps[4]
