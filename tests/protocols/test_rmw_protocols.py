"""The multi-primitive protocol families, end to end.

Each family's consensus power is a theorem of the literature — swap and
test-and-set have consensus number 2, compare-and-swap has consensus
number ∞ — and here each verdict is *machine-checked* by bounded
exhaustion: the two-process instances are safe under every interleaving,
the three-process swap/TAS instances yield a concrete counterexample
schedule, and the compare-and-swap family stays safe as n grows.

The same RMW poised kind must then agree across every execution layer:
the real runtime (:func:`run_protocol` on an
:class:`~repro.memory.RMWSnapshot`), the local simulator
(:func:`solo_run`), the covering builder, and the space profiler.
"""

import pytest

from repro.analysis import explore_protocol
from repro.analysis.covering import build_covering
from repro.analysis.space import base_object_profile, components_written
from repro.errors import ValidationError
from repro.protocols import (
    CASConsensus,
    KSetAgreementTask,
    LargeRegisterEmulation,
    RegularRegisterTask,
    SwapConsensus,
    TASConsensus,
    run_protocol,
    solo_run,
)
from repro.protocols.largereg import BOTTOM, WRITER_DONE
from repro.runtime import RandomScheduler, RoundRobinScheduler

CONSENSUS = KSetAgreementTask(1)


def explore(protocol, inputs, task=CONSENSUS, **bounds):
    bounds.setdefault("max_configs", 500_000)
    return explore_protocol(protocol, inputs, task, **bounds)


class TestConsensusPower:
    """The consensus-hierarchy verdicts, by exhaustive enumeration."""

    def test_swap_solves_two_process_consensus(self):
        report = explore(SwapConsensus(2), [0, 1])
        assert report.safe and report.fully_decided > 0

    def test_swap_fails_three_process_consensus(self):
        report = explore(SwapConsensus(3), [0, 1, 2])
        assert not report.safe
        assert report.counterexample is not None

    def test_tas_solves_two_process_consensus(self):
        report = explore(TASConsensus(2), [0, 1])
        assert report.safe and report.fully_decided > 0

    def test_tas_fails_three_process_consensus(self):
        report = explore(TASConsensus(3), [0, 1, 2])
        assert not report.safe

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_cas_solves_consensus_for_any_n(self, n):
        report = explore(CASConsensus(n), list(range(n)))
        assert report.safe and report.fully_decided > 0

    def test_validity_not_just_agreement(self):
        """Decisions are proposals, not invented values: with equal
        inputs every reachable decision is that input."""
        report = explore(
            SwapConsensus(2), [7, 7],
            stop_at_first_violation=False,
        )
        assert report.safe


class TestRuntimeAgreesWithExploration:
    """The RMW step through the real scheduler-driven runtime."""

    @pytest.mark.parametrize("seed", range(8))
    def test_cas_consensus_agreement_under_random_schedules(self, seed):
        _system, result = run_protocol(
            CASConsensus(3), [10, 20, 30], RandomScheduler(seed)
        )
        assert result.completed
        decided = set(result.outputs.values())
        assert len(decided) == 1
        assert decided <= {10, 20, 30}

    @pytest.mark.parametrize("seed", range(8))
    def test_swap_two_process_agreement(self, seed):
        _system, result = run_protocol(
            SwapConsensus(2), [4, 9], RandomScheduler(seed)
        )
        assert set(result.outputs.values()) in ({4}, {9})

    def test_counterexample_schedule_replays_in_runtime(self):
        """The explorer's swap counterexample is real: replaying it
        through the runtime produces the same disagreement."""
        from repro.runtime import AdversarialScheduler

        report = explore(SwapConsensus(3), [0, 1, 2])
        _system, result = run_protocol(
            SwapConsensus(3), [0, 1, 2],
            AdversarialScheduler(
                list(report.counterexample), skip_inactive=True
            ),
        )
        assert len(set(result.outputs.values())) > 1

    def test_rmw_count_on_shared_snapshot(self):
        system, _result = run_protocol(
            SwapConsensus(2), [4, 9], RoundRobinScheduler()
        )
        (snapshot,) = [
            obj for obj in system.objects.values()
            if hasattr(obj, "rmw_count")
        ]
        assert snapshot.rmw_count == 2


class TestSoloRun:
    def test_solo_swap_from_empty_memory_decides_own_input(self):
        protocol = SwapConsensus(2)
        _state, contents, _pending, decision = solo_run(
            protocol, protocol.initial_state(0, 42), (None,),
        )
        assert decision == 42
        assert contents == (42,)

    def test_solo_swap_adopts_chained_value(self):
        protocol = SwapConsensus(2)
        _state, contents, _pending, decision = solo_run(
            protocol, protocol.initial_state(1, 9), (4,),
        )
        assert decision == 4
        assert contents == (9,)

    def test_solo_rmw_outside_allowed_components_withheld(self):
        protocol = SwapConsensus(2)
        state, contents, pending, decision = solo_run(
            protocol, protocol.initial_state(0, 5), (None,),
            stop_before_update_outside=[],
        )
        assert decision is None
        assert pending == (0, 5)
        assert contents == (None,)


class TestCoveringAndSpace:
    def test_covering_freezes_poised_swap(self):
        report = build_covering(SwapConsensus(3), [0, 1, 2], target=1)
        assert report.size == 1
        component, withheld = report.poised_values[report.covered[0]]
        assert component == 0
        # Swap's withheld value is its argument — the frozen process's
        # proposal — independent of current contents.
        assert withheld in (0, 1, 2)

    def test_components_written_includes_rmw_targets(self):
        protocol = TASConsensus(2)
        # propose, propose, tas, tas
        written = components_written(protocol, [5, 6], [0, 1, 0, 1])
        assert written == {0, 1, 2}

    def test_base_object_profile_counts_per_operation(self):
        protocol = TASConsensus(2)
        profile = base_object_profile(
            protocol, [5, 6], [0, 1, 0, 1, 0, 1]
        )
        assert profile["update"] == 2
        assert profile["test_and_set"] == 2
        assert profile.get("scan", 0) >= 1

    def test_swap_profile_has_no_updates(self):
        profile = base_object_profile(SwapConsensus(2), [5, 6], [0, 1])
        assert profile == {"swap": 2}


class TestLargeRegisterEmulation:
    def test_safe_sweep_order_is_safe(self):
        protocol = LargeRegisterEmulation(3, (2, 1), safe=True)
        report = explore(
            protocol, [0, 0], RegularRegisterTask(3, (2, 1)),
            stop_at_first_violation=False,
        )
        assert report.safe

    def test_broken_sweep_order_loses_the_register(self):
        protocol = LargeRegisterEmulation(3, (2,), safe=False)
        report = explore(protocol, [0, 0], RegularRegisterTask(3, (2,)))
        assert not report.safe
        assert report.counterexample is not None

    def test_checker_names_the_failure(self):
        task = RegularRegisterTask(3, (2,))
        violations = task.check([0, 0], {0: WRITER_DONE, 1: BOTTOM})
        assert violations and "fell off" in violations[0]
        assert task.check([0, 0], {0: WRITER_DONE, 1: 2}) == []
        assert task.check([0, 0], {0: WRITER_DONE, 1: 1})  # never written

    def test_domain_and_write_validation(self):
        with pytest.raises(ValidationError):
            LargeRegisterEmulation(0, ())
        with pytest.raises(ValidationError):
            LargeRegisterEmulation(3, (3,))
        with pytest.raises(ValidationError):
            LargeRegisterEmulation(3, (1,), initial=5)
