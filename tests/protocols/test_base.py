"""Tests for the normal-form protocol interface and runners."""

import pytest

from repro.errors import DivergenceError, ProtocolError, ValidationError
from repro.protocols import ImmediateDecide, MinSeen, RacingConsensus
from repro.protocols.base import (
    DECIDE,
    SCAN,
    UPDATE,
    Protocol,
    decided_values,
    protocol_body,
    run_protocol,
    solo_run,
)
from repro.runtime import RoundRobinScheduler, System
from repro.memory import AtomicSnapshot


class TestRunProtocol:
    def test_outputs_are_decisions(self):
        _, result = run_protocol(
            ImmediateDecide(3), [10, 20, 30], RoundRobinScheduler()
        )
        assert result.completed
        assert result.outputs == {0: 10, 1: 20, 2: 30}

    def test_decision_annotations_match_outputs(self):
        system, result = run_protocol(
            MinSeen(3), [5, 3, 9], RoundRobinScheduler()
        )
        assert decided_values(system) == result.outputs

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValidationError):
            run_protocol(ImmediateDecide(2), [1, 2, 3], RoundRobinScheduler())

    def test_fewer_inputs_allowed(self):
        _, result = run_protocol(
            ImmediateDecide(5), [1, 2], RoundRobinScheduler()
        )
        assert result.outputs == {0: 1, 1: 2}

    def test_snapshot_space_matches_m(self):
        system, _ = run_protocol(MinSeen(4), [1, 2, 3, 4], RoundRobinScheduler())
        assert system.total_registers() == 4


class TestAlternationEnforcement:
    def test_non_alternating_protocol_rejected(self):
        class Broken(Protocol):
            n, m, name = 1, 1, "broken"

            def initial_state(self, index, value):
                return ("a", value)

            def poised(self, state):
                phase, value = state
                if phase in ("a", "b"):
                    return (SCAN, None)  # two scans in a row
                return (DECIDE, value)

            def advance(self, state, observation=None):
                phase, value = state
                return ("b" if phase == "a" else "c", value)

        system = System()
        snapshot = AtomicSnapshot("M", components=1)
        system.add_process(protocol_body(Broken(), 0, 7, snapshot))
        with pytest.raises(ProtocolError):
            system.run(RoundRobinScheduler())

    def test_max_own_steps_caps_livelock(self):
        # Two racing processes in lock-step can run forever; the cap turns
        # that into a clean undecided completion.
        protocol = RacingConsensus(2)
        system = System()
        snapshot = AtomicSnapshot("M", components=2)
        for index in range(2):
            system.add_process(
                protocol_body(protocol, index, index, snapshot, max_own_steps=50)
            )
        result = system.run(RoundRobinScheduler(), max_steps=10_000)
        assert result.completed  # processes gave up rather than hung


class TestSoloRun:
    def test_solo_run_decides_for_wait_free_protocol(self):
        protocol = MinSeen(2)
        state = protocol.initial_state(0, 4)
        final_state, contents, pending, decision = solo_run(
            protocol, state, (None, None)
        )
        assert decision == 4
        assert pending is None
        assert contents == ((4), None) or contents[0] == 4

    def test_solo_run_sees_given_contents(self):
        protocol = MinSeen(2)
        state = protocol.initial_state(0, 9)
        _, _, _, decision = solo_run(protocol, state, (None, 1))
        assert decision == 1  # the local contents held a smaller value

    def test_stop_before_update_outside(self):
        protocol = ImmediateDecide(3)
        state = protocol.initial_state(1, 42)
        _, contents, pending, decision = solo_run(
            protocol, state, (None, None, None), stop_before_update_outside=[]
        )
        assert decision is None
        assert pending == (1, 42)
        assert contents == (None, None, None)  # update withheld

    def test_allowed_updates_land_locally(self):
        protocol = ImmediateDecide(3)
        state = protocol.initial_state(1, 42)
        _, contents, pending, decision = solo_run(
            protocol, state, (None, None, None), stop_before_update_outside=[1]
        )
        assert decision == 42
        assert contents[1] == 42

    def test_wrong_contents_width_rejected(self):
        protocol = MinSeen(2)
        state = protocol.initial_state(0, 1)
        with pytest.raises(ValidationError):
            solo_run(protocol, state, (None,))

    def test_divergence_raises(self):
        class Spinner(Protocol):
            n, m, name = 1, 1, "spinner"

            def initial_state(self, index, value):
                return ("scan", 0)

            def poised(self, state):
                phase, count = state
                return (SCAN, None) if phase == "scan" else (UPDATE, (0, count))

            def advance(self, state, observation=None):
                phase, count = state
                return ("update", count + 1) if phase == "scan" else ("scan", count)

        with pytest.raises(DivergenceError):
            solo_run(Spinner(), ("scan", 0), (None,), max_steps=100)
