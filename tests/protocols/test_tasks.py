"""Tests for task specifications."""

import pytest

from repro.errors import ValidationError
from repro.protocols import ApproxAgreementTask, KSetAgreementTask


class TestKSet:
    def test_k_must_be_positive(self):
        with pytest.raises(ValidationError):
            KSetAgreementTask(0)

    def test_consensus_name(self):
        assert KSetAgreementTask(1).name == "consensus"
        assert "2-set" in KSetAgreementTask(2).name

    def test_clean_execution(self):
        task = KSetAgreementTask(1)
        assert task.check([0, 1, 1], {0: 1, 1: 1, 2: 1}) == []

    def test_validity_violation(self):
        task = KSetAgreementTask(2)
        violations = task.check([0, 1], {0: 7})
        assert len(violations) == 1
        assert "validity" in violations[0]

    def test_agreement_violation(self):
        task = KSetAgreementTask(1)
        violations = task.check([0, 1], {0: 0, 1: 1})
        assert any("1-agreement" in v for v in violations)

    def test_k_set_allows_k_values(self):
        task = KSetAgreementTask(2)
        assert task.check([0, 1, 2], {0: 0, 1: 1, 2: 1}) == []
        assert task.check([0, 1, 2], {0: 0, 1: 1, 2: 2}) != []

    def test_partial_outputs_ok(self):
        task = KSetAgreementTask(1)
        assert task.check([0, 1], {}) == []
        assert task.check([0, 1], {1: 0}) == []


class TestApprox:
    def test_epsilon_positive(self):
        with pytest.raises(ValidationError):
            ApproxAgreementTask(0)

    def test_inputs_must_be_binary(self):
        task = ApproxAgreementTask(0.5)
        with pytest.raises(ValidationError):
            task.check([0, 2], {0: 0.5})

    def test_clean_execution(self):
        task = ApproxAgreementTask(0.5)
        assert task.check([0, 1], {0: 0.25, 1: 0.5}) == []

    def test_hull_violation(self):
        task = ApproxAgreementTask(0.5)
        violations = task.check([0, 0], {0: 0.2})
        assert any("hull" in v for v in violations)

    def test_gap_violation(self):
        task = ApproxAgreementTask(0.1)
        violations = task.check([0, 1], {0: 0.0, 1: 0.5})
        assert any("agreement" in v for v in violations)

    def test_same_inputs_force_exact_output(self):
        task = ApproxAgreementTask(0.25)
        assert task.check([1, 1], {0: 1, 1: 1}) == []
        assert task.check([1, 1], {0: 0.9}) != []

    def test_non_numeric_output_rejected(self):
        task = ApproxAgreementTask(0.5)
        violations = task.check([0, 1], {0: "x"})
        assert any("non-numeric" in v for v in violations)
