"""Commit–adopt and its consensus layering.

The one-shot object is fully verified (its configuration space is finite,
so exploration is exhaustive, not bounded).  The consensus layering is
safe everywhere, obstruction-free while rounds remain, and — by design —
*stuck* once an adversary exhausts its bounded rounds: the executable form
of "rounds of commit–adopt need fresh registers", i.e. the unbounded-space
trap that the paper's tight n-register bound is about.
"""

import random

import pytest

from repro.analysis import check_obstruction_freedom, explore_protocol
from repro.errors import ValidationError
from repro.protocols import KSetAgreementTask, run_protocol
from repro.protocols.commit_adopt import (
    ADOPT,
    COMMIT,
    CommitAdopt,
    CommitAdoptConsensus,
    CommitAdoptTask,
)
from repro.runtime import RandomScheduler, SoloScheduler


class TestTaskChecker:
    def test_clean(self):
        task = CommitAdoptTask()
        outputs = {0: (COMMIT, 1), 1: (ADOPT, 1)}
        assert task.check([1, 0], outputs) == []

    def test_validity(self):
        task = CommitAdoptTask()
        violations = task.check([0, 1], {0: (COMMIT, 9)})
        assert any("validity" in v for v in violations)

    def test_coherence_two_commits(self):
        task = CommitAdoptTask()
        violations = task.check([0, 1], {0: (COMMIT, 0), 1: (COMMIT, 1)})
        assert any("coherence" in v for v in violations)

    def test_coherence_commit_vs_adopt(self):
        task = CommitAdoptTask()
        violations = task.check([0, 1], {0: (COMMIT, 0), 1: (ADOPT, 1)})
        assert any("coherence" in v for v in violations)

    def test_convergence(self):
        task = CommitAdoptTask()
        violations = task.check([1, 1], {0: (ADOPT, 1)})
        assert any("convergence" in v for v in violations)

    def test_output_shape(self):
        task = CommitAdoptTask()
        violations = task.check([0], {0: "garbage"})
        assert any("shape" in v for v in violations)


class TestCommitAdoptExhaustive:
    """The object has a finite configuration space: these runs certify the
    specification, they do not sample it."""

    @pytest.mark.parametrize("inputs", [(0, 1), (1, 0), (0, 0), (1, 1)])
    def test_two_processes(self, inputs):
        report = explore_protocol(
            CommitAdopt(2), list(inputs), CommitAdoptTask(),
            max_configs=2_000_000,
        )
        assert not report.truncated
        assert report.safe, report.violations

    @pytest.mark.parametrize("inputs", [(0, 1, 1), (0, 1, 2), (2, 2, 2)])
    def test_three_processes(self, inputs):
        report = explore_protocol(
            CommitAdopt(3), list(inputs), CommitAdoptTask(),
            max_configs=3_000_000,
        )
        assert not report.truncated
        assert report.safe, report.violations

    def test_validation(self):
        with pytest.raises(ValidationError):
            CommitAdopt(0)

    def test_space_is_2n(self):
        assert CommitAdopt(4).m == 8

    def test_solo_commits_own_value(self):
        _sys, result = run_protocol(CommitAdopt(3), [7], SoloScheduler(0))
        assert result.outputs[0] == (COMMIT, 7)

    @pytest.mark.parametrize("seed", range(10))
    def test_wait_free_under_random_schedules(self, seed):
        inputs = [seed % 2, (seed + 1) % 2, 1]
        _sys, result = run_protocol(
            CommitAdopt(3), inputs, RandomScheduler(seed)
        )
        assert result.completed  # wait-free: always terminates
        assert CommitAdoptTask().check(inputs, result.outputs) == []


class TestCommitAdoptConsensus:
    def test_validation(self):
        with pytest.raises(ValidationError):
            CommitAdoptConsensus(2, max_rounds=0)

    def test_space_grows_with_rounds(self):
        assert CommitAdoptConsensus(2, max_rounds=3).m == 12
        assert CommitAdoptConsensus(2, max_rounds=6).m == 24

    @pytest.mark.parametrize("inputs,rounds", [
        ((0, 1), 2), ((0, 1), 3), ((1, 0), 2),
    ])
    def test_exhaustive_safety(self, inputs, rounds):
        report = explore_protocol(
            CommitAdoptConsensus(2, max_rounds=rounds), list(inputs),
            KSetAgreementTask(1), max_configs=2_000_000, max_steps=40,
        )
        assert report.safe, report.violations

    def test_solo_decides_in_round_one(self):
        _sys, result = run_protocol(
            CommitAdoptConsensus(3, max_rounds=2), [7], SoloScheduler(0)
        )
        assert result.outputs == {0: 7}

    @pytest.mark.parametrize("seed", range(10))
    def test_random_runs_safe(self, seed):
        inputs = [0, 1]
        _sys, result = run_protocol(
            CommitAdoptConsensus(2, max_rounds=4), inputs,
            RandomScheduler(seed), max_steps=20_000,
        )
        assert KSetAgreementTask(1).check(inputs, result.outputs) == []

    def test_obstruction_free_while_rounds_remain(self):
        """Short adversarial prefixes leave rounds available: solo runs
        then decide."""
        rng = random.Random(0)
        schedules = [
            [rng.randrange(2) for _ in range(rng.randrange(0, 6))]
            for _ in range(15)
        ]
        violations = check_obstruction_freedom(
            CommitAdoptConsensus(2, max_rounds=6), [0, 1], schedules
        )
        assert violations == []

    def test_round_exhaustion_sticks_by_design(self):
        """An adversary that burns every round leaves the process parked
        undecided — the bounded-registers price.  With unbounded rounds
        this cannot happen, but then the register count is unbounded:
        exactly the trade-off the paper's n-register bound resolves."""
        rng = random.Random(1)
        schedules = [
            [rng.randrange(2) for _ in range(40)] for _ in range(30)
        ]
        violations = check_obstruction_freedom(
            CommitAdoptConsensus(2, max_rounds=2), [0, 1], schedules,
            solo_budget=2_000,
        )
        assert violations  # some schedule exhausts the rounds
