"""Hypothesis property tests over protocols and schedules.

The protocol interface demands pure, deterministic, hashable transitions;
these properties are what the model checker, the shrinker, and the
revisionist simulation's local re-execution all rely on — so they are
tested as laws over randomly generated schedules, not just examples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import components_written, replay_schedule
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    RotatingWrites,
)
from repro.protocols.base import DECIDE, SCAN


def schedules(processes, max_length=60):
    return st.lists(
        st.integers(min_value=0, max_value=processes - 1),
        max_size=max_length,
    )


class TestReplayLaws:
    @given(schedules(2))
    def test_replay_is_deterministic(self, schedule):
        protocol = RacingConsensus(2)
        first = replay_schedule(protocol, [0, 1], schedule)
        second = replay_schedule(protocol, [0, 1], schedule)
        assert first == second

    @given(schedules(3))
    def test_decisions_are_monotone_under_extension(self, schedule):
        """Extending a schedule never un-decides anyone."""
        protocol = MinSeen(3, rounds=2)
        inputs = [4, 7, 1]
        before = replay_schedule(protocol, inputs, schedule)
        after = replay_schedule(protocol, inputs, schedule + [0, 1, 2] * 3)
        assert set(before).issubset(set(after))
        for pid, value in before.items():
            assert after[pid] == value

    @given(schedules(3))
    def test_min_seen_validity_under_any_schedule(self, schedule):
        protocol = MinSeen(3, rounds=2)
        inputs = [4, 7, 1]
        decisions = replay_schedule(protocol, inputs, schedule)
        for value in decisions.values():
            assert value in inputs

    @given(schedules(2, max_length=100))
    @settings(max_examples=60)
    def test_racing_consensus_safety_under_random_schedules(self, schedule):
        """Hypothesis as a safety fuzzer (complementing the exhaustive
        checker): agreement and validity over arbitrary schedules."""
        protocol = RacingConsensus(2)
        inputs = [0, 1]
        decisions = replay_schedule(protocol, inputs, schedule)
        assert KSetAgreementTask(1).check(inputs, decisions) == []

    @given(schedules(3, max_length=80))
    @settings(max_examples=40)
    def test_components_written_monotone(self, schedule):
        protocol = RotatingWrites(3, 3, rounds=4)
        inputs = [1, 2, 3]
        shorter = components_written(protocol, inputs, schedule[: len(schedule) // 2])
        longer = components_written(protocol, inputs, schedule)
        assert shorter <= longer


class TestTransitionLaws:
    @given(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=5),
    )
    def test_initial_states_hashable_and_stable(self, index, value):
        protocol = RotatingWrites(3, 2, rounds=2)
        a = protocol.initial_state(index, value)
        b = protocol.initial_state(index, value)
        assert a == b
        assert hash(a) == hash(b)

    @given(schedules(2, max_length=40))
    def test_poised_alternation_invariant(self, schedule):
        """Along any schedule, each process alternates scan/update until a
        decision — the normal form the paper assumes w.l.o.g."""
        protocol = RacingConsensus(2)
        states = [protocol.initial_state(i, i) for i in range(2)]
        memory = [None, None]
        last_kind = [None, None]
        for index in schedule:
            kind, payload = protocol.poised(states[index])
            if kind == DECIDE:
                continue
            assert kind != last_kind[index]
            if kind == SCAN:
                states[index] = protocol.advance(states[index], tuple(memory))
            else:
                component, value = payload
                memory[component] = value
                states[index] = protocol.advance(states[index], None)
            last_kind[index] = kind
