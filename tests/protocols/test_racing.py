"""Safety and progress tests for racing consensus and grouped k-set."""

import random

import pytest

from repro.analysis import check_obstruction_freedom, explore_protocol
from repro.protocols import (
    GroupedKSet,
    KSetAgreementTask,
    RacingConsensus,
    run_protocol,
)
from repro.errors import ValidationError
from repro.runtime import ObstructionScheduler, RandomScheduler, SoloScheduler


class TestRacingExhaustive:
    @pytest.mark.parametrize("inputs", [(0, 1), (1, 0), (0, 0), (3, 7)])
    def test_two_process_consensus_safe(self, inputs):
        report = explore_protocol(
            RacingConsensus(2),
            list(inputs),
            KSetAgreementTask(1),
            max_configs=500_000,
            max_steps=60,
        )
        assert report.safe, report.violations

    def test_three_process_consensus_safe(self):
        report = explore_protocol(
            RacingConsensus(3),
            [0, 1, 2],
            KSetAgreementTask(1),
            max_configs=300_000,
            max_steps=24,
        )
        assert report.safe, report.violations

    def test_decisions_reachable(self):
        report = explore_protocol(
            RacingConsensus(2), [0, 1], KSetAgreementTask(1),
            max_configs=200_000, max_steps=40,
        )
        assert report.fully_decided > 0


class TestRacingProgress:
    def test_solo_run_decides_own_input(self):
        _, result = run_protocol(RacingConsensus(3), [7], SoloScheduler(0))
        assert result.outputs == {0: 7}

    @pytest.mark.parametrize("seed", range(10))
    def test_obstruction_scheduler_terminates(self, seed):
        protocol = RacingConsensus(3)
        scheduler = ObstructionScheduler(group=[seed % 3], prefix_steps=30, seed=seed)
        _, result = run_protocol(
            protocol, [0, 1, 2], scheduler, max_steps=20_000
        )
        # The obstruction process must decide; others may still be running
        # (they stop being scheduled only in the model of the run).
        assert (seed % 3) in result.outputs

    @pytest.mark.parametrize("seed", range(10))
    def test_random_probes_obstruction_free(self, seed):
        rng = random.Random(seed)
        schedules = [
            [rng.randrange(2) for _ in range(rng.randrange(0, 50))]
            for _ in range(10)
        ]
        violations = check_obstruction_freedom(
            RacingConsensus(2), [0, 1], schedules
        )
        assert violations == []

    @pytest.mark.parametrize("seed", range(15))
    def test_random_runs_safe(self, seed):
        inputs = [seed % 2, (seed + 1) % 2, 1, 0]
        _, result = run_protocol(
            RacingConsensus(4), inputs, RandomScheduler(seed), max_steps=50_000
        )
        assert KSetAgreementTask(1).check(inputs, result.outputs) == []

    def test_leapfrog_schedule_races_forever(self):
        """The round-leapfrog adversary (each process takes its write+scan
        pair in turn) keeps both processes perpetually one round behind the
        other, so neither ever satisfies "my round is the maximum" — the
        concrete non-terminating schedule FLP guarantees must exist for any
        correct register-based consensus protocol."""
        from repro.runtime import AdversarialScheduler

        scheduler = AdversarialScheduler([1, 1, 0, 0] * 1000)
        _, result = run_protocol(
            RacingConsensus(2), [0, 1], scheduler, max_steps=3_000
        )
        assert result.diverged
        assert result.outputs == {}

    def test_plain_lockstep_converges(self):
        """Strict single-step alternation is NOT adversarial here: conflicts
        resolve deterministically to the same value and the processes then
        decide together (contrast with the leapfrog schedule above)."""
        from repro.runtime import RoundRobinScheduler

        inputs = [0, 1]
        _, result = run_protocol(
            RacingConsensus(2), inputs, RoundRobinScheduler(), max_steps=2_000
        )
        assert result.completed
        assert KSetAgreementTask(1).check(inputs, result.outputs) == []


class TestGroupedKSet:
    def test_validation(self):
        with pytest.raises(ValidationError):
            GroupedKSet(3, 0)
        with pytest.raises(ValidationError):
            GroupedKSet(3, 4)

    def test_group_sizes_partition_n(self):
        protocol = GroupedKSet(7, 3)
        assert sum(protocol._group_size(g) for g in range(3)) == 7

    def test_global_components_distinct(self):
        protocol = GroupedKSet(7, 3)
        seen = set()
        for g in range(3):
            for rank in range(protocol._group_size(g)):
                seen.add(protocol._global_component(g, rank))
        assert seen == set(range(7))

    @pytest.mark.parametrize("seed", range(10))
    def test_random_runs_satisfy_k_agreement(self, seed):
        inputs = [seed % 3, 1, 2, 0, (seed + 1) % 3]
        protocol = GroupedKSet(5, 2)
        _, result = run_protocol(
            protocol, inputs, RandomScheduler(seed), max_steps=50_000
        )
        assert KSetAgreementTask(2).check(inputs, result.outputs) == []

    def test_exploration_safe(self):
        report = explore_protocol(
            GroupedKSet(4, 2),
            [0, 1, 2, 3],
            KSetAgreementTask(2),
            max_configs=150_000,
            max_steps=20,
        )
        assert report.safe, report.violations

    def test_solo_decides(self):
        _, result = run_protocol(GroupedKSet(4, 2), [9], SoloScheduler(0))
        assert result.outputs == {0: 9}
