"""Tests for the trivial protocols and the truncation wrapper."""

import pytest

from repro.analysis import explore_protocol
from repro.errors import ProtocolError, ValidationError
from repro.protocols import (
    ImmediateDecide,
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    TruncatedProtocol,
    run_protocol,
)
from repro.runtime import RandomScheduler, RoundRobinScheduler


class TestImmediateDecide:
    def test_decides_own_input(self):
        _, result = run_protocol(
            ImmediateDecide(3), ["a", "b", "c"], RoundRobinScheduler()
        )
        assert result.outputs == {0: "a", 1: "b", 2: "c"}

    def test_wait_free_exact_steps(self):
        system, result = run_protocol(
            ImmediateDecide(2), [1, 2], RoundRobinScheduler()
        )
        assert all(p.steps_taken == 2 for p in system.processes.values())

    def test_advance_after_decide_raises(self):
        protocol = ImmediateDecide(1)
        state = ("done", 0, 5)
        with pytest.raises(ProtocolError):
            protocol.advance(state)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ImmediateDecide(0)


class TestMinSeen:
    def test_decides_minimum_visible(self):
        _, result = run_protocol(MinSeen(3), [5, 2, 9], RoundRobinScheduler())
        # Round-robin: all write before any scan, so everyone sees min=2.
        assert set(result.outputs.values()) == {2}

    def test_validity_under_random_schedules(self):
        for seed in range(10):
            inputs = [4, 1, 7, 3]
            _, result = run_protocol(
                MinSeen(4), inputs, RandomScheduler(seed)
            )
            for value in result.outputs.values():
                assert value in inputs

    def test_own_value_lower_bound(self):
        """A process never decides more than its own input (it always sees
        its own write)."""
        for seed in range(10):
            inputs = [4, 1, 7, 3]
            _, result = run_protocol(MinSeen(4), inputs, RandomScheduler(seed))
            for pid, value in result.outputs.items():
                assert value <= inputs[pid]

    def test_multi_round_variant(self):
        _, result = run_protocol(
            MinSeen(2, rounds=3), [8, 6], RoundRobinScheduler()
        )
        assert set(result.outputs.values()) == {6}

    def test_rounds_validation(self):
        with pytest.raises(ValidationError):
            MinSeen(2, rounds=0)


class TestTruncatedProtocol:
    def test_component_aliasing(self):
        base = ImmediateDecide(4)
        truncated = TruncatedProtocol(base, 2)
        state = truncated.initial_state(3, "x")
        kind, payload = truncated.poised(state)
        assert payload == (3 % 2, "x")

    def test_m_is_truncated(self):
        assert TruncatedProtocol(RacingConsensus(4), 2).m == 2

    def test_registers_validation(self):
        with pytest.raises(ValidationError):
            TruncatedProtocol(RacingConsensus(2), 0)

    def test_full_width_truncation_is_identity(self):
        base = RacingConsensus(2)
        same = TruncatedProtocol(base, base.m)
        report = explore_protocol(
            same, [0, 1], KSetAgreementTask(1), max_configs=100_000, max_steps=40
        )
        assert report.safe

    def test_under_provisioned_consensus_violates(self):
        """Theorem 3 in the small: racing consensus squeezed below n
        registers breaks — the model checker finds the agreement violation
        the lower bound says must exist."""
        broken = TruncatedProtocol(RacingConsensus(3), 1)
        report = explore_protocol(
            broken, [0, 1, 2], KSetAgreementTask(1),
            max_configs=500_000, max_steps=40,
        )
        assert not report.safe
        assert report.counterexample is not None

    def test_two_of_three_registers_also_violates(self):
        broken = TruncatedProtocol(RacingConsensus(3), 2)
        report = explore_protocol(
            broken, [0, 1, 2], KSetAgreementTask(1),
            max_configs=500_000, max_steps=30,
        )
        assert not report.safe
