"""Register-level execution: the whole stack on raw reads and writes."""

import pytest

from repro.core import run_simulation
from repro.errors import ValidationError
from repro.augmented import AugmentedSnapshot
from repro.augmented.linearization import extract_operations
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
)
from repro.protocols.registers_runtime import run_protocol_on_registers
from repro.runtime import RandomScheduler, RoundRobinScheduler, System


class TestProtocolOnRegisters:
    @pytest.mark.parametrize("seed", range(8))
    def test_min_seen_validity(self, seed):
        inputs = [5, 2, 8]
        system, result, snapshot = run_protocol_on_registers(
            MinSeen(3, rounds=2), inputs, RandomScheduler(seed)
        )
        assert result.completed
        for value in result.outputs.values():
            assert value in inputs

    def test_space_is_exactly_m_registers(self):
        _sys, _res, snapshot = run_protocol_on_registers(
            RotatingWrites(3, 3, rounds=2), [1, 2, 3], RoundRobinScheduler()
        )
        assert snapshot.register_count() == 3

    def test_every_step_is_a_register_access(self):
        system, _res, _snap = run_protocol_on_registers(
            MinSeen(2), [1, 2], RoundRobinScheduler()
        )
        for event in system.trace.steps():
            assert event.op in ("read", "write")

    @pytest.mark.parametrize("seed", range(5))
    def test_racing_consensus_safety_on_registers(self, seed):
        inputs = [0, 1, 1]
        _sys, result, _snap = run_protocol_on_registers(
            RacingConsensus(3), inputs, RandomScheduler(seed),
            max_steps=500_000,
        )
        assert KSetAgreementTask(1).check(inputs, result.outputs) == []

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValidationError):
            run_protocol_on_registers(
                MinSeen(1), [1, 2], RoundRobinScheduler()
            )


class TestRegisterLevelAugmented:
    def test_registers_only_trace(self):
        system = System()
        aug = AugmentedSnapshot(
            "M", components=2, pids=[0, 1], register_level=True
        )

        def body(proc):
            yield from aug.block_update(proc.pid, [proc.pid % 2], ["v"])
            return (yield from aug.scan(proc.pid))

        for _ in range(2):
            system.add_process(body)
        result = system.run(RandomScheduler(4), max_steps=100_000)
        assert result.completed
        for event in system.trace.steps():
            assert event.op in ("read", "write")

    def test_analysis_unavailable_with_clear_error(self):
        system = System()
        aug = AugmentedSnapshot(
            "M", components=1, pids=[0], register_level=True
        )

        def body(proc):
            yield from aug.block_update(proc.pid, [0], ["v"])

        system.add_process(body)
        system.run(RoundRobinScheduler(), max_steps=10_000)
        with pytest.raises(ValidationError, match="register-level"):
            extract_operations(system.trace, aug)

    def test_register_count_counts_afek_registers(self):
        aug = AugmentedSnapshot(
            "M", components=3, pids=[0, 1, 2], register_level=True
        )
        # H is one register per sharing process in the Afek construction.
        assert aug.register_count() == 3


class TestRegisterLevelSimulation:
    @pytest.mark.parametrize("seed", range(5))
    def test_positive_run(self, seed):
        inputs = [4, 7]
        outcome = run_simulation(
            RotatingWrites(5, 2, rounds=3), k=1, x=1, inputs=inputs,
            scheduler=RandomScheduler(seed), max_steps=800_000,
            register_level=True,
        )
        assert outcome.result.completed
        assert outcome.all_decided
        for value in outcome.decisions.values():
            assert value in inputs

    @pytest.mark.parametrize("seed", range(5))
    def test_falsifier_on_raw_registers(self, seed):
        """Theorem 3's violation manifests even when the entire reduction
        bottoms out in reads and writes."""
        broken = TruncatedProtocol(RacingConsensus(2), 1)
        outcome = run_simulation(
            broken, k=1, x=1, inputs=[0, 1],
            scheduler=RandomScheduler(seed), max_steps=800_000,
            register_level=True,
        )
        assert outcome.task_violations(KSetAgreementTask(1))

    def test_matches_native_mode_decisions_under_quiet_schedule(self):
        """Under a sequential-ish schedule both modes decide the same."""
        inputs = [4, 7]
        native = run_simulation(
            RotatingWrites(5, 2, rounds=3), k=1, x=1, inputs=inputs,
            scheduler=RoundRobinScheduler(), max_steps=800_000,
        )
        registers = run_simulation(
            RotatingWrites(5, 2, rounds=3), k=1, x=1, inputs=inputs,
            scheduler=RoundRobinScheduler(), max_steps=800_000,
            register_level=True,
        )
        assert set(native.decisions.values()) == set(
            registers.decisions.values()
        )
