"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_bounds(self, capsys):
        assert main(["bounds", "--n-max", "4", "--k-max", "2"]) == 0
        out = capsys.readouterr().out
        assert "lower" in out
        assert "yes" in out  # consensus rows are tight

    def test_simulate(self, capsys):
        assert main(["simulate", "--k", "1", "--m", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 28 correspondence: OK" in out

    def test_falsify(self, capsys):
        assert main(["falsify", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "safety violation" in out
        assert "3/3" in out

    def test_falsify_larger_m_still_below_bound(self, capsys):
        """n is derived from m, so any m sits below the Theorem 3 bound —
        the simulation pivot — and the falsifier always has work to do."""
        assert main(["falsify", "--m", "3", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3 bound=4" in out

    def test_approx(self, capsys):
        assert main(["approx", "--m", "2", "--eps-exp", "30"]) == 0
        out = capsys.readouterr().out
        assert "ε-independent" in out
        assert "beats the lower bound" in out

    def test_check(self, capsys):
        assert main(["check", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "all Appendix B lemma checks passed" in out

    def test_campaign(self, capsys):
        assert main([
            "campaign", "--seeds", "8", "--workers", "2",
            "--fuzz-runs", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign complete: all expectations held" in out
        assert "runs/sec" in out
        assert "first violating seed: 0" in out

    def test_campaign_single_experiment(self, capsys):
        assert main([
            "campaign", "--seeds", "5", "--workers", "1",
            "--experiment", "protocol",
        ]) == 0
        out = capsys.readouterr().out
        assert "protocol safety" in out
        assert "falsifier" not in out

    def test_explore_truncated_finds_violation(self, capsys):
        assert main([
            "explore", "--scenario", "truncated", "--workers", "2",
            "--verify-serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "violation" in out
        assert "counterexample schedule" in out
        assert "serial verification: sharded report identical" in out

    def test_explore_safe_scenarios(self, capsys):
        for scenario in ("racing", "minseen"):
            assert main([
                "explore", "--scenario", scenario, "--workers", "2",
                "--verify-serial",
            ]) == 0
            out = capsys.readouterr().out
            assert "safe" in out
            assert "serial verification: sharded report identical" in out

    def test_explore_rejects_bad_workers(self, capsys):
        assert main(["explore", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err
        assert main(["explore", "--chunk-size", "-3"]) == 2
        assert "--chunk-size must be >= 1" in capsys.readouterr().err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])
