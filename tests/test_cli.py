"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_bounds(self, capsys):
        assert main(["bounds", "--n-max", "4", "--k-max", "2"]) == 0
        out = capsys.readouterr().out
        assert "lower" in out
        assert "yes" in out  # consensus rows are tight

    def test_simulate(self, capsys):
        assert main(["simulate", "--k", "1", "--m", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 28 correspondence: OK" in out

    def test_falsify(self, capsys):
        assert main(["falsify", "--runs", "3"]) == 0
        out = capsys.readouterr().out
        assert "safety violation" in out
        assert "3/3" in out

    def test_falsify_larger_m_still_below_bound(self, capsys):
        """n is derived from m, so any m sits below the Theorem 3 bound —
        the simulation pivot — and the falsifier always has work to do."""
        assert main(["falsify", "--m", "3", "--runs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3 bound=4" in out

    def test_approx(self, capsys):
        assert main(["approx", "--m", "2", "--eps-exp", "30"]) == 0
        out = capsys.readouterr().out
        assert "ε-independent" in out
        assert "beats the lower bound" in out

    def test_check(self, capsys):
        assert main(["check", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "all Appendix B lemma checks passed" in out

    def test_campaign(self, capsys):
        assert main([
            "campaign", "--seeds", "8", "--workers", "2",
            "--fuzz-runs", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign complete: all expectations held" in out
        assert "runs/sec" in out
        assert "first violating seed: 0" in out

    def test_campaign_single_experiment(self, capsys):
        assert main([
            "campaign", "--seeds", "5", "--workers", "1",
            "--experiment", "protocol",
        ]) == 0
        out = capsys.readouterr().out
        assert "protocol safety" in out
        assert "falsifier" not in out

    def test_explore_truncated_finds_violation(self, capsys):
        assert main([
            "explore", "--scenario", "truncated", "--workers", "2",
            "--verify-serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "violation" in out
        assert "counterexample schedule" in out
        assert "serial verification: sharded report identical" in out

    def test_explore_safe_scenarios(self, capsys):
        for scenario in ("racing", "minseen"):
            assert main([
                "explore", "--scenario", scenario, "--workers", "2",
                "--verify-serial",
            ]) == 0
            out = capsys.readouterr().out
            assert "safe" in out
            assert "serial verification: sharded report identical" in out

    def test_campaign_checkpoint_then_resume(self, tmp_path, capsys):
        """A checkpointed campaign resumes by replaying the journal."""
        ckpt = str(tmp_path / "campaign.ckpt")
        assert main([
            "campaign", "--seeds", "6", "--workers", "1",
            "--experiment", "protocol", "--checkpoint", ckpt,
        ]) == 0
        first = capsys.readouterr().out
        assert "resumed past" not in first
        assert main([
            "campaign", "--seeds", "6", "--workers", "1",
            "--experiment", "protocol", "--resume", ckpt,
        ]) == 0
        resumed = capsys.readouterr().out
        assert "resumed past 3 checkpointed chunks" in resumed
        assert "campaign complete: all expectations held" in resumed

    def test_explore_checkpoint_then_bare_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "explore.ckpt")
        common = [
            "explore", "--scenario", "racing", "--workers", "1",
            "--max-configs", "20000", "--checkpoint", ckpt,
        ]
        assert main(common) == 0
        capsys.readouterr()
        assert main(common + ["--resume", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "resumed past" in out
        assert "safe" in out

    def test_resume_without_checkpoint_path_is_usage_error(self, capsys):
        assert main(["campaign", "--resume"]) == 2
        assert "--resume needs a path" in capsys.readouterr().err

    def test_resume_with_missing_journal_notices_and_starts_fresh(
        self, tmp_path, capsys
    ):
        """``--resume`` pointing at a journal that doesn't exist yet (in
        a directory that doesn't exist yet either) starts fresh with a
        notice instead of failing — the first boot of a scripted
        checkpoint-and-resume loop."""
        ckpt = str(tmp_path / "state" / "run" / "campaign.ckpt")
        args = [
            "campaign", "--seeds", "6", "--workers", "1",
            "--experiment", "protocol", "--checkpoint", ckpt,
            "--resume",
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "notice: no checkpoint found at" in captured.err
        assert "starting fresh" in captured.err
        assert "campaign complete: all expectations held" in captured.out
        # Second boot finds the journal: resumes silently, no notice.
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "notice: no checkpoint found" not in captured.err
        assert "resumed past 3 checkpointed chunks" in captured.out

    def test_explore_resume_with_missing_journal_notices(
        self, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "missing-dir" / "explore.ckpt")
        assert main([
            "explore", "--scenario", "racing", "--workers", "1",
            "--max-configs", "20000", "--resume", ckpt,
        ]) == 0
        captured = capsys.readouterr()
        assert "notice: no checkpoint found at" in captured.err
        assert "safe" in captured.out

    def test_campaign_rejects_negative_max_retries(self, capsys):
        assert main(["campaign", "--max-retries", "-1"]) == 2
        assert "--max-retries must be >= 0" in capsys.readouterr().err

    def test_explore_rejects_bad_workers(self, capsys):
        assert main(["explore", "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err
        assert main(["explore", "--chunk-size", "-3"]) == 2
        assert "--chunk-size must be >= 1" in capsys.readouterr().err

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])


class TestBenchCli:
    """Exit-code contract of the `repro bench` subcommands."""

    def run_quick(self, out_dir):
        """Measure the fastest experiment into ``out_dir``; returns rc."""
        return main([
            "bench", "run", "--quick", "--experiments", "E2",
            "--repeats", "1", "--warmup", "0", "--out", str(out_dir),
        ])

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "E13" in out and "campaign" in out
        assert "E14" in out and "explore" in out

    def test_bench_run_writes_artifacts(self, tmp_path, capsys):
        assert self.run_quick(tmp_path) == 0
        out = capsys.readouterr().out
        assert "wrote 1 artifact(s)" in out
        assert (tmp_path / "BENCH_E2_bounds.json").exists()

    def test_bench_compare_pass_is_zero(self, tmp_path, capsys):
        base, cur = tmp_path / "base", tmp_path / "cur"
        assert self.run_quick(base) == 0
        assert self.run_quick(cur) == 0
        assert main([
            "bench", "compare", "--baseline", str(base),
            "--current", str(cur), "--threshold", "100",
        ]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_compare_injected_slowdown_is_one(self, tmp_path, capsys):
        assert self.run_quick(tmp_path) == 0
        assert main([
            "bench", "compare", "--baseline", str(tmp_path),
            "--current", str(tmp_path), "--slowdown", "4.0",
        ]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "injected slowdown x4.0" in out

    def test_bench_compare_missing_baseline_is_two(self, tmp_path, capsys):
        assert self.run_quick(tmp_path) == 0
        assert main([
            "bench", "compare",
            "--baseline", str(tmp_path / "missing"),
            "--current", str(tmp_path),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_run_unknown_experiment_is_two(self, tmp_path, capsys):
        assert main([
            "bench", "run", "--experiments", "E999",
            "--out", str(tmp_path),
        ]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCliModes:
    """--symmetry / --packed wiring and the anonymous scenario."""

    def test_explore_anonymous_scenario_finds_the_m_lt_n_attack(self, capsys):
        assert main([
            "explore", "--scenario", "anonymous", "--workers", "2",
            "--verify-serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "anonymous-sweep" in out
        assert "violation" in out
        assert "counterexample schedule" in out
        assert "serial verification: sharded report identical" in out

    def test_explore_symmetry_reduces_and_agrees(self, capsys):
        assert main([
            "explore", "--scenario", "anonymous", "--workers", "2",
            "--symmetry", "--verify-serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "symmetry-reduced" in out
        assert "violation" in out
        assert "serial verification: sharded report identical" in out

    def test_explore_no_packed_matches_default(self, capsys):
        results = {}
        for flags in ([], ["--no-packed"]):
            assert main([
                "explore", "--scenario", "racing", "--workers", "2",
                "--verify-serial", *flags,
            ]) == 0
            out = capsys.readouterr().out
            assert "serial verification: sharded report identical" in out
            # The scientific summary line must not depend on the
            # encoding; strip the telemetry (timing) lines.
            results[tuple(flags)] = [
                line for line in out.splitlines()
                if "configurations explored" in line
            ]
        assert results[()] == results[("--no-packed",)]
        assert main(["explore", "--scenario", "racing", "--no-packed",
                     "--symmetry"]) == 2
        assert "symmetry" in capsys.readouterr().err

    def test_campaign_zero_seeds_zero_fuzz_completes(self, capsys):
        """The zero-unit degenerate campaign is complete success, and
        the must-violate fuzz expectation is vacuous at 0 runs."""
        assert main([
            "campaign", "--seeds", "0", "--fuzz-runs", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign complete: all expectations held" in out


class TestConsoleScript:
    """`prog` and the packaged `repro` entry point are one name."""

    def test_help_text_uses_the_repro_program_name(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("usage: repro")
        assert "python -m repro" not in out.split("\n\n")[0]

    def test_subcommand_usage_lines_use_repro(self, capsys):
        assert main(["explore", "--workers", "0"]) == 2
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["explore", "--scenario", "bogus"])
        err = capsys.readouterr().err
        assert "usage: repro explore" in err

    def test_setup_cfg_entry_point_targets_cli_main(self):
        import configparser
        import importlib
        import os

        config = configparser.ConfigParser()
        config.read(os.path.join(
            os.path.dirname(__file__), os.pardir, "setup.cfg"
        ))
        scripts = config["options.entry_points"]["console_scripts"]
        entries = dict(
            line.replace(" ", "").split("=", 1)
            for line in scripts.strip().splitlines()
        )
        assert "repro" in entries
        module_name, function_name = entries["repro"].split(":")
        module = importlib.import_module(module_name)
        assert getattr(module, function_name) is main
