"""Documentation quality gate: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
makes the requirement executable, so it cannot silently regress.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if "__main__" not in name
]


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", None) == module.__name__:
                yield name, member


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module_name} lacks a docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in public_members(module):
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: undocumented public items: {undocumented}"
    )


def _documented(cls, method_name) -> bool:
    """Own docstring, or an inherited contract: a base class documents the
    same method (standard practice for interface overrides)."""
    for klass in cls.__mro__:
        method = vars(klass).get(method_name)
        if method is not None and getattr(method, "__doc__", None):
            if method.__doc__.strip():
                return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for class_name, cls in public_members(module):
        if not inspect.isclass(cls):
            continue
        for method_name, method in vars(cls).items():
            if method_name.startswith("_"):
                continue
            if inspect.isfunction(method) and not _documented(
                cls, method_name
            ):
                undocumented.append(f"{class_name}.{method_name}")
    assert not undocumented, (
        f"{module_name}: undocumented public methods: {undocumented}"
    )
