"""Seed-determinism regression: campaigns are reproducible bit-for-bit.

The contract (docs/CAMPAIGNS.md): the same campaign invoked twice — with
the same seeds but *different* worker counts and chunk sizes — produces
identical reports and identical summaries.  Telemetry may differ; the
science may not.
"""


from repro.analysis.fuzz import schedule_for_run
from repro.campaign import fuzz_campaign, sweep_protocol_campaign
from repro.protocols import (
    KSetAgreementTask,
    RacingConsensus,
    TruncatedProtocol,
)

CONFIGS = [
    dict(workers=1, chunk_size=None),
    dict(workers=2, chunk_size=3),
    dict(workers=4, chunk_size=5),
    dict(workers=2, chunk_size=11),
]


def sweep_once(**config):
    return sweep_protocol_campaign(
        TruncatedProtocol(RacingConsensus(4), 1), [0, 1, 0, 1],
        range(14), task=KSetAgreementTask(1), **config,
    )


def fuzz_once(**config):
    return fuzz_campaign(
        TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
        KSetAgreementTask(1), runs=70, schedule_length=40, seed=9,
        **config,
    )


class TestCampaignDeterminism:
    def test_sweep_identical_across_configs(self):
        baseline = sweep_once(**CONFIGS[0])
        for config in CONFIGS[1:]:
            other = sweep_once(**config)
            assert other.report == baseline.report, config
            assert repr(other.report) == repr(baseline.report), config
            assert other.report.summary() == baseline.report.summary()

    def test_fuzz_identical_across_configs(self):
        baseline = fuzz_once(**CONFIGS[0])
        for config in CONFIGS[1:]:
            other = fuzz_once(**config)
            assert other.report == baseline.report, config
            assert repr(other.report) == repr(baseline.report), config
            assert other.report.summary() == baseline.report.summary()

    def test_repeated_invocation_identical(self):
        first = sweep_once(workers=2, chunk_size=4)
        second = sweep_once(workers=2, chunk_size=4)
        assert first.report == second.report
        assert repr(first.report) == repr(second.report)

    def test_fuzz_schedules_are_pure_functions_of_seed_and_index(self):
        # The per-run RNG derivation the whole contract rests on.
        a = schedule_for_run(9, 41, processes=3, length=40)
        b = schedule_for_run(9, 41, processes=3, length=40)
        assert a == b
        assert schedule_for_run(9, 42, 3, 40) != a
        assert schedule_for_run(10, 41, 3, 40) != a
