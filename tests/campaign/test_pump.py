"""CampaignPump: chunk-granular execution equals the blocking engine.

The pump is the tentpole seam the service stands on, so the tests here
are differential: drive a campaign chunk-by-chunk (in order, out of
order, with failures and retries, across a simulated crash) and demand
the finalized :class:`~repro.campaign.engine.CampaignResult` match what
``run_campaign`` produces for the same job.
"""

import pytest

from repro.campaign import (
    FakeClock,
    FuzzJob,
    RetryPolicy,
    SweepProtocolJob,
    run_campaign,
)
from repro.campaign.pump import CampaignPump, execute_chunk
from repro.errors import CampaignError
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    TruncatedProtocol,
)


def make_job(seed_count=12):
    return SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=tuple(range(seed_count)), task=KSetAgreementTask(3),
    )


def drain(pump):
    """Run a pump to completion on the calling thread, in handed order."""
    while not pump.done:
        task = pump.next_chunk()
        assert task is not None, "pump stalled with work outstanding"
        index, report, stats = execute_chunk(
            pump.job, task.index, task.start, task.stop, task.attempt
        )
        assert index == task.index
        pump.complete(task, report, stats)
    return pump.finalize()


class TestDifferential:
    def test_pump_report_identical_to_run_campaign(self):
        job = make_job()
        pumped = drain(CampaignPump(job, workers=2, chunk_size=3))
        blocking = run_campaign(job, workers=2, chunk_size=3)
        assert pumped.report == blocking.report
        assert repr(pumped.report) == repr(blocking.report)
        assert pumped.complete

    def test_out_of_order_completion_is_order_insensitive(self):
        job = make_job()
        pump = CampaignPump(job, workers=2, chunk_size=3)
        tasks = []
        while True:
            task = pump.next_chunk()
            if task is None:
                break
            tasks.append(task)
        # Report completions in reverse dispatch order.
        for task in reversed(tasks):
            _, report, stats = execute_chunk(
                pump.job, task.index, task.start, task.stop
            )
            pump.complete(task, report, stats)
        result = pump.finalize()
        expected = run_campaign(job, workers=2, chunk_size=3)
        assert result.report == expected.report

    def test_fuzz_job_pumps_identically(self):
        job = FuzzJob(
            protocol=TruncatedProtocol(RacingConsensus(3), 1),
            inputs=(0, 1, 2), task=KSetAgreementTask(1),
            runs=30, schedule_length=40, seed=0,
        )
        pumped = drain(CampaignPump(job, chunk_size=10))
        blocking = run_campaign(job, chunk_size=10)
        assert pumped.report == blocking.report


class TestRetries:
    def test_failed_chunk_requeues_with_backoff_deadline(self):
        clock = FakeClock()
        retry = RetryPolicy(max_retries=2, base_delay=1.0, jitter=0.0)
        pump = CampaignPump(
            make_job(), workers=1, chunk_size=3, retry=retry,
            clock=clock,
        )
        task = pump.next_chunk()
        ready_at = pump.fail(task, RuntimeError("boom"))
        assert ready_at is not None and ready_at > clock.now()
        # Other chunks flow while the retry waits out its backoff; the
        # retried chunk is withheld until the clock reaches it.
        seen = set()
        while True:
            other = pump.next_chunk()
            if other is None:
                break
            assert other.index != task.index
            seen.add(other.index)
            _, report, stats = execute_chunk(
                pump.job, other.index, other.start, other.stop
            )
            pump.complete(other, report, stats)
        assert seen  # progress happened despite the waiting retry
        clock.current = ready_at
        retried = pump.next_chunk()
        assert retried is not None
        assert retried.index == task.index
        assert retried.attempt == task.attempt + 1

    def test_exhausted_budget_degrades_to_partial_result(self):
        retry = RetryPolicy(max_retries=0)
        pump = CampaignPump(
            make_job(), workers=1, chunk_size=3, retry=retry,
            clock=FakeClock(),
        )
        failed_index = None
        while not pump.done:
            task = pump.next_chunk()
            if failed_index is None:
                failed_index = task.index
            if task.index == failed_index:
                assert pump.fail(task, RuntimeError("boom")) is None
                continue
            _, report, stats = execute_chunk(
                pump.job, task.index, task.start, task.stop
            )
            pump.complete(task, report, stats)
        result = pump.finalize()
        assert not result.complete
        assert len(result.missing) == 1
        assert "boom" in result.missing[0]
        assert result.telemetry.failures[0].index == failed_index

    def test_finalize_refuses_while_work_outstanding(self):
        pump = CampaignPump(make_job(), workers=1, chunk_size=3)
        pump.next_chunk()
        with pytest.raises(CampaignError, match="in flight"):
            pump.finalize()


class TestCheckpointHandoff:
    def test_new_pump_resumes_a_dead_pumps_journal(self, tmp_path):
        """Crash-and-rebuild: a fresh pump over the same journal skips
        the settled chunks and merges to the identical report."""
        path = str(tmp_path / "pump.ckpt")
        job = make_job()
        first = CampaignPump(job, workers=1, chunk_size=3,
                             checkpoint=path, resume=True)
        for _ in range(2):
            task = first.next_chunk()
            _, report, stats = execute_chunk(
                first.job, task.index, task.start, task.stop
            )
            first.complete(task, report, stats)
        # The first pump dies here — no finalize, journal left behind.

        second = CampaignPump(job, workers=1, chunk_size=3,
                              checkpoint=path, resume=True)
        assert second.completed_chunks == 2
        result = drain(second)
        assert result.telemetry.skipped_chunks == 2
        expected = run_campaign(job, workers=1, chunk_size=3)
        assert result.report == expected.report
        assert repr(result.report) == repr(expected.report)
