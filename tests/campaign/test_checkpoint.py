"""Checkpoint journal: schema round-trip, corruption detection, atomicity.

The journal must be paranoid: anything it cannot fully trust — a
truncated line, a checksum mismatch, an unknown schema version, a
fingerprint from a different campaign — raises a clear
:class:`~repro.errors.CheckpointError` rather than silently skipping or
repeating work.  And because flushes go tmp → fsync → rename, a crash
mid-write can leave a stale tmp file but never a half-written journal.
"""

import json
import os

import pytest

from repro.campaign import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointWriter,
    FakeClock,
    SweepProtocolJob,
    job_fingerprint,
    load_checkpoint,
    run_campaign,
)
from repro.core.sweep import SweepReport
from repro.errors import CheckpointError
from repro.protocols import KSetAgreementTask, MinSeen


def make_job(seed_count=12):
    return SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=tuple(range(seed_count)), task=KSetAgreementTask(3),
    )


def write_sample(path, job=None, chunks=((0, 3), (3, 6))):
    """A small valid journal with one report per chunk; returns reports."""
    job = job or make_job()
    fingerprint = job_fingerprint(job, 12, 3)
    writer = CheckpointWriter(str(path), fingerprint, 12, 3)
    reports = {}
    for index, (start, stop) in enumerate(chunks):
        report = job.run_range(start, stop)
        writer.record_chunk(index, start, stop, report)
        reports[index] = report
    return fingerprint, reports


class TestRoundTrip:
    def test_schema_round_trip(self, tmp_path):
        path = tmp_path / "ckpt"
        fingerprint, reports = write_sample(path)
        state = load_checkpoint(str(path))
        assert state.schema_version == CHECKPOINT_SCHEMA_VERSION
        assert state.fingerprint == fingerprint
        assert state.total_units == 12
        assert state.chunk_size == 3
        assert state.completed_indices == [0, 1]
        for index, report in reports.items():
            record = state.records[index]
            assert record.report == report
            assert repr(record.report) == repr(report)
            assert (record.start, record.stop) == (3 * index, 3 * index + 3)

    def test_recording_is_idempotent_per_index(self, tmp_path):
        path = tmp_path / "ckpt"
        job = make_job()
        fingerprint = job_fingerprint(job, 12, 3)
        writer = CheckpointWriter(str(path), fingerprint, 12, 3)
        report = job.run_range(0, 3)
        writer.record_chunk(0, 0, 3, report)
        writer.record_chunk(0, 0, 3, report)  # replay: must not duplicate
        state = load_checkpoint(str(path))
        assert state.completed_indices == [0]

    def test_resuming_writer_preserves_loaded_records(self, tmp_path):
        path = tmp_path / "ckpt"
        job = make_job()
        fingerprint, reports = write_sample(path, job)
        state = load_checkpoint(str(path))
        writer = CheckpointWriter(
            str(path), fingerprint, 12, 3, state=state
        )
        writer.record_chunk(2, 6, 9, job.run_range(6, 9))
        reloaded = load_checkpoint(str(path))
        assert reloaded.completed_indices == [0, 1, 2]
        assert reloaded.records[0].report == reports[0]

    def test_header_written_before_any_chunk(self, tmp_path):
        path = tmp_path / "ckpt"
        CheckpointWriter(str(path), "f" * 16, 12, 3)
        state = load_checkpoint(str(path))
        assert state.completed_indices == []


class TestCorruptionDetection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "nope"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "ckpt"
        path.write_text("")
        with pytest.raises(CheckpointError, match="empty"):
            load_checkpoint(str(path))

    def test_truncated_mid_record(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        text = path.read_text()
        path.write_text(text[: len(text) - 40])  # cut the last record
        with pytest.raises(CheckpointError, match="line 3"):
            load_checkpoint(str(path))

    def test_corrupted_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        payload = record["payload"]
        # Flip one base64 character (keeping it valid base64).
        flipped = ("B" if payload[10] != "B" else "C")
        record["payload"] = payload[:10] + flipped + payload[11:]
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(str(path))

    def test_garbage_line_detected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        with open(path, "a") as handle:
            handle.write("not json at all\n")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(str(path))

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 99
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="schema_version"):
            load_checkpoint(str(path))

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")  # drop the header
        with pytest.raises(CheckpointError, match="no header"):
            load_checkpoint(str(path))

    def test_duplicate_chunk_index_rejected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines + [lines[1]]) + "\n")
        with pytest.raises(CheckpointError, match="duplicate chunk"):
            load_checkpoint(str(path))

    def test_scalar_json_line_rejected(self, tmp_path):
        """A line that parses but is no object (e.g. a bare number)."""
        path = tmp_path / "ckpt"
        write_sample(path)
        with open(path, "a") as handle:
            handle.write("42\n")
        with pytest.raises(CheckpointError, match="expected an object"):
            load_checkpoint(str(path))

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        with open(path, "a") as handle:
            handle.write(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(CheckpointError, match="unknown record kind"):
            load_checkpoint(str(path))

    def test_chunk_record_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        with open(path, "a") as handle:
            handle.write(json.dumps({"kind": "chunk"}) + "\n")
        with pytest.raises(CheckpointError, match="malformed chunk record"):
            load_checkpoint(str(path))

    def test_header_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["fingerprint"]
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="malformed header"):
            load_checkpoint(str(path))

    def test_invalid_base64_payload_rejected(self, tmp_path):
        path = tmp_path / "ckpt"
        write_sample(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["payload"] = "!!!not base64!!!"
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="unreadable payload"):
            load_checkpoint(str(path))

    def test_unpicklable_payload_rejected(self, tmp_path):
        """Valid base64, matching checksum — but the bytes are not a
        pickle.  The checksum says 'intact'; unpickling must still be
        guarded, because intact garbage is not a report."""
        import base64
        import hashlib

        path = tmp_path / "ckpt"
        write_sample(path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        garbage = b"intact but not a pickle"
        record["payload"] = base64.b64encode(garbage).decode("ascii")
        record["sha256"] = hashlib.sha256(garbage).hexdigest()
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="failed to unpickle"):
            load_checkpoint(str(path))


class TestResumeValidation:
    def test_fingerprint_mismatch_rejected_on_resume(self, tmp_path):
        path = str(tmp_path / "ckpt")
        job = make_job()
        run_campaign(job, workers=1, chunk_size=3, checkpoint=path)
        different = SweepProtocolJob(
            protocol=MinSeen(3, rounds=3), inputs=(4, 1, 9),
            seeds=tuple(range(12)), task=KSetAgreementTask(3),
        )
        with pytest.raises(CheckpointError, match="fingerprint"):
            run_campaign(
                different, workers=1, chunk_size=3,
                checkpoint=path, resume=True,
            )

    def test_chunk_size_mismatch_rejected_on_resume(self, tmp_path):
        path = str(tmp_path / "ckpt")
        job = make_job()
        run_campaign(job, workers=1, chunk_size=3, checkpoint=path)
        with pytest.raises(CheckpointError, match="chunk_size"):
            run_campaign(
                job, workers=1, chunk_size=4,
                checkpoint=path, resume=True,
            )

    def test_auto_chunk_size_adopts_checkpoint_geometry(self, tmp_path):
        """Resuming without an explicit chunk_size reuses the journal's."""
        path = str(tmp_path / "ckpt")
        job = make_job()
        clean = run_campaign(job, workers=1, chunk_size=3)
        run_campaign(job, workers=1, chunk_size=3, checkpoint=path)
        resumed = run_campaign(
            job, workers=1, checkpoint=path, resume=True,
            clock=FakeClock(),
        )
        assert resumed.telemetry.chunk_size == 3
        assert resumed.report == clean.report

    def test_unit_count_mismatch_rejected_on_resume(self, tmp_path):
        path = str(tmp_path / "ckpt")
        run_campaign(make_job(12), workers=1, chunk_size=3,
                     checkpoint=path)
        with pytest.raises(CheckpointError, match="12 units"):
            run_campaign(
                make_job(15), workers=1, chunk_size=3,
                checkpoint=path, resume=True,
            )

    def test_chunk_range_mismatch_rejected_on_resume(self, tmp_path):
        """A journaled chunk whose range disagrees with the campaign's
        chunk plan (same fingerprint, same geometry) must be refused —
        merging it would double- or under-count units."""
        path = tmp_path / "ckpt"
        job = make_job()
        fingerprint = job_fingerprint(job, 12, 3)
        writer = CheckpointWriter(str(path), fingerprint, 12, 3)
        # Plan says chunk 0 covers (0, 3); journal claims (0, 4).
        writer.record_chunk(0, 0, 4, job.run_range(0, 4))
        with pytest.raises(CheckpointError, match="chunk plan"):
            run_campaign(
                job, workers=1, chunk_size=3,
                checkpoint=str(path), resume=True,
            )


class TestAtomicity:
    def test_leftover_tmp_file_is_ignored(self, tmp_path):
        """A crash between tmp-write and rename leaves <path>.*.tmp
        behind; loading reads only the atomically renamed journal."""
        path = tmp_path / "ckpt"
        fingerprint, reports = write_sample(path)
        (tmp_path / "ckpt.garbage.tmp").write_text("half a reco")
        state = load_checkpoint(str(path))
        assert state.completed_indices == [0, 1]
        assert state.records[1].report == reports[1]

    def test_crash_mid_flush_preserves_previous_journal(
        self, tmp_path, monkeypatch
    ):
        """If the rename itself dies, the old journal survives intact."""
        path = tmp_path / "ckpt"
        job = make_job()
        fingerprint = job_fingerprint(job, 12, 3)
        writer = CheckpointWriter(str(path), fingerprint, 12, 3)
        writer.record_chunk(0, 0, 3, job.run_range(0, 3))
        before = path.read_text()

        real_replace = os.replace

        def crashing_replace(src, dst):
            raise OSError("simulated crash during rename")

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(OSError):
            writer.record_chunk(1, 3, 6, job.run_range(3, 6))
        monkeypatch.setattr(os, "replace", real_replace)

        assert path.read_text() == before
        state = load_checkpoint(str(path))
        assert state.completed_indices == [0]


class TestFreshResume:
    def test_resume_with_missing_journal_starts_fresh(self, tmp_path):
        """``resume=True`` against a journal that doesn't exist yet must
        start fresh and create it — the first boot of every scripted
        ``--checkpoint P --resume`` loop hits this path."""
        path = tmp_path / "fresh.ckpt"
        job = make_job()
        result = run_campaign(
            job, workers=1, chunk_size=3,
            checkpoint=str(path), resume=True,
        )
        assert result.complete
        assert result.telemetry.skipped_chunks == 0
        state = load_checkpoint(str(path))
        assert state.completed_indices == [0, 1, 2, 3]

    def test_resume_creates_missing_parent_directories(self, tmp_path):
        """The journal's parent directory may not exist on first boot
        either (e.g. ``--checkpoint state/run/journal.ckpt``); the
        writer creates the whole path rather than failing the first
        flush."""
        path = tmp_path / "state" / "run" / "journal.ckpt"
        job = make_job()
        first = run_campaign(
            job, workers=1, chunk_size=3,
            checkpoint=str(path), resume=True,
        )
        assert path.exists()
        resumed = run_campaign(
            job, workers=1, chunk_size=3,
            checkpoint=str(path), resume=True,
        )
        assert resumed.telemetry.skipped_chunks == 4
        assert resumed.report == first.report
