"""Zero-unit campaigns: the degenerate case is a first-class result.

A campaign over an empty seed list (``--seeds 0`` at the CLI, an empty
sweep grid programmatically) has nothing to do — and "nothing to do"
must mean *complete success with the merge identity*, not a crash, a
hang, or a silently absent checkpoint:

* the merged report is exactly ``job.empty_report()`` (finalized);
* ``complete`` is ``True`` and ``strict=True`` does not raise;
* a checkpoint path still gets a valid header-only journal (written at
  :class:`~repro.campaign.checkpoint.CheckpointWriter` construction,
  so even a zero-chunk campaign leaves a resumable artifact);
* resuming from that journal replays to the same empty result, and a
  *different* job is still rejected on the fingerprint.
"""

import pytest

from repro.campaign import run_campaign
from repro.campaign.checkpoint import job_fingerprint, load_checkpoint
from repro.campaign.jobs import SweepProtocolJob
from repro.errors import CheckpointError
from repro.protocols import KSetAgreementTask, MinSeen


def zero_unit_job():
    return SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=(), task=KSetAgreementTask(3),
    )


class TestZeroUnitCampaign:
    def test_completes_with_the_merge_identity(self):
        job = zero_unit_job()
        result = run_campaign(job, workers=4, chunk_size=3)
        assert result.complete
        assert result.missing == ()
        assert result.report == job.finalize(job.empty_report())
        assert result.report.runs == 0

    def test_strict_mode_does_not_raise(self):
        result = run_campaign(zero_unit_job(), strict=True)
        assert result.complete

    def test_summary_renders_without_partial_banner(self):
        result = run_campaign(zero_unit_job())
        assert "PARTIAL RESULT" not in result.summary()

    def test_checkpoint_writes_header_only_journal(self, tmp_path):
        path = tmp_path / "zero.ckpt"
        job = zero_unit_job()
        run_campaign(job, checkpoint=str(path))
        assert path.exists()
        state = load_checkpoint(str(path))
        assert state.total_units == 0
        assert state.records == {}
        assert state.fingerprint == job_fingerprint(job, 0, 1)

    def test_resume_from_zero_unit_checkpoint(self, tmp_path):
        path = tmp_path / "zero.ckpt"
        job = zero_unit_job()
        first = run_campaign(job, checkpoint=str(path))
        resumed = run_campaign(
            job, checkpoint=str(path), resume=True, strict=True
        )
        assert resumed.complete
        assert resumed.report == first.report

    def test_resume_rejects_a_different_job(self, tmp_path):
        path = tmp_path / "zero.ckpt"
        run_campaign(zero_unit_job(), checkpoint=str(path))
        other = SweepProtocolJob(
            protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
            seeds=(0,), task=KSetAgreementTask(3),
        )
        with pytest.raises(CheckpointError):
            run_campaign(other, checkpoint=str(path), resume=True)
