"""Differential suite: parallel campaigns equal serial runs exactly.

For a grid of (harness, protocol, instance, worker count), the campaign
engine's merged report must equal the plain serial harness call
field-for-field — including ``decisions_histogram`` and
``first_violating_seed`` — and even as a byte string (``repr``).  This
is the evidence that parallelism never changes a scientific result.
"""

import pytest

from repro.analysis.fuzz import fuzz_protocol
from repro.campaign import (
    fuzz_campaign,
    sweep_protocol_campaign,
    sweep_simulation_campaign,
)
from repro.core.sweep import sweep_protocol, sweep_simulation
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
)

WORKER_GRID = [1, 2, 4]


def assert_reports_identical(parallel, serial):
    assert parallel == serial
    assert repr(parallel) == repr(serial)
    assert parallel.summary() == serial.summary()


PROTOCOL_CASES = [
    # (protocol factory, inputs, task) — n varies across cases.
    (lambda: MinSeen(3, rounds=2), [4, 1, 9], KSetAgreementTask(3)),
    (lambda: RacingConsensus(3), [0, 1, 1], KSetAgreementTask(1)),
    (lambda: TruncatedProtocol(RacingConsensus(4), 1), [0, 1, 0, 1],
     KSetAgreementTask(1)),
]


class TestSweepProtocolDifferential:
    @pytest.mark.parametrize("case", range(len(PROTOCOL_CASES)))
    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_matches_serial(self, case, workers):
        make, inputs, task = PROTOCOL_CASES[case]
        seeds = range(12)
        serial = sweep_protocol(make(), inputs, seeds, task=task)
        result = sweep_protocol_campaign(
            make(), inputs, seeds, task=task, workers=workers,
            chunk_size=5,
        )
        assert_reports_identical(result.report, serial)

    def test_histogram_and_min_seed_fields(self):
        # The violating case: every field the write-ups quote must agree.
        make, inputs, task = PROTOCOL_CASES[2]
        serial = sweep_protocol(make(), inputs, range(10), task=task)
        result = sweep_protocol_campaign(
            make(), inputs, range(10), task=task, workers=4, chunk_size=3,
        )
        assert result.report.decisions_histogram == (
            serial.decisions_histogram
        )
        assert result.report.first_violating_seed == (
            serial.first_violating_seed
        )


class TestSweepSimulationDifferential:
    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_falsifier_matches_serial(self, workers):
        protocol = TruncatedProtocol(RacingConsensus(2), 1)
        serial = sweep_simulation(
            protocol, k=1, x=1, inputs=[0, 1], seeds=range(8),
            task=KSetAgreementTask(1),
        )
        result = sweep_simulation_campaign(
            TruncatedProtocol(RacingConsensus(2), 1), k=1, x=1,
            inputs=[0, 1], seeds=range(8), task=KSetAgreementTask(1),
            workers=workers, chunk_size=3,
        )
        assert_reports_identical(result.report, serial)
        assert result.report.first_violating_seed == 0

    @pytest.mark.parametrize("workers", [2, 4])
    def test_verified_positive_matches_serial(self, workers):
        serial = sweep_simulation(
            RotatingWrites(7, 3, rounds=6), k=2, x=1, inputs=[5, 2, 8],
            seeds=range(6), verify_correspondence=True,
        )
        result = sweep_simulation_campaign(
            RotatingWrites(7, 3, rounds=6), k=2, x=1, inputs=[5, 2, 8],
            seeds=range(6), verify_correspondence=True, workers=workers,
            chunk_size=2,
        )
        assert_reports_identical(result.report, serial)
        assert result.report.clean


class TestFuzzDifferential:
    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_violating_fuzz_matches_serial(self, workers):
        protocol = TruncatedProtocol(RacingConsensus(3), 1)
        serial = fuzz_protocol(
            protocol, [0, 1, 2], KSetAgreementTask(1), runs=80,
            schedule_length=40, seed=3,
        )
        result = fuzz_campaign(
            TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
            KSetAgreementTask(1), runs=80, schedule_length=40, seed=3,
            workers=workers, chunk_size=9,
        )
        assert_reports_identical(result.report, serial)
        # The shrunken counterexample is the same object content-wise.
        assert result.report.minimized == serial.minimized
        assert result.report.first_violation_schedule == (
            serial.first_violation_schedule
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_clean_fuzz_matches_serial(self, workers):
        serial = fuzz_protocol(
            RacingConsensus(3), [0, 1, 1], KSetAgreementTask(1),
            runs=60, schedule_length=50, seed=2,
        )
        result = fuzz_campaign(
            RacingConsensus(3), [0, 1, 1], KSetAgreementTask(1),
            runs=60, schedule_length=50, seed=2, workers=workers,
        )
        assert_reports_identical(result.report, serial)
        assert result.report.clean
