"""Chaos suite: campaigns under injected faults stay deterministic.

Two properties anchor the fault-tolerance layer:

1. **Fault-transparency.**  For any :class:`FaultPlan` whose chunks all
   eventually succeed (flaky/slow/hang-then-recover), the merged report
   is ``==`` and ``repr``-identical to the fault-free run — retries,
   backoff, and re-dispatch never leak into the science.
2. **Kill-and-resume determinism.**  A campaign killed after *any*
   prefix of chunks, then resumed from its checkpoint, merges to a
   report identical to an uninterrupted run — for sweep, fuzz, and
   explore jobs alike.

Both hold because chunk reports are pure functions of their unit ranges
and merge through an associative monoid (docs/CAMPAIGNS.md); these
tests are the proof that the fault machinery preserves that purity.
"""

import random

import pytest

from repro.campaign import (
    CampaignKilled,
    ExploreJob,
    FakeClock,
    FaultPlan,
    FaultSpec,
    FuzzJob,
    RetryPolicy,
    SweepProtocolJob,
    plan_chunks,
    run_campaign,
)
from repro.errors import CampaignError
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    TruncatedProtocol,
)

CHUNK_SIZE = 3

#: Retry policy for chaos runs: generous attempts, fake-clock paced.
CHAOS_RETRY = RetryPolicy(max_retries=4, base_delay=0.01)


def sweep_job():
    return SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=tuple(range(12)), task=KSetAgreementTask(3),
    )


def fuzz_job():
    return FuzzJob(
        protocol=TruncatedProtocol(RacingConsensus(3), 1),
        inputs=(0, 1, 2), task=KSetAgreementTask(1),
        runs=12, schedule_length=25, seed=7,
    )


def explore_job():
    return ExploreJob(
        protocol=TruncatedProtocol(RacingConsensus(3), 1),
        inputs=(0, 1, 2), task=KSetAgreementTask(1),
        max_configs=4_000, max_steps=9, prefix_depth=2,
    )


ALL_JOBS = [sweep_job, fuzz_job, explore_job]


def chunk_count(job):
    return len(plan_chunks(job.total_units(), CHUNK_SIZE))


def run(job, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("chunk_size", CHUNK_SIZE)
    kwargs.setdefault("retry", CHAOS_RETRY)
    kwargs.setdefault("clock", FakeClock())
    return run_campaign(job, **kwargs)


def random_recoverable_plan(rng, chunks):
    """A seeded random FaultPlan where every chunk eventually succeeds."""
    faults = {}
    for index in range(chunks):
        roll = rng.random()
        if roll < 0.3:
            faults[index] = FaultSpec(
                "flaky", attempts=rng.randint(1, CHAOS_RETRY.max_retries)
            )
        elif roll < 0.45:
            faults[index] = FaultSpec(
                "hang", attempts=rng.randint(1, CHAOS_RETRY.max_retries)
            )
        elif roll < 0.6:
            faults[index] = FaultSpec("slow", delay=rng.uniform(0.01, 0.5))
    return FaultPlan(faults)


class TestFaultTransparency:
    @pytest.mark.parametrize("make_job", ALL_JOBS)
    @pytest.mark.parametrize("seed", range(6))
    def test_recoverable_faults_never_change_the_report(
        self, make_job, seed
    ):
        """Property: any eventually-succeeding plan == the fault-free run."""
        job = make_job()
        clean = run(job)
        plan = random_recoverable_plan(
            random.Random(seed), chunk_count(job)
        )
        chaotic = run(job, faults=plan)
        assert chaotic.report == clean.report
        assert repr(chaotic.report) == repr(clean.report)
        assert chaotic.report.summary() == clean.report.summary()
        assert chaotic.complete

    @pytest.mark.parametrize("make_job", ALL_JOBS)
    def test_every_chunk_flaky_still_identical(self, make_job):
        job = make_job()
        clean = run(job)
        plan = FaultPlan.flaky(*range(chunk_count(job)), failures=2)
        chaotic = run(job, faults=plan)
        assert chaotic.report == clean.report
        assert repr(chaotic.report) == repr(clean.report)
        assert chaotic.telemetry.retries == 2 * chunk_count(job)

    def test_injected_hang_is_counted_as_timeout(self):
        job = sweep_job()
        result = run(
            job,
            retry=RetryPolicy(max_retries=0),
            faults=FaultPlan({1: FaultSpec("hang")}),
        )
        [failure] = result.failed_chunks
        assert failure.kind == "timeout"
        assert "ChunkTimeout" in failure.error


class TestGracefulDegradation:
    @pytest.mark.parametrize("make_job", ALL_JOBS)
    def test_partial_result_names_missing_ranges(self, make_job):
        job = make_job()
        clean = run(job)
        result = run(
            job, retry=RetryPolicy(max_retries=1, base_delay=0.01),
            faults=FaultPlan.crash(1),
        )
        assert not result.complete
        assert result.missing_ranges() == [(3, 6)]
        assert len(result.missing) == 1
        assert "chunk 1 failed after 2 attempts" in result.missing[0]
        assert "PARTIAL RESULT" in result.summary()
        # The partial report is the clean run minus exactly that chunk.
        partial_serial = job.empty_report()
        for start, stop in plan_chunks(job.total_units(), CHUNK_SIZE):
            if (start, stop) != (3, 6):
                partial_serial = partial_serial.merge(
                    job.run_range(start, stop)
                )
        assert result.report == job.finalize(partial_serial)
        assert clean.complete  # sanity: faults were the only difference

    def test_strict_raises_with_partial_result_attached(self):
        job = sweep_job()
        with pytest.raises(CampaignError) as excinfo:
            run(
                job, retry=RetryPolicy(max_retries=0),
                faults=FaultPlan.crash(0), strict=True,
            )
        assert "missing" in str(excinfo.value)
        attached = excinfo.value.result
        assert attached is not None and not attached.complete
        assert attached.report.runs == job.total_units() - CHUNK_SIZE

    def test_strict_completes_normally_without_failures(self):
        job = sweep_job()
        result = run(job, strict=True)
        assert result.complete


class TestKillAndResume:
    @pytest.mark.parametrize("make_job", ALL_JOBS)
    def test_kill_at_every_chunk_then_resume_is_identical(
        self, make_job, tmp_path
    ):
        """Kill-at-chunk-k → resume == uninterrupted, for every k."""
        job = make_job()
        clean = run(job)
        for k in range(chunk_count(job)):
            path = str(tmp_path / f"kill_{k}.ckpt")
            with pytest.raises(CampaignKilled):
                run(job, checkpoint=path, faults=FaultPlan.kill_at(k))
            resumed = run(job, checkpoint=path, resume=True)
            assert resumed.report == clean.report, f"kill at chunk {k}"
            assert repr(resumed.report) == repr(clean.report)
            assert resumed.telemetry.skipped_chunks == k
            assert resumed.complete

    def test_resume_after_kill_mid_faulty_run(self, tmp_path):
        """Faults before the kill don't poison the journal: chunks that
        retried to success are checkpointed like any other."""
        job = sweep_job()
        clean = run(job)
        path = str(tmp_path / "mid.ckpt")
        plan = FaultPlan({
            0: FaultSpec("flaky", attempts=2),
            2: FaultSpec("kill"),
        })
        with pytest.raises(CampaignKilled):
            run(job, checkpoint=path, faults=plan)
        resumed = run(job, checkpoint=path, resume=True)
        assert resumed.report == clean.report
        assert resumed.telemetry.skipped_chunks == 2

    def test_double_resume_is_a_no_op_rerun(self, tmp_path):
        """Resuming a fully-checkpointed campaign reruns nothing."""
        job = sweep_job()
        path = str(tmp_path / "full.ckpt")
        first = run(job, checkpoint=path)
        again = run(job, checkpoint=path, resume=True)
        assert again.report == first.report
        assert repr(again.report) == repr(first.report)
        assert again.telemetry.total_units == 0
        assert again.telemetry.skipped_chunks == chunk_count(job)

    def test_resume_ignores_missing_checkpoint(self, tmp_path):
        """resume=True with no file starts fresh — the same invocation
        works for first runs and recoveries."""
        job = sweep_job()
        clean = run(job)
        path = str(tmp_path / "fresh.ckpt")
        result = run(job, checkpoint=path, resume=True)
        assert result.report == clean.report
        assert result.telemetry.skipped_chunks == 0


class TestPooledChaos:
    def test_pooled_recoverable_faults_identical_to_clean(self):
        """The fault seam is live on the pooled path too."""
        job = sweep_job()
        clean = run(job)
        chaotic = run_campaign(
            job, workers=2, chunk_size=CHUNK_SIZE,
            retry=RetryPolicy(max_retries=3, base_delay=0.001),
            faults=FaultPlan({
                0: FaultSpec("flaky", attempts=1),
                2: FaultSpec("hang", attempts=1),
            }),
        )
        assert chaotic.report == clean.report
        assert repr(chaotic.report) == repr(clean.report)
        assert chaotic.telemetry.retries == 2

    def test_pooled_checkpoint_then_inprocess_resume(self, tmp_path):
        """Journals written by the pooled path resume in-process (and
        vice versa): the checkpoint format is mode-agnostic."""
        job = sweep_job()
        clean = run(job)
        path = str(tmp_path / "pooled.ckpt")
        pooled = run_campaign(
            job, workers=2, chunk_size=CHUNK_SIZE, checkpoint=path,
        )
        assert pooled.report == clean.report
        resumed = run(job, checkpoint=path, resume=True)
        assert resumed.report == clean.report
        assert resumed.telemetry.skipped_chunks == chunk_count(job)
