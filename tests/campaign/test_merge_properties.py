"""Property tests: report merging is a commutative monoid.

``merge()`` on :class:`SweepReport` and :class:`FuzzReport` must be
associative and commutative with the default-constructed report as
identity — that algebra is exactly what lets the campaign engine fold
worker results in any grouping without changing the outcome.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.explore import ExplorationReport
from repro.analysis.fuzz import FuzzReport, ViolationRecord
from repro.core.sweep import SweepReport

values = st.sampled_from(["a", "b", 0, 1, 7])

histograms = st.dictionaries(values, st.integers(1, 50), max_size=4)

sweep_reports = st.builds(
    SweepReport,
    runs=st.integers(0, 100),
    completed=st.integers(0, 300),
    all_decided=st.integers(0, 100),
    safety_violations=st.integers(0, 100),
    divergences=st.integers(0, 100),
    correspondence_failures=st.integers(0, 100),
    first_violating_seed=st.none() | st.integers(0, 10_000),
    max_steps_observed=st.integers(0, 10_000),
    decisions_histogram=histograms,
)


def schedules():
    return st.lists(st.integers(0, 3), min_size=1, max_size=8).map(tuple)


def fuzz_report_in_range(lo, hi):
    """Reports whose violation run indices live in ``[lo, hi)``.

    Disjoint ranges per report mirror the engine's contract (each worker
    owns a disjoint run range) and keep tie-breaking out of play.
    """
    def build(indices, scheds, runs_extra):
        records = sorted(
            (ViolationRecord(i, s) for i, s in zip(indices, scheds)),
            key=lambda r: r.sort_key,
        )
        return FuzzReport(
            runs=len(records) + runs_extra,
            violating_runs=len(records),
            violations=records,
        )

    return st.builds(
        build,
        st.lists(
            st.integers(lo, hi - 1), unique=True, min_size=0, max_size=6
        ),
        st.lists(schedules(), min_size=6, max_size=6),
        st.integers(0, 40),
    )


violation_messages = st.lists(
    st.sampled_from(["agreement: {0, 1}", "validity: 7", "validity: 9"]),
    unique=True, max_size=3,
).map(sorted)

exploration_reports = st.builds(
    ExplorationReport,
    violations=violation_messages,
    configurations=st.integers(0, 10_000),
    truncated=st.booleans(),
    fully_decided=st.integers(0, 10_000),
    counterexample=st.none() | st.lists(
        st.integers(0, 3), min_size=1, max_size=8
    ),
)


class TestExplorationReportMonoid:
    @settings(max_examples=60)
    @given(a=exploration_reports, b=exploration_reports)
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=60)
    @given(a=exploration_reports, b=exploration_reports,
           c=exploration_reports)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=60)
    @given(r=exploration_reports)
    def test_identity(self, r):
        assert ExplorationReport().merge(r) == r
        assert r.merge(ExplorationReport()) == r

    @settings(max_examples=60)
    @given(a=exploration_reports, b=exploration_reports)
    def test_merge_is_pure(self, a, b):
        before_a, before_b = repr(a), repr(b)
        a.merge(b)
        assert repr(a) == before_a
        assert repr(b) == before_b

    @settings(max_examples=60)
    @given(a=exploration_reports, b=exploration_reports)
    def test_counterexample_is_lexicographic_minimum(self, a, b):
        merged = a.merge(b)
        candidates = [
            c for c in (a.counterexample, b.counterexample)
            if c is not None
        ]
        if candidates:
            assert merged.counterexample == min(candidates)
        else:
            assert merged.counterexample is None

    @settings(max_examples=60)
    @given(a=exploration_reports, b=exploration_reports)
    def test_tallies_sum_and_violations_union(self, a, b):
        merged = a.merge(b)
        assert merged.configurations == a.configurations + b.configurations
        assert merged.fully_decided == a.fully_decided + b.fully_decided
        assert merged.truncated == (a.truncated or b.truncated)
        assert merged.violations == sorted(
            set(a.violations) | set(b.violations)
        )
        assert merged.safe == (a.safe and b.safe)


class TestSweepReportMonoid:
    @settings(max_examples=60)
    @given(a=sweep_reports, b=sweep_reports)
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=60)
    @given(a=sweep_reports, b=sweep_reports, c=sweep_reports)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=60)
    @given(r=sweep_reports)
    def test_identity(self, r):
        assert SweepReport().merge(r) == r
        assert r.merge(SweepReport()) == r

    @settings(max_examples=60)
    @given(r=sweep_reports)
    def test_merge_is_pure(self, r):
        before = repr(r)
        r.merge(r)
        assert repr(r) == before


class TestFuzzReportMonoid:
    @settings(max_examples=60)
    @given(
        a=fuzz_report_in_range(0, 1000),
        b=fuzz_report_in_range(1000, 2000),
    )
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=60)
    @given(
        a=fuzz_report_in_range(0, 1000),
        b=fuzz_report_in_range(1000, 2000),
        c=fuzz_report_in_range(2000, 3000),
    )
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=60)
    @given(r=fuzz_report_in_range(0, 3000))
    def test_identity(self, r):
        assert FuzzReport().merge(r) == r
        assert r.merge(FuzzReport()) == r

    @settings(max_examples=60)
    @given(
        a=fuzz_report_in_range(0, 1000),
        b=fuzz_report_in_range(1000, 2000),
    )
    def test_merged_violations_sorted_and_capped(self, a, b):
        merged = a.merge(b)
        keys = [r.sort_key for r in merged.violations]
        assert keys == sorted(keys)
        assert len(merged.violations) <= merged.max_saved_violations
        assert merged.violating_runs == (
            a.violating_runs + b.violating_runs
        )

    @settings(max_examples=60)
    @given(
        a=fuzz_report_in_range(0, 1000),
        b=fuzz_report_in_range(1000, 2000),
    )
    def test_first_violation_is_global_minimum(self, a, b):
        merged = a.merge(b)
        union = a.violations + b.violations
        if union:
            assert merged.violations[0] == min(
                union, key=lambda r: r.sort_key
            )
        else:
            assert merged.first_violation_schedule is None
