"""Differential suite: sharded exploration equals serial exploration.

For a grid of (protocol, instance, worker count, chunk size), the
campaign engine's merged :class:`ExplorationReport` must equal a serial
``explore_protocol`` call with the same ``prefix_depth`` field-for-field
— including ``counterexample`` and ``truncated`` — and even as a byte
string (``repr``).  Both truncated-racing (violating) and safe
instances are covered, with ``stop_at_first_violation`` in both
positions, so neither verdict path can drift between the serial and
sharded explorers.
"""

import pytest

from repro.analysis import explore_protocol
from repro.campaign import ExploreJob, explore_campaign, run_campaign
from repro.protocols import (
    AnonymousSweepConsensus,
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    TruncatedProtocol,
)

WORKER_GRID = [1, 2, 4]


def assert_reports_identical(parallel, serial):
    assert parallel == serial
    assert repr(parallel) == repr(serial)
    assert parallel.summary() == serial.summary()


EXPLORE_CASES = [
    # (protocol factory, inputs, task, bounds, expect_safe)
    (lambda: TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=20), False),
    (lambda: RacingConsensus(2), [0, 1],
     KSetAgreementTask(1), dict(max_configs=50_000, max_steps=14), True),
    (lambda: MinSeen(2), [0, 1],
     KSetAgreementTask(2), dict(max_configs=100_000, max_steps=None), True),
]


class TestExploreDifferential:
    @pytest.mark.parametrize("case", range(len(EXPLORE_CASES)))
    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_matches_serial(self, case, workers):
        make, inputs, task, bounds, expect_safe = EXPLORE_CASES[case]
        serial = explore_protocol(
            make(), inputs, task, prefix_depth=2, **bounds
        )
        result = explore_campaign(
            make(), inputs, task, prefix_depth=2, workers=workers,
            chunk_size=2, **bounds
        )
        assert_reports_identical(result.report, serial)
        assert result.report.safe == expect_safe

    @pytest.mark.parametrize("workers", [2, 4])
    def test_collect_all_matches_serial(self, workers):
        make, inputs, task, bounds, _ = EXPLORE_CASES[0]
        serial = explore_protocol(
            make(), inputs, task, prefix_depth=2,
            stop_at_first_violation=False, **bounds
        )
        result = explore_campaign(
            make(), inputs, task, prefix_depth=2,
            stop_at_first_violation=False, workers=workers, chunk_size=3,
            **bounds
        )
        assert_reports_identical(result.report, serial)
        assert len(result.report.violations) >= 1
        assert result.report.counterexample == serial.counterexample

    @pytest.mark.parametrize("chunk_size", [1, 2, 4, 100])
    def test_chunking_invariant(self, chunk_size):
        make, inputs, task, bounds, _ = EXPLORE_CASES[0]
        serial = explore_protocol(
            make(), inputs, task, prefix_depth=2, **bounds
        )
        result = explore_campaign(
            make(), inputs, task, prefix_depth=2, workers=2,
            chunk_size=chunk_size, **bounds
        )
        assert_reports_identical(result.report, serial)

    @pytest.mark.parametrize("prefix_depth", [0, 1, 2, 3])
    def test_prefix_depth_grid_matches_serial(self, prefix_depth):
        make, inputs, task, bounds, _ = EXPLORE_CASES[1]
        serial = explore_protocol(
            make(), inputs, task, prefix_depth=prefix_depth, **bounds
        )
        result = explore_campaign(
            make(), inputs, task, prefix_depth=prefix_depth, workers=2,
            chunk_size=1, **bounds
        )
        assert_reports_identical(result.report, serial)

    def test_job_units_cover_prefix_tree(self):
        make, inputs, task, bounds, _ = EXPLORE_CASES[0]
        job = ExploreJob(
            protocol=make(), inputs=tuple(inputs), task=task,
            prefix_depth=2, **bounds
        )
        # 3 undecided processes → 9 depth-2 prefixes; run_campaign over
        # those units reproduces the serial report.
        assert job.total_units() == 9
        serial = explore_protocol(
            make(), inputs, task, prefix_depth=2, **bounds
        )
        result = run_campaign(job, workers=2, chunk_size=2)
        assert_reports_identical(result.report, serial)


class TestModeDifferential:
    """serial == sharded must survive the encoding and symmetry modes:
    the campaign engine threads ``packed``/``symmetry`` through
    :class:`~repro.campaign.jobs.ExploreJob` into every worker, and the
    merged report must stay byte-identical to a serial run in the same
    mode — and, for ``packed``, to the default mode too."""

    @pytest.mark.parametrize("case", range(len(EXPLORE_CASES)))
    @pytest.mark.parametrize("workers", [1, 2])
    def test_unpacked_sharded_matches_packed_serial(self, case, workers):
        make, inputs, task, bounds, _ = EXPLORE_CASES[case]
        serial = explore_protocol(
            make(), inputs, task, prefix_depth=2, **bounds
        )
        result = explore_campaign(
            make(), inputs, task, prefix_depth=2, workers=workers,
            chunk_size=2, packed=False, **bounds
        )
        assert_reports_identical(result.report, serial)

    @pytest.mark.parametrize("workers", WORKER_GRID)
    def test_symmetry_sharded_matches_symmetry_serial(self, workers):
        protocol = AnonymousSweepConsensus(3, m=2)
        inputs, task = [0, 1, 1], KSetAgreementTask(1)
        bounds = dict(max_configs=300_000, max_steps=12)
        serial = explore_protocol(
            protocol, inputs, task, prefix_depth=2, symmetry=True,
            **bounds
        )
        result = explore_campaign(
            protocol, inputs, task, prefix_depth=2, workers=workers,
            chunk_size=2, symmetry=True, **bounds
        )
        assert_reports_identical(result.report, serial)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_symmetry_on_identity_protocol_is_inert_sharded(self, workers):
        make, inputs, task, bounds, _ = EXPLORE_CASES[1]
        plain = explore_campaign(
            make(), inputs, task, prefix_depth=2, workers=workers,
            chunk_size=2, **bounds
        )
        requested = explore_campaign(
            make(), inputs, task, prefix_depth=2, workers=workers,
            chunk_size=2, symmetry=True, **bounds
        )
        assert_reports_identical(requested.report, plain.report)

    def test_explore_job_carries_modes_into_checkpoint_fingerprint(self):
        from repro.campaign.checkpoint import job_fingerprint

        make, inputs, task, bounds, _ = EXPLORE_CASES[1]
        jobs = [
            ExploreJob(protocol=make(), inputs=tuple(inputs), task=task,
                       prefix_depth=2, **bounds),
            ExploreJob(protocol=make(), inputs=tuple(inputs), task=task,
                       prefix_depth=2, packed=False, **bounds),
            ExploreJob(protocol=make(), inputs=tuple(inputs), task=task,
                       prefix_depth=2, symmetry=True, **bounds),
        ]
        prints = {job_fingerprint(job, 4, 1) for job in jobs}
        # A checkpoint written in one mode must not resume in another.
        assert len(prints) == 3
