"""Retry/backoff timing under an injected fake clock — no real sleeps.

The backoff schedule is part of the engine's observable behavior: these
tests pin the exponential sequence, the cap, the deterministic jitter
bounds, and — via :class:`FakeClock` — the exact sleeps the in-process
retry loop performs.  Nothing here waits on a real clock.
"""

import time

import pytest

from repro.campaign import (
    FakeClock,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SweepProtocolJob,
    SystemClock,
    run_campaign,
)
from repro.errors import ValidationError
from repro.protocols import KSetAgreementTask, MinSeen


def make_job(seed_count=9):
    return SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=tuple(range(seed_count)), task=KSetAgreementTask(3),
    )


class TestDelaySchedule:
    def test_exponential_sequence_without_jitter(self):
        policy = RetryPolicy(
            max_retries=5, base_delay=0.1, backoff_factor=2.0,
            max_delay=10.0, jitter=0.0,
        )
        delays = [policy.delay_before(0, a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.6]

    def test_max_delay_caps_the_exponential(self):
        policy = RetryPolicy(
            max_retries=10, base_delay=1.0, backoff_factor=3.0,
            max_delay=5.0, jitter=0.0,
        )
        assert policy.delay_before(0, 1) == 1.0
        assert policy.delay_before(0, 2) == 3.0
        assert policy.delay_before(0, 3) == 5.0   # capped
        assert policy.delay_before(0, 9) == 5.0   # stays capped

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25, max_retries=4)
        for chunk in range(20):
            for attempt in range(1, 5):
                base = min(
                    policy.max_delay,
                    policy.base_delay
                    * policy.backoff_factor ** (attempt - 1),
                )
                delay = policy.delay_before(chunk, attempt)
                assert base * 0.75 <= delay <= base * 1.25
                # Deterministic: same (chunk, attempt) → same delay.
                assert delay == policy.delay_before(chunk, attempt)

    def test_jitter_varies_across_chunks(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        delays = {policy.delay_before(chunk, 1) for chunk in range(16)}
        assert len(delays) > 1

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=0).max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValidationError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValidationError):
            RetryPolicy().delay_before(0, 0)


class TestEngineBackoffPacing:
    def test_sleeps_match_the_policy_exactly(self):
        """Three injected failures on chunk 1 → exactly the policy's
        backoff sequence for chunk 1, attempts 1..3, and nothing else."""
        policy = RetryPolicy(max_retries=3, base_delay=0.2, jitter=0.1)
        clock = FakeClock()
        job = make_job()
        result = run_campaign(
            job, workers=1, chunk_size=3, retry=policy,
            faults=FaultPlan({1: FaultSpec("flaky", attempts=3)}),
            clock=clock,
        )
        assert result.complete
        expected = [policy.delay_before(1, a) for a in (1, 2, 3)]
        assert clock.sleeps == expected
        assert clock.now() == pytest.approx(sum(expected))

    def test_no_sleeps_on_the_clean_path(self):
        """Fault machinery off the hot path: a fault-free campaign never
        touches the clock."""
        clock = FakeClock()
        result = run_campaign(
            make_job(), workers=1, chunk_size=3, clock=clock
        )
        assert result.complete
        assert clock.sleeps == []
        assert clock.now() == 0.0

    def test_interleaved_chunk_failures_sleep_per_chunk(self):
        policy = RetryPolicy(max_retries=2, base_delay=0.1, jitter=0.2)
        clock = FakeClock()
        run_campaign(
            make_job(), workers=1, chunk_size=3, retry=policy,
            faults=FaultPlan.flaky(0, 2, failures=1), clock=clock,
        )
        assert clock.sleeps == [
            policy.delay_before(0, 1), policy.delay_before(2, 1),
        ]

    def test_exhausted_retries_sleep_only_between_attempts(self):
        """max_retries backoffs happen; no sleep after the final failure."""
        policy = RetryPolicy(max_retries=2, base_delay=0.05, jitter=0.0)
        clock = FakeClock()
        result = run_campaign(
            make_job(), workers=1, chunk_size=3, retry=policy,
            faults=FaultPlan.crash(1), clock=clock,
        )
        assert not result.complete
        assert clock.sleeps == [0.05, 0.1]

    def test_slow_fault_uses_injected_clock(self):
        """'slow' faults pace through the same clock: virtual, not real."""
        clock = FakeClock()
        wall_before = time.perf_counter()
        result = run_campaign(
            make_job(), workers=1, chunk_size=3,
            faults=FaultPlan({0: FaultSpec("slow", delay=60.0)}),
            clock=clock,
        )
        assert time.perf_counter() - wall_before < 5.0  # no real minute
        assert result.complete
        assert clock.sleeps == [60.0]


class TestClocks:
    def test_fake_clock_advances_virtually(self):
        clock = FakeClock(start=100.0)
        clock.sleep(2.5)
        clock.sleep(0.5)
        assert clock.now() == 103.0
        assert clock.sleeps == [2.5, 0.5]

    def test_system_clock_is_monotonic_and_skips_nonpositive_sleeps(self):
        clock = SystemClock()
        first = clock.now()
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert clock.now() >= first
