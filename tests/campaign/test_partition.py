"""auto_workers sizes worker pools from the *usable* CPUs.

Regression suite for the affinity bug: ``os.cpu_count()`` reports every
core in the machine, but under cgroup CPU sets / container pinning /
``taskset`` the process may only run on a subset, and sizing a process
pool at the machine count oversubscribes the allowed cores.  The fix
prefers ``len(os.sched_getaffinity(0))`` and only falls back to
``os.cpu_count()`` on platforms without affinity (macOS, Windows) or
when the affinity call itself fails.
"""

import os

import pytest

from repro.campaign.partition import auto_workers, plan_chunks


class TestAutoWorkersAffinity:
    def test_prefers_affinity_mask_over_machine_cpu_count(self, monkeypatch):
        """Pinned to 2 cores on a 64-core box: 2 workers, not 64."""
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {3, 7}, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert auto_workers(1_000) == 2

    def test_affinity_wider_than_units_still_bounded_by_units(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(16)), raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 16)
        assert auto_workers(3) == 3

    def test_platform_without_affinity_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert auto_workers(1_000) == 5

    def test_affinity_oserror_falls_back_to_cpu_count(self, monkeypatch):
        def broken(pid):
            raise OSError("cgroup went away")

        monkeypatch.setattr(os, "sched_getaffinity", broken, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert auto_workers(1_000) == 4

    def test_degenerate_probes_still_yield_one_worker(self, monkeypatch):
        """Empty affinity set or cpu_count() == None must never size a
        pool at zero."""
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(), raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert auto_workers(10) == 1
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert auto_workers(10) == 1

    def test_zero_units_is_one_worker(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(8)), raising=False)
        assert auto_workers(0) == 1

    @pytest.mark.skipif(
        not hasattr(os, "sched_getaffinity"),
        reason="platform has no sched_getaffinity",
    )
    def test_live_probe_matches_current_affinity(self):
        usable = len(os.sched_getaffinity(0))
        assert auto_workers(10**9) == max(1, usable)


class TestPlanChunksAgainstAutoWorkers:
    def test_chunks_cover_units_for_auto_sized_pools(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False)
        workers = auto_workers(10)
        chunks = plan_chunks(10, workers)
        covered = [
            unit for start, stop in chunks for unit in range(start, stop)
        ]
        assert covered == list(range(10))
