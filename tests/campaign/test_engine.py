"""Engine mechanics: sharding policy, fallback, and telemetry."""

import pytest

from repro.campaign import (
    FaultPlan,
    RetryPolicy,
    ShardingPolicy,
    auto_chunk_size,
    auto_workers,
    plan_chunks,
    run_campaign,
    sweep_protocol_campaign,
)
from repro.campaign import engine as engine_module
from repro.campaign.jobs import SweepProtocolJob
from repro.core.sweep import sweep_protocol
from repro.protocols import KSetAgreementTask, MinSeen


def minseen_job(seed_count=10):
    return SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=tuple(range(seed_count)), task=KSetAgreementTask(3),
    )


class TestPartition:
    def test_plan_chunks_covers_range_disjointly(self):
        for total, size in [(10, 3), (1, 1), (7, 7), (7, 100), (12, 4)]:
            chunks = plan_chunks(total, size)
            units = [u for start, stop in chunks for u in range(start, stop)]
            assert units == list(range(total))
            assert all(stop - start <= size for start, stop in chunks)
            assert all(
                stop - start == size for start, stop in chunks[:-1]
            )

    def test_plan_chunks_empty_and_invalid(self):
        assert plan_chunks(0, 5) == []
        with pytest.raises(ValueError):
            plan_chunks(10, 0)

    def test_auto_workers_bounded_by_units_and_positive(self):
        assert auto_workers(0) == 1
        assert 1 <= auto_workers(2) <= 2
        assert auto_workers(10_000) >= 1

    def test_auto_chunk_size_gives_multiple_chunks_per_worker(self):
        size = auto_chunk_size(100, 2)
        assert 1 <= size <= 100 // 2
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(3, 8) == 1

    def test_policy_resolution_and_validation(self):
        policy = ShardingPolicy.resolve(100, workers=2, chunk_size=None)
        assert policy.workers == 2
        assert policy.chunk_size >= 1
        with pytest.raises(ValueError):
            ShardingPolicy.resolve(10, workers=0)
        with pytest.raises(ValueError):
            ShardingPolicy.resolve(10, chunk_size=-1)


class TestEngineExecution:
    def test_workers_1_stays_in_process(self):
        result = run_campaign(minseen_job(), workers=1, chunk_size=4)
        assert result.telemetry.mode == "in-process"
        assert all(
            stats.worker == f"pid:{__import__('os').getpid()}"
            for stats in result.telemetry.chunks
        )

    def test_single_chunk_stays_in_process(self):
        # One chunk can't use more than one worker; no pool is spun up.
        result = run_campaign(minseen_job(5), workers=4, chunk_size=5)
        assert result.telemetry.mode == "in-process"

    def test_empty_campaign(self):
        result = run_campaign(minseen_job(0), workers=4)
        assert result.report.runs == 0
        assert result.telemetry.total_units == 0
        assert result.telemetry.chunks == []

    def test_pool_failure_falls_back_in_process(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no processes on this platform")

        monkeypatch.setattr(
            engine_module, "_run_chunks_pooled", broken_pool
        )
        serial = sweep_protocol(
            MinSeen(3, rounds=2), [4, 1, 9], range(10),
            task=KSetAgreementTask(3),
        )
        result = run_campaign(minseen_job(), workers=4, chunk_size=3)
        assert result.telemetry.mode == "in-process (pool unavailable: OSError)"
        assert result.report == serial

    def test_unpicklable_job_falls_back_in_process(self):
        # A task defined inside a function can't cross a process
        # boundary: pickling it raises out of the pool path
        # (PicklingError/AttributeError depending on interpreter), which
        # must take the documented in-process fallback, not crash.
        class LocalTask:
            def check(self, inputs, outputs):
                return []

        job = SweepProtocolJob(
            protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
            seeds=tuple(range(10)),
            task=LocalTask(),
        )
        serial = job.run_range(0, 10)
        result = run_campaign(job, workers=4, chunk_size=3)
        assert result.telemetry.mode.startswith(
            "in-process (pool unavailable:"
        )
        assert result.report == serial

    def test_pooled_worker_exception_retried_not_fatal(self):
        """Regression: a worker exception used to abort the whole pooled
        campaign (falling back to a full in-process rerun).  It must be
        routed through the retry policy instead — the chunk is
        re-dispatched, the pool stays up, and telemetry.mode records the
        cause."""
        job = minseen_job(12)
        serial = job.run_range(0, 12)
        result = run_campaign(
            job, workers=2, chunk_size=3,
            retry=RetryPolicy(base_delay=0.001),
            faults=FaultPlan.flaky(1, failures=1),
        )
        assert result.report == serial
        assert result.complete
        assert result.telemetry.retries == 1
        assert result.telemetry.mode.startswith("pool:")
        assert "retries: 1" in result.telemetry.mode
        assert "InjectedCrash" in result.telemetry.mode

    def test_pooled_chunk_exhausting_retries_degrades_gracefully(self):
        """A chunk that fails every attempt is recorded as failed; the
        campaign still completes with the other chunks' results."""
        job = minseen_job(12)
        result = run_campaign(
            job, workers=2, chunk_size=3,
            retry=RetryPolicy(max_retries=1, base_delay=0.001),
            faults=FaultPlan.crash(2),
        )
        assert not result.complete
        assert result.missing_ranges() == [(6, 9)]
        assert result.report.runs == 9
        assert "failed chunks: 1" in result.telemetry.mode
        [failure] = result.failed_chunks
        assert failure.attempts == 2
        assert "InjectedCrash" in failure.error

    def test_telemetry_accounts_every_unit_once(self):
        result = sweep_protocol_campaign(
            MinSeen(3, rounds=2), [4, 1, 9], range(17),
            task=KSetAgreementTask(3), workers=2, chunk_size=4,
        )
        telemetry = result.telemetry
        assert telemetry.total_units == 17
        assert [
            (stats.start, stats.stop) for stats in telemetry.chunks
        ] == [(0, 4), (4, 8), (8, 12), (12, 16), (16, 17)]
        assert telemetry.wall_seconds > 0
        assert 0.0 <= telemetry.utilization <= 1.0
        assert telemetry.runs_per_second > 0

    def test_summary_mentions_throughput_and_mode(self):
        result = run_campaign(minseen_job(), workers=1)
        text = result.summary()
        assert "runs/sec" in text
        assert "in-process" in text
        assert "10 runs" in text
