"""Unit tests for schedulers."""

import pytest

from repro.errors import SchedulerError
from repro.runtime.scheduler import (
    AdversarialScheduler,
    ObstructionScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SoloScheduler,
    interleavings,
)


class TestRoundRobin:
    def test_cycles_in_pid_order(self):
        sched = RoundRobinScheduler()
        picks = [sched.next_pid([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_missing_pids(self):
        sched = RoundRobinScheduler()
        assert sched.next_pid([0, 1, 2]) == 0
        assert sched.next_pid([0, 2]) == 2
        assert sched.next_pid([0, 2]) == 0

    def test_empty_active_raises(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler().next_pid([])

    def test_reset_restarts_cycle(self):
        sched = RoundRobinScheduler()
        sched.next_pid([0, 1])
        sched.reset()
        assert sched.next_pid([0, 1]) == 0


class TestRandom:
    def test_deterministic_given_seed(self):
        a = [RandomScheduler(5).next_pid([0, 1, 2]) for _ in range(1)]
        b = [RandomScheduler(5).next_pid([0, 1, 2]) for _ in range(1)]
        assert a == b

    def test_reset_replays_sequence(self):
        sched = RandomScheduler(9)
        first = [sched.next_pid([0, 1, 2, 3]) for _ in range(20)]
        sched.reset()
        second = [sched.next_pid([0, 1, 2, 3]) for _ in range(20)]
        assert first == second

    def test_covers_all_pids_eventually(self):
        sched = RandomScheduler(1)
        picks = {sched.next_pid([0, 1, 2]) for _ in range(100)}
        assert picks == {0, 1, 2}

    def test_weights_bias_choice(self):
        sched = RandomScheduler(2, weights={0: 1000.0, 1: 1e-9})
        picks = [sched.next_pid([0, 1]) for _ in range(50)]
        assert picks.count(0) > 45

    def test_empty_active_raises(self):
        with pytest.raises(SchedulerError):
            RandomScheduler(0).next_pid([])


class TestSolo:
    def test_always_picks_designated(self):
        sched = SoloScheduler(2)
        assert sched.next_pid([0, 1, 2]) == 2
        assert sched.next_pid([2]) == 2

    def test_raises_without_fallback(self):
        with pytest.raises(SchedulerError):
            SoloScheduler(2).next_pid([0, 1])

    def test_fallback_drains_rest(self):
        sched = SoloScheduler(2, fallback=True)
        assert sched.next_pid([0, 1]) == 0
        assert sched.next_pid([0, 1]) == 1


class TestObstruction:
    def test_prefix_then_group_only(self):
        sched = ObstructionScheduler(group=[0], prefix_steps=10, seed=4)
        prefix = [sched.next_pid([0, 1, 2]) for _ in range(10)]
        assert set(prefix) <= {0, 1, 2}
        tail = [sched.next_pid([0, 1, 2]) for _ in range(5)]
        assert tail == [0] * 5

    def test_group_of_x_alternates(self):
        sched = ObstructionScheduler(group=[1, 2], prefix_steps=0, seed=0)
        tail = [sched.next_pid([0, 1, 2]) for _ in range(4)]
        assert tail == [1, 2, 1, 2]

    def test_drains_after_group_done(self):
        sched = ObstructionScheduler(group=[1], prefix_steps=0, seed=0)
        assert sched.next_pid([0, 2]) == 0

    def test_empty_group_rejected(self):
        with pytest.raises(SchedulerError):
            ObstructionScheduler(group=[], prefix_steps=0, seed=0)


class TestAdversarial:
    def test_replays_script(self):
        sched = AdversarialScheduler([2, 0, 1])
        assert [sched.next_pid([0, 1, 2]) for _ in range(3)] == [2, 0, 1]

    def test_roundrobin_after_script(self):
        sched = AdversarialScheduler([1], then="roundrobin")
        assert sched.next_pid([0, 1]) == 1
        assert sched.next_pid([0, 1]) == 0

    def test_stop_after_script(self):
        sched = AdversarialScheduler([1], then="stop")
        sched.next_pid([0, 1])
        with pytest.raises(SchedulerError):
            sched.next_pid([0, 1])

    def test_crash_directives_are_queued(self):
        sched = AdversarialScheduler([("crash", 0), 1])
        assert sched.next_pid([0, 1]) == 1
        assert sched.pending_crashes == [0]

    def test_scripted_inactive_pid_raises(self):
        sched = AdversarialScheduler([5])
        with pytest.raises(SchedulerError):
            sched.next_pid([0, 1])

    def test_skip_inactive_drops_finished_pids(self):
        sched = AdversarialScheduler([5, 1, 0], skip_inactive=True)
        assert sched.next_pid([0, 1]) == 1  # 5 silently skipped
        assert sched.next_pid([0, 1]) == 0

    def test_skip_inactive_consumes_following_crashes(self):
        sched = AdversarialScheduler(
            [5, ("crash", 1), 0], skip_inactive=True
        )
        assert sched.next_pid([0, 1]) == 0
        assert sched.pending_crashes == [1]

    def test_skip_inactive_falls_through_to_continuation(self):
        sched = AdversarialScheduler([5, 5], skip_inactive=True)
        assert sched.next_pid([0, 1]) == 0  # round-robin continuation

    def test_unknown_continuation_rejected(self):
        with pytest.raises(SchedulerError):
            AdversarialScheduler([], then="loop")


class TestInterleavings:
    def test_count(self):
        assert len(list(interleavings([0, 1], 3))) == 8

    def test_zero_length(self):
        assert list(interleavings([0, 1], 0)) == [()]

    def test_all_unique(self):
        scripts = list(interleavings([0, 1, 2], 2))
        assert len(scripts) == len(set(scripts)) == 9
