"""Integration tests for the System executor."""

import pytest

from repro.errors import DivergenceError, ModelError, SchedulerError
from repro.memory import AtomicSnapshot, Register
from repro.runtime import (
    AdversarialScheduler,
    Annotate,
    Invoke,
    RoundRobinScheduler,
    System,
)


def reader_writer(reg):
    def body(proc):
        value = yield Invoke(reg, "read")
        yield Invoke(reg, "write", (value + 1,))
        return value

    return body


class TestConstruction:
    def test_auto_pid_assignment(self):
        sys_ = System()
        reg = Register("r")
        p0 = sys_.add_process(reader_writer(reg))
        p1 = sys_.add_process(reader_writer(reg))
        assert (p0.pid, p1.pid) == (0, 1)

    def test_duplicate_pid_rejected(self):
        sys_ = System()
        reg = Register("r")
        sys_.add_process(reader_writer(reg), pid=3)
        with pytest.raises(ModelError):
            sys_.add_process(reader_writer(reg), pid=3)


class TestStepSemantics:
    def test_one_shared_op_per_turn(self):
        sys_ = System()
        reg = Register("r", initial=0)
        sys_.add_process(reader_writer(reg))
        assert sys_.step(0)  # applies the read
        assert len(sys_.trace.steps()) == 1
        assert sys_.trace.steps()[0].op == "read"
        assert sys_.step(0)  # applies the write
        assert reg.value == 1

    def test_pending_operation_is_poised_step(self):
        sys_ = System()
        reg = Register("r", initial=0)
        sys_.add_process(reader_writer(reg))
        sys_.step(0)
        pending = sys_.pending_operation(0)
        assert pending.op == "write"
        assert pending.args == (1,)

    def test_annotations_are_free(self):
        sys_ = System()
        reg = Register("r", initial=0)

        def body(proc):
            yield Annotate("phase", "begin")
            yield Invoke(reg, "read")
            yield Annotate("phase", "end")

        sys_.add_process(body)
        result = sys_.run(RoundRobinScheduler())
        assert result.steps == 1
        tags = [e.payload for e in sys_.trace.annotations("phase")]
        assert tags == ["begin", "end"]

    def test_step_on_done_process_raises(self):
        sys_ = System()
        reg = Register("r", initial=0)
        sys_.add_process(reader_writer(reg))
        sys_.run(RoundRobinScheduler())
        with pytest.raises(SchedulerError):
            sys_.step(0)

    def test_invalid_yield_type_rejected(self):
        sys_ = System()

        def body(proc):
            yield "not a request"

        sys_.add_process(body)
        with pytest.raises(ModelError):
            sys_.run(RoundRobinScheduler())


class TestRun:
    def test_outputs_collected(self):
        sys_ = System()
        reg = Register("r", initial=10)
        sys_.add_process(reader_writer(reg))
        sys_.add_process(reader_writer(reg))
        result = sys_.run(RoundRobinScheduler())
        assert result.completed
        # Round-robin interleaves the two reads before either write, so both
        # processes observe the initial value (a classic lost-update race).
        assert result.outputs == {0: 10, 1: 10}
        assert reg.value == 11

    def test_divergence_return(self):
        sys_ = System()
        reg = Register("r", initial=0)

        def spinner(proc):
            while True:
                yield Invoke(reg, "read")

        sys_.add_process(spinner)
        result = sys_.run(RoundRobinScheduler(), max_steps=25)
        assert result.diverged
        assert result.steps == 25
        assert not result.completed

    def test_divergence_raise(self):
        sys_ = System()
        reg = Register("r", initial=0)

        def spinner(proc):
            while True:
                yield Invoke(reg, "read")

        sys_.add_process(spinner)
        with pytest.raises(DivergenceError) as exc:
            sys_.run(RoundRobinScheduler(), max_steps=10, on_limit="raise")
        assert exc.value.steps_taken == 10

    def test_stop_when_predicate(self):
        sys_ = System()
        reg = Register("r", initial=0)

        def spinner(proc):
            while True:
                yield Invoke(reg, "read")

        sys_.add_process(spinner)
        result = sys_.run(
            RoundRobinScheduler(),
            stop_when=lambda s: len(s.trace.steps()) >= 5,
        )
        assert result.steps == 5

    def test_crash_via_adversarial_script(self):
        sys_ = System()
        reg = Register("r", initial=0)
        sys_.add_process(reader_writer(reg))
        sys_.add_process(reader_writer(reg))
        sched = AdversarialScheduler([0, ("crash", 1), 0])
        result = sys_.run(sched)
        assert result.completed
        assert 1 not in result.outputs
        assert sys_.processes[1].status == "crashed"
        assert reg.value == 1  # only process 0 wrote

    def test_empty_system_completes(self):
        result = System().run(RoundRobinScheduler())
        assert result.completed
        assert result.steps == 0


class _StuckScheduler:
    """Crashes pid 0 on its first turn, then names pid 0 forever.

    After the crash, pid 0 is never READY again, so a run loop that only
    counts *applied* steps against the budget spins forever — the
    regression this scheduler exists to catch.
    """

    def __init__(self):
        self.pending_crashes = []
        self._first = True

    def reset(self):
        self.pending_crashes = []
        self._first = True

    def next_pid(self, active):
        if self._first:
            self._first = False
            self.pending_crashes = [0]
        return 0


class TestStuckSchedulerTerminates:
    """``run`` must exhaust its budget even if no step is ever applied."""

    def _system(self):
        sys_ = System()
        reg = Register("r", initial=0)
        sys_.add_process(reader_writer(reg))
        sys_.add_process(reader_writer(reg))
        return sys_

    def test_returns_diverged_with_zero_steps(self):
        sys_ = self._system()
        result = sys_.run(_StuckScheduler(), max_steps=50)
        assert result.diverged
        assert not result.completed
        assert result.steps == 0
        assert sys_.processes[0].status == "crashed"
        assert sys_.processes[1].status == "ready"

    def test_raise_mode_reports_steps_taken(self):
        sys_ = self._system()
        with pytest.raises(DivergenceError) as exc:
            sys_.run(_StuckScheduler(), max_steps=20, on_limit="raise")
        assert exc.value.steps_taken == 0


class TestObjectRegistry:
    def test_objects_discovered_and_counted(self):
        sys_ = System()
        reg = Register("r", initial=0)
        snap = AtomicSnapshot("M", components=4)

        def body(proc):
            yield Invoke(reg, "read")
            yield Invoke(snap, "scan")

        sys_.add_process(body)
        sys_.run(RoundRobinScheduler())
        assert set(sys_.objects) == {"r", "M"}
        assert sys_.total_registers() == 5

    def test_name_collision_detected(self):
        sys_ = System()
        a = Register("same")
        b = Register("same")

        def body(proc):
            yield Invoke(a, "read")
            yield Invoke(b, "read")

        sys_.add_process(body)
        with pytest.raises(ModelError):
            sys_.run(RoundRobinScheduler())


class TestTrace:
    def test_sequence_numbers_increase(self):
        sys_ = System()
        reg = Register("r", initial=0)
        sys_.add_process(reader_writer(reg))
        sys_.add_process(reader_writer(reg))
        sys_.run(RoundRobinScheduler())
        seqs = [e.seq for e in sys_.trace]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))

    def test_by_process_filter(self):
        sys_ = System()
        reg = Register("r", initial=0)
        sys_.add_process(reader_writer(reg))
        sys_.add_process(reader_writer(reg))
        sys_.run(RoundRobinScheduler())
        mine = sys_.trace.by_process(0)
        assert all(e.pid == 0 for e in mine)
        assert len([e for e in mine if e.is_step()]) == 2
