"""Tests for exact-replay: executions as reproducible artifacts."""

import pytest

from repro.augmented import AugmentedSnapshot
from repro.memory import Register
from repro.protocols import RacingConsensus, protocol_body
from repro.memory.snapshot import AtomicSnapshot
from repro.runtime import Invoke, RandomScheduler, System
from repro.runtime.replay import (
    extract_schedule,
    replay_run,
    replay_scheduler,
    traces_equal,
)


def consensus_system():
    system = System()
    protocol = RacingConsensus(2)
    snapshot = AtomicSnapshot("M", components=2)
    for index in range(2):
        system.add_process(protocol_body(protocol, index, index, snapshot))
    return system


class TestExtractAndReplay:
    @pytest.mark.parametrize("seed", range(8))
    def test_replay_reproduces_trace_exactly(self, seed):
        original = consensus_system()
        original.run(RandomScheduler(seed), max_steps=20_000)
        schedule = extract_schedule(original)

        replayed, result = replay_run(consensus_system, schedule)
        assert traces_equal(original, replayed)
        assert replayed.outputs() == original.outputs()

    def test_prefix_replay(self):
        original = consensus_system()
        original.run(RandomScheduler(3), max_steps=20_000)
        schedule = extract_schedule(original)
        half = schedule[: len(schedule) // 2]
        replayed, result = replay_run(consensus_system, half)
        original_steps = original.trace.steps()[: result.steps]
        replayed_steps = replayed.trace.steps()
        assert [e.pid for e in original_steps] == [
            e.pid for e in replayed_steps
        ]

    def test_crashes_are_replayed(self):
        def build():
            system = System()
            reg = Register("r", initial=0)

            def body(proc):
                for _ in range(5):
                    value = yield Invoke(reg, "read")
                    yield Invoke(reg, "write", (value + 1,))

            system.add_process(body)
            system.add_process(body)
            return system

        schedule = [0, 0, 1, ("crash", 1), 0, 0]
        replayed, _result = replay_run(build, schedule)
        assert replayed.processes[1].status == "crashed"
        extracted = extract_schedule(replayed)
        assert ("crash", 1) in extracted

    def test_augmented_snapshot_runs_replayable(self):
        def build():
            system = System()
            aug = AugmentedSnapshot("M", components=2, pids=[0, 1])

            def body(proc):
                yield from aug.block_update(proc.pid, [proc.pid % 2], ["v"])
                yield from aug.scan(proc.pid)

            for _ in range(2):
                system.add_process(body)
            return system

        original = build()
        original.run(RandomScheduler(9), max_steps=50_000)
        schedule = extract_schedule(original)
        replayed, _ = replay_run(build, schedule)
        assert traces_equal(original, replayed)

    def test_scheduler_stops_at_schedule_end(self):
        scheduler = replay_scheduler([0, 1])
        assert scheduler.then == "stop"
