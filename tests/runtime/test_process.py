"""Unit tests for the Process wrapper."""

import pytest

from repro.errors import SchedulerError
from repro.memory import Register
from repro.runtime import CRASHED, DONE, READY, Invoke, Process


def make_register():
    return Register("r", initial=0)


class TestLifecycle:
    def test_initial_status_is_ready(self):
        proc = Process(0, lambda p: iter(()))
        assert proc.status == READY
        assert proc.is_active

    def test_default_name(self):
        proc = Process(7, lambda p: iter(()))
        assert proc.name == "p7"

    def test_explicit_name(self):
        proc = Process(7, lambda p: iter(()), name="scanner")
        assert proc.name == "scanner"

    def test_empty_body_completes_immediately(self):
        def body(p):
            return 42
            yield  # pragma: no cover - makes body a generator

        proc = Process(0, body)
        assert proc.advance() is None
        assert proc.status == DONE
        assert proc.output == 42
        assert not proc.is_active

    def test_advance_returns_yielded_request(self):
        reg = make_register()

        def body(p):
            yield Invoke(reg, "read")

        proc = Process(0, body)
        request = proc.advance()
        assert isinstance(request, Invoke)
        assert request.op == "read"

    def test_response_is_delivered(self):
        reg = make_register()
        seen = []

        def body(p):
            value = yield Invoke(reg, "read")
            seen.append(value)

        proc = Process(0, body)
        proc.advance()
        proc.advance(99)
        assert seen == [99]
        assert proc.status == DONE

    def test_advance_after_done_raises(self):
        def body(p):
            return None
            yield  # pragma: no cover

        proc = Process(0, body)
        proc.advance()
        with pytest.raises(SchedulerError):
            proc.advance()


class TestCrash:
    def test_crash_stops_process(self):
        reg = make_register()

        def body(p):
            yield Invoke(reg, "read")
            yield Invoke(reg, "read")

        proc = Process(0, body)
        proc.advance()
        proc.crash()
        assert proc.status == CRASHED
        with pytest.raises(SchedulerError):
            proc.advance()

    def test_crash_after_done_is_noop(self):
        def body(p):
            return "out"
            yield  # pragma: no cover

        proc = Process(0, body)
        proc.advance()
        proc.crash()
        assert proc.status == DONE
        assert proc.output == "out"
