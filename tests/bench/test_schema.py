"""Artifact schema: round-trip, validation, and fingerprinting."""

import json

import pytest

from repro.bench.schema import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    BenchArtifact,
    EnvironmentFingerprint,
    load_artifact,
    load_artifact_dir,
    median_iqr,
    write_artifact,
)
from repro.errors import BenchSchemaError


def make_artifact(eid="E2", name="bounds", samples=(1.0, 1.1, 1.2),
                  units=100, mode="quick"):
    return BenchArtifact.from_samples(
        experiment=eid, name=name, title=f"{eid} test artifact",
        mode=mode, units=units, warmup=1, samples_seconds=samples,
        metrics={"rows": units},
    )


class TestMedianIqr:
    def test_single_sample_has_zero_iqr(self):
        assert median_iqr([2.5]) == (2.5, 0.0)

    def test_median_and_spread(self):
        med, iqr = median_iqr([1.0, 2.0, 3.0, 4.0, 5.0])
        assert med == 3.0
        assert iqr == pytest.approx(2.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(BenchSchemaError):
            median_iqr([])


class TestArtifactRoundTrip:
    def test_to_from_dict_round_trips(self):
        artifact = make_artifact()
        clone = BenchArtifact.from_dict(artifact.to_dict())
        assert clone == artifact

    def test_filename_uses_prefix_and_stem(self):
        artifact = make_artifact(eid="E13", name="campaign")
        assert artifact.filename() == f"{ARTIFACT_PREFIX}E13_campaign.json"
        assert artifact.artifact_name == "E13_campaign"

    def test_write_and_load(self, tmp_path):
        artifact = make_artifact()
        path = write_artifact(artifact, tmp_path)
        assert path.name == artifact.filename()
        assert load_artifact(path) == artifact

    def test_throughput_derived_from_median(self):
        artifact = make_artifact(samples=(2.0,), units=100)
        assert artifact.median_seconds == 2.0
        assert artifact.units_per_second == pytest.approx(50.0)


class TestSchemaValidation:
    def test_version_mismatch_rejected(self, tmp_path):
        artifact = make_artifact()
        data = artifact.to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / artifact.filename()
        path.write_text(json.dumps(data))
        with pytest.raises(BenchSchemaError, match="schema_version"):
            load_artifact(path)

    def test_missing_version_rejected(self):
        data = make_artifact().to_dict()
        del data["schema_version"]
        with pytest.raises(BenchSchemaError):
            BenchArtifact.from_dict(data)

    def test_missing_timing_key_rejected(self):
        data = make_artifact().to_dict()
        del data["timing"]["median_seconds"]
        with pytest.raises(BenchSchemaError, match="malformed"):
            BenchArtifact.from_dict(data)

    def test_empty_samples_rejected(self):
        data = make_artifact().to_dict()
        data["timing"]["samples_seconds"] = []
        with pytest.raises(BenchSchemaError, match="empty"):
            BenchArtifact.from_dict(data)

    def test_non_object_rejected(self):
        with pytest.raises(BenchSchemaError):
            BenchArtifact.from_dict(["not", "an", "object"])

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / f"{ARTIFACT_PREFIX}E1_bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            load_artifact(path)


class TestArtifactDir:
    def test_loads_all_artifacts_keyed_by_stem(self, tmp_path):
        write_artifact(make_artifact(eid="E2", name="bounds"), tmp_path)
        write_artifact(make_artifact(eid="E13", name="campaign"), tmp_path)
        loaded = load_artifact_dir(tmp_path)
        assert set(loaded) == {"E2_bounds", "E13_campaign"}

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(BenchSchemaError, match="no such"):
            load_artifact_dir(tmp_path / "nope")

    def test_ignores_non_artifact_files(self, tmp_path):
        write_artifact(make_artifact(), tmp_path)
        (tmp_path / "README.md").write_text("not an artifact")
        assert len(load_artifact_dir(tmp_path)) == 1


class TestFingerprint:
    def test_capture_fields(self):
        fingerprint = EnvironmentFingerprint.capture()
        assert fingerprint.cpu_count >= 1
        assert fingerprint.python.count(".") == 2
        assert fingerprint.git_sha  # "unknown" at worst, never empty

    def test_round_trip(self):
        fingerprint = EnvironmentFingerprint.capture()
        clone = EnvironmentFingerprint.from_dict(fingerprint.to_dict())
        assert clone == fingerprint
