"""Runner and registry: discovery, measurement, artifact writing."""

import pytest

from repro.bench.experiments import (
    Experiment,
    PayloadResult,
    discover,
    resolve,
)
from repro.bench.runner import measure_experiment, run_experiments
from repro.bench.schema import load_artifact
from repro.errors import ValidationError


def fake_experiment(calls, eid="E99", name="fake"):
    """An experiment whose payload just counts invocations."""

    def payload(quick):
        calls.append(quick)
        return PayloadResult(units=7, metrics={"invocations": len(calls)})

    return Experiment(eid=eid, name=name, title="fake payload",
                      payload=payload)


class TestRegistry:
    def test_discovers_all_seventeen_in_order(self):
        experiments = discover()
        assert [e.eid for e in experiments] == [
            f"E{i}" for i in range(1, 18)
        ]

    def test_campaign_backed_experiments_flagged(self):
        flagged = {e.eid for e in discover() if e.campaign_backed}
        assert flagged == {"E4", "E13", "E14", "E15", "E16", "E17"}

    def test_resolve_by_id_name_and_stem(self):
        assert [e.eid for e in resolve(["E13"])] == ["E13"]
        assert [e.eid for e in resolve(["explore"])] == ["E14"]
        assert [e.eid for e in resolve(["e2_bounds"])] == ["E2"]

    def test_resolve_sorts_and_dedupes(self):
        chosen = resolve(["E14", "E2", "explore"])
        assert [e.eid for e in chosen] == ["E2", "E14"]

    def test_resolve_unknown_selector_rejected(self):
        with pytest.raises(ValidationError, match="unknown experiment"):
            resolve(["E999"])


class TestMeasurement:
    def test_warmup_runs_are_untimed(self):
        calls = []
        artifact = measure_experiment(
            fake_experiment(calls), quick=True, repeats=3, warmup=2,
        )
        assert len(calls) == 5          # 2 warmup + 3 timed
        assert artifact.repeats == 3
        assert artifact.warmup == 2
        assert len(artifact.samples_seconds) == 3
        assert artifact.units == 7
        assert artifact.mode == "quick"

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValidationError, match="repeats"):
            measure_experiment(fake_experiment([]), quick=True,
                               repeats=0, warmup=0)

    def test_run_experiments_writes_valid_artifacts(self, tmp_path):
        calls = []
        report = run_experiments(
            out_dir=tmp_path, repeats=2, warmup=0,
            experiments=[fake_experiment(calls)],
        )
        [path] = report.paths
        assert path.name == "BENCH_E99_fake.json"
        loaded = load_artifact(path)
        assert loaded == report.artifacts[0]
        assert loaded.metrics["invocations"] >= 1
        assert "E99 fake: 7 units" in report.summary()

    def test_progress_callback_sees_each_experiment(self, tmp_path):
        lines = []
        run_experiments(
            out_dir=tmp_path, repeats=1, warmup=0, progress=lines.append,
            experiments=[fake_experiment([], eid="E98", name="one"),
                         fake_experiment([], eid="E97", name="two")],
        )
        assert len(lines) == 2
        assert "E98 one" in lines[0]


class TestRealExperiments:
    """One real registry payload end-to-end (E2 is milliseconds-fast)."""

    def test_e2_quick_writes_schema_valid_artifact(self, tmp_path):
        report = run_experiments(
            selectors=["E2"], quick=True, repeats=1, warmup=0,
            out_dir=tmp_path,
        )
        [artifact] = report.artifacts
        loaded = load_artifact(report.paths[0])
        assert loaded == artifact
        assert artifact.experiment == "E2"
        assert artifact.units == 948     # |grid| for n<=32, k,x<=8
        assert artifact.median_seconds > 0
        assert artifact.environment.cpu_count >= 1
