"""Tests for the benchmark harness (`repro.bench`)."""
