"""The regression comparator: every verdict class, exercised."""

import json

import pytest

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    compare_artifacts,
    compare_runs,
    mode_mismatch_warnings,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchArtifact,
    write_artifact,
)
from repro.errors import BenchSchemaError, ValidationError


def artifact(eid="E2", name="bounds", median=1.0, iqr=0.0, mode="quick"):
    """Synthetic artifact with an exact median and IQR.

    Three equal samples give median == the sample and IQR 0; a spread is
    injected by widening the outer samples to median ± iqr, which puts
    the inclusive quartiles at median ± iqr/2 and hence the IQR at
    exactly ``iqr``.
    """
    samples = (median - iqr, median, median + iqr)
    built = BenchArtifact.from_samples(
        experiment=eid, name=name, title=f"{eid} synthetic", mode=mode,
        units=10, warmup=0, samples_seconds=samples,
    )
    assert built.median_seconds == pytest.approx(median)
    assert built.iqr_seconds == pytest.approx(iqr)
    return built


class TestCompareArtifacts:
    def test_identical_is_ok(self):
        base = artifact()
        verdict = compare_artifacts(base, base)
        assert verdict.status == "ok"
        assert not verdict.failed

    def test_regression_detected(self):
        verdict = compare_artifacts(artifact(median=1.0),
                                    artifact(median=2.0))
        assert verdict.status == "regression"
        assert verdict.failed
        assert verdict.ratio == pytest.approx(2.0)

    def test_within_threshold_tolerated(self):
        verdict = compare_artifacts(artifact(median=1.0),
                                    artifact(median=1.4))
        assert verdict.status == "ok"

    def test_iqr_noise_widens_the_allowance(self):
        # 2.2x exceeds the bare 1.5x threshold, but the baseline is
        # noisy (IQR 0.5s): allowance = 1.0*1.5 + 2.0*0.5 = 2.5s.
        noisy_base = artifact(median=1.0, iqr=0.5)
        verdict = compare_artifacts(noisy_base, artifact(median=2.2))
        assert verdict.status == "ok"
        # The same 2.2x against a steady baseline is a regression.
        steady = compare_artifacts(artifact(median=1.0),
                                   artifact(median=2.2))
        assert steady.status == "regression"

    def test_improvement_reported_as_faster(self):
        verdict = compare_artifacts(artifact(median=1.0),
                                    artifact(median=0.3))
        assert verdict.status == "faster"
        assert not verdict.failed

    def test_injected_slowdown_trips_the_gate(self):
        base = artifact(median=1.0)
        assert compare_artifacts(base, base, slowdown=2.0).failed


class TestCompareRuns:
    def test_clean_pass(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        for directory in (base, cur):
            write_artifact(artifact("E2", "bounds"), directory)
            write_artifact(artifact("E13", "campaign"), directory)
        report = compare_runs(base, cur)
        assert report.ok
        assert "PASS" in report.summary()

    def test_missing_experiment_fails(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_artifact(artifact("E2", "bounds"), base)
        write_artifact(artifact("E13", "campaign"), base)
        write_artifact(artifact("E2", "bounds"), cur)
        report = compare_runs(base, cur)
        assert not report.ok
        [failure] = report.failures
        assert failure.status == "missing"
        assert failure.artifact_name == "E13_campaign"

    def test_new_experiment_is_informational(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_artifact(artifact("E2", "bounds"), base)
        write_artifact(artifact("E2", "bounds"), cur)
        write_artifact(artifact("E14", "explore"), cur)
        report = compare_runs(base, cur)
        assert report.ok
        statuses = {c.artifact_name: c.status for c in report.comparisons}
        assert statuses["E14_explore"] == "new"

    def test_schema_version_mismatch_aborts(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_artifact(artifact("E2", "bounds"), base)
        data = artifact("E2", "bounds").to_dict()
        data["schema_version"] = SCHEMA_VERSION + 7
        cur.mkdir()
        (cur / "BENCH_E2_bounds.json").write_text(json.dumps(data))
        with pytest.raises(BenchSchemaError, match="schema_version"):
            compare_runs(base, cur)

    def test_empty_baseline_rejected(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        base.mkdir()
        write_artifact(artifact("E2", "bounds"), cur)
        with pytest.raises(ValidationError, match="no BENCH_"):
            compare_runs(base, cur)

    def test_verdicts_sorted_by_experiment_number(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        for eid, name in (("E14", "explore"), ("E2", "bounds"),
                          ("E9", "snapshot")):
            write_artifact(artifact(eid, name), base)
            write_artifact(artifact(eid, name), cur)
        report = compare_runs(base, cur)
        assert [c.artifact_name for c in report.comparisons] == [
            "E2_bounds", "E9_snapshot", "E14_explore",
        ]

    def test_bad_threshold_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="threshold"):
            compare_runs(tmp_path, tmp_path, threshold=0.0)

    def test_mode_mismatch_warns_but_does_not_fail(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_artifact(artifact("E2", "bounds", mode="full"), base)
        write_artifact(artifact("E2", "bounds", mode="quick"), cur)
        assert compare_runs(base, cur).ok
        warnings = mode_mismatch_warnings(base, cur)
        assert len(warnings) == 1
        assert "E2_bounds" in warnings[0]


class TestRequireFaster:
    def _dirs(self, tmp_path, current_median):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_artifact(artifact("E2", "bounds"), base)
        write_artifact(artifact("E14", "explore", median=1.0), base)
        write_artifact(artifact("E2", "bounds"), cur)
        write_artifact(
            artifact("E14", "explore", median=current_median), cur
        )
        return base, cur

    def test_faster_verdict_passes(self, tmp_path):
        base, cur = self._dirs(tmp_path, current_median=0.5)
        report = compare_runs(base, cur, require_faster=["E14"])
        assert report.ok
        statuses = {c.artifact_name: c.status for c in report.comparisons}
        assert statuses["E14_explore"] == "faster"

    def test_merely_ok_fails_when_required(self, tmp_path):
        # 0.9x is an improvement but not a threshold-beating one; the
        # required-faster gate must reject it.
        base, cur = self._dirs(tmp_path, current_median=0.9)
        report = compare_runs(base, cur, require_faster=["E14"])
        assert not report.ok
        [failure] = report.failures
        assert failure.artifact_name == "E14_explore"
        assert failure.status == "ok"
        assert "[required: faster]" in failure.summary()
        # The same run passes without the requirement.
        assert compare_runs(base, cur).ok

    def test_missing_required_experiment_fails(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        write_artifact(artifact("E14", "explore"), base)
        write_artifact(artifact("E2", "bounds"), base)
        write_artifact(artifact("E2", "bounds"), cur)
        report = compare_runs(base, cur, require_faster=["E14"])
        assert not report.ok
        [failure] = report.failures
        assert failure.status == "missing"

    def test_selector_forms(self, tmp_path):
        base, cur = self._dirs(tmp_path, current_median=0.9)
        for selector in ("E14", "explore", "E14_explore"):
            report = compare_runs(base, cur, require_faster=[selector])
            assert not report.ok, selector

    def test_unmatched_selector_rejected(self, tmp_path):
        # A typo'd selector must not silently weaken the gate.
        base, cur = self._dirs(tmp_path, current_median=0.5)
        with pytest.raises(ValidationError):
            compare_runs(base, cur, require_faster=["E99"])

    def test_requirement_does_not_leak_to_others(self, tmp_path):
        base, cur = self._dirs(tmp_path, current_median=0.5)
        report = compare_runs(base, cur, require_faster=["E14"])
        flags = {c.artifact_name: c.must_be_faster
                 for c in report.comparisons}
        assert flags == {"E2_bounds": False, "E14_explore": True}


class TestDefaults:
    def test_default_threshold_catches_a_2x_slowdown(self):
        # The CI contract: an injected 2x slowdown on a steady baseline
        # must always trip the default gate.
        base = artifact(median=0.5)
        verdict = compare_artifacts(base, base, slowdown=2.0)
        assert DEFAULT_THRESHOLD < 2.0
        assert verdict.status == "regression"
