"""Keep docs/API.md in sync with the code (regeneration is a no-op)."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_api_index_is_fresh(tmp_path):
    target = ROOT / "docs" / "API.md"
    before = target.read_text()
    subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_index.py")],
        check=True,
        capture_output=True,
    )
    after = target.read_text()
    assert before == after, (
        "docs/API.md is stale: run `python tools/gen_api_index.py`"
    )


def test_api_index_covers_core_modules(tmp_path):
    text = (ROOT / "docs" / "API.md").read_text()
    for module in (
        "repro.core.simulation",
        "repro.core.invariant",
        "repro.augmented.object",
        "repro.protocols.base",
        "repro.solo.conversion",
    ):
        assert f"## `{module}`" in text
