"""The claims ledger: one acceptance test per headline paper claim.

Each test here is intentionally high level — it re-derives a claim of the
paper end to end through the public API, the way a referee would spot-check
the reproduction.  Detailed coverage lives in the per-module suites; this
file is the table of contents.
"""

import math


from repro.core import (
    approx_space_lower_bound,
    check_correspondence,
    consensus_space_bound,
    kset_space_lower_bound,
    kset_space_upper_bound,
    run_approx_simulation,
    run_simulation,
    simulated_process_count,
)
from repro.core.sweep import sweep_simulation
from repro.protocols import (
    AveragingApprox,
    KSetAgreementTask,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
)
from repro.runtime import RoundRobinScheduler
from repro.solo import ConvertedMachine, SpinOrCommit, TokenRace
from repro.solo.conversion import solo_run_machine


class TestClaimsLedger:
    def test_theorem3_formula_and_pivot(self):
        """CLAIM (Theorem 3): x-obstruction-free k-set agreement for n > k
        processes needs ⌊(n-x)/(k+1-x)⌋+1 registers; the simulation can be
        instantiated exactly below that."""
        for k, x, m in [(1, 1, 3), (2, 1, 2), (3, 2, 4), (4, 4, 5)]:
            n = simulated_process_count(m, k, x)
            assert kset_space_lower_bound(n, k, x) == m + 1

    def test_consensus_needs_exactly_n_registers(self):
        """CLAIM (corollary): consensus bounds meet at n — and the
        executable upper bound (racing consensus) uses exactly n."""
        for n in (2, 5, 33):
            assert consensus_space_bound(n) == n
        assert RacingConsensus(7).m == 7

    def test_reduction_falsifies_below_the_bound(self):
        """CLAIM (Theorem 3, constructive content): a consensus protocol on
        fewer registers than the bound, run through the simulation, loses
        agreement."""
        report = sweep_simulation(
            TruncatedProtocol(RacingConsensus(2), 1), k=1, x=1,
            inputs=[0, 1], seeds=range(10), task=KSetAgreementTask(1),
        )
        assert report.safety_violations == 10

    def test_simulation_is_wait_free_and_valid(self):
        """CLAIM (Lemmas 30, 31): on a correct protocol every simulator
        decides, and decisions are simulator inputs."""
        report = sweep_simulation(
            RotatingWrites(7, 3, rounds=5), k=2, x=1, inputs=[5, 2, 8],
            seeds=range(10), verify_correspondence=True,
        )
        assert report.all_decided == 10
        assert report.clean
        assert set(report.decisions_histogram) <= {5, 2, 8}

    def test_pasts_are_genuinely_revised_and_verified(self):
        """CLAIM (the technique): covering simulators insert hidden steps
        into simulated pasts, and an independent reconstruction (Lemma 28)
        validates every insertion."""
        total_hidden = 0
        for seed in range(25):
            from repro.runtime import RandomScheduler

            outcome = run_simulation(
                RotatingWrites(7, 3, rounds=8), k=2, x=1, inputs=[5, 2, 8],
                scheduler=RandomScheduler(seed), max_steps=600_000,
            )
            correspondence = check_correspondence(outcome)
            assert correspondence.ok, correspondence.violations
            total_hidden += correspondence.hidden_steps
        assert total_hidden > 0

    def test_theorem4_conversion(self):
        """CLAIM (Theorem 4): nondeterministic solo termination converts to
        obstruction-freedom with the same registers."""
        for machine, value in ((SpinOrCommit(), "v"), (TokenRace(), 1)):
            converted = ConvertedMachine(machine)
            assert converted.registers == machine.registers
            output, measures, covered_at = solo_run_machine(converted, value)
            assert output is not None
            tail = measures[covered_at:]
            assert all(b < a for a, b in zip(tail, tail[1:]))

    def test_appendix_d_epsilon_independence(self):
        """CLAIM (Lemma 33 / Appendix D): the two-simulator reduction's
        step count depends on m only; for small ε it undercuts the
        Hoest-Shavit log3(1/ε) bound, forcing ⌊n/2⌋+1 registers."""
        steps = {}
        for exponent in (8, 16, 32):
            protocol = TruncatedProtocol(
                AveragingApprox(4, 2.0 ** -exponent), 2
            )
            outcome = run_approx_simulation(
                protocol, [0, 1], RoundRobinScheduler()
            )
            assert outcome.all_decided
            steps[exponent] = outcome.max_steps_taken
        assert len(set(steps.values())) == 1
        assert steps[32] < math.log(2.0 ** 32, 3)
        assert approx_space_lower_bound(10) == 6

    def test_bounds_never_cross(self):
        """CLAIM (consistency): the lower bound never exceeds the [BRS15]
        upper bound anywhere on the admissible grid."""
        for n in range(2, 40):
            for k in range(1, 6):
                for x in range(1, k + 1):
                    if n <= k:
                        continue
                    assert kset_space_lower_bound(n, k, x) <= (
                        kset_space_upper_bound(n, k, x)
                    )
