"""Smoke tests for the example scripts — they must keep running as the
library evolves (examples are documentation that can rot)."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Lemma 28 correspondence: OK" in result.stdout
        assert "counterexample schedule" in result.stdout

    def test_falsifier(self):
        result = run_example("falsify_underprovisioned_consensus.py")
        assert result.returncode == 0, result.stderr
        assert "safety:agreement: 20/20" in result.stdout

    def test_revision_microscope(self):
        result = run_example("revision_microscope.py")
        assert result.returncode == 0, result.stderr
        assert "HIDDEN (inserted)" in result.stdout
        assert "revised" in result.stdout

    def test_approx_step_complexity(self):
        result = run_example("approx_step_complexity.py")
        assert result.returncode == 0, result.stderr
        assert "simulation beats the lower bound" in result.stdout

    def test_derandomize(self):
        result = run_example("derandomize_protocol.py")
        assert result.returncode == 0, result.stderr
        assert "strictly decreasing" in result.stdout

    def test_two_simulations(self):
        result = run_example("two_simulations.py")
        assert result.returncode == 0, result.stderr
        assert "7/7" in result.stdout
        assert "hidden steps retroactively inserted" in result.stdout

    def test_campaign(self):
        result = run_example("campaign.py")
        assert result.returncode == 0, result.stderr
        assert "campaign complete: all claims held." in result.stdout
