"""Tests for the partially augmented snapshot — and the negative demo
showing why the full Figure 1 object needs the yield sign."""

import pytest

from repro.augmented import AugmentedSnapshot, YIELD
from repro.augmented.partial import PartialAugmentedSnapshot
from repro.errors import ModelError, ValidationError
from repro.runtime import AdversarialScheduler, RandomScheduler, RoundRobinScheduler, System


def run(system, scheduler=None, max_steps=100_000):
    result = system.run(scheduler or RoundRobinScheduler(), max_steps=max_steps)
    assert result.completed
    return result


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValidationError):
            PartialAugmentedSnapshot("P", 0, [0])
        with pytest.raises(ValidationError):
            PartialAugmentedSnapshot("P", 1, [])
        with pytest.raises(ValidationError):
            PartialAugmentedSnapshot("P", 1, [0, 0])

    def test_only_q0_may_block_update(self):
        obj = PartialAugmentedSnapshot("P", 2, [0, 1])
        with pytest.raises(ModelError):
            next(obj.block_update(1, [0], ["v"]))

    def test_malformed_block_update(self):
        obj = PartialAugmentedSnapshot("P", 2, [0])
        with pytest.raises(ValidationError):
            next(obj.block_update(0, [], []))
        with pytest.raises(ValidationError):
            next(obj.block_update(0, [0, 0], ["a", "b"]))
        with pytest.raises(ValidationError):
            next(obj.block_update(0, [5], ["a"]))

    def test_update_component_range(self):
        obj = PartialAugmentedSnapshot("P", 2, [0, 1])
        with pytest.raises(ValidationError):
            next(obj.update(1, 7, "v"))


class TestBehaviour:
    def test_solo_block_update_returns_prior_view(self):
        obj = PartialAugmentedSnapshot("P", 3, [0])
        system = System()

        def body(proc):
            first = yield from obj.block_update(proc.pid, [0, 1], ["a", "b"])
            second = yield from obj.block_update(proc.pid, [2], ["c"])
            return first, second

        system.add_process(body)
        result = run(system)
        first, second = result.outputs[0]
        assert first == (None, None, None)
        assert second == ("a", "b", None)

    def test_updates_by_others_visible(self):
        obj = PartialAugmentedSnapshot("P", 2, [0, 1])
        system = System()

        def updater(proc):
            yield from obj.update(proc.pid, 1, "theirs")

        def scanner(proc):
            return (yield from obj.scan(proc.pid))

        system.add_process(updater, pid=1)
        result = run(system)
        system2 = System()
        system2.add_process(scanner, pid=0)
        # Reuse the same shared object in a fresh system for the read.
        result2 = system2.run(RoundRobinScheduler())
        assert result2.outputs[0] == (None, "theirs")

    @pytest.mark.parametrize("seed", range(10))
    def test_q0_views_consistent_with_scans(self, seed):
        """The partial object's guarantee: q_0's Block-Update views are
        consistent — a Scan that completed before the Block-Update's append
        is reflected in (a prefix relation with) the returned view."""
        obj = PartialAugmentedSnapshot("P", 2, pids=[0, 1, 2])
        system = System()
        log = {}

        def q0(proc):
            views = []
            for round_no in range(3):
                view = yield from obj.block_update(
                    proc.pid, [0], [f"q0.{round_no}"]
                )
                views.append(view)
            log["bu_views"] = views

        def other(proc):
            views = []
            for round_no in range(2):
                yield from obj.update(proc.pid, 1, f"{proc.pid}.{round_no}")
                views.append((yield from obj.scan(proc.pid)))
            log.setdefault("scan_views", []).extend(views)

        system.add_process(q0, pid=0)
        system.add_process(other, pid=1)
        system.add_process(other, pid=2)
        run(system, RandomScheduler(seed))
        # Every view's component 0 is one of q0's values or bottom, and
        # q0's own views never contain its *current* write (they are views
        # from before the Block-Update).
        for index, view in enumerate(log["bu_views"]):
            assert view[0] in (None, *[f"q0.{r}" for r in range(index)])


class TestWhyFigureOneNeedsYield:
    """The adversarial schedule under which the *unsafe* partial object
    (everyone may Block-Update, no conflict check) returns an inconsistent
    view, while the full Figure 1 object returns ☡."""

    SCRIPT = [1] + [0] * 3 + [1] * 10  # q1 scans H; q0 runs its whole BU;
    # then q1 finishes without ever noticing.

    def test_unsafe_partial_returns_stale_view(self):
        obj = PartialAugmentedSnapshot(
            "P", 2, pids=[0, 1], unsafe_allow_any_rank=True
        )
        system = System()

        def q0(proc):
            return (yield from obj.block_update(proc.pid, [0], ["A"]))

        def q1(proc):
            return (yield from obj.block_update(proc.pid, [1], ["B"]))

        system.add_process(q0, pid=0)
        system.add_process(q1, pid=1)
        run(system, AdversarialScheduler(self.SCRIPT))
        # q0's Block-Update completed entirely before q1's append, yet q1's
        # returned view misses q0's update: the view is *stale* — if q1's
        # Block-Update were treated as atomic, the two windows would
        # overlap (the Lemma 21 violation the yield sign prevents).
        q1_view = system.processes[1].output
        assert q1_view[0] is None  # "A" is missing

    def test_full_object_yields_under_same_schedule(self):
        aug = AugmentedSnapshot("M", components=2, pids=[0, 1])
        system = System()

        def q0(proc):
            return (yield from aug.block_update(proc.pid, [0], ["A"]))

        def q1(proc):
            return (yield from aug.block_update(proc.pid, [1], ["B"]))

        system.add_process(q0, pid=0)
        system.add_process(q1, pid=1)
        # Same shape: q1 scans; q0 runs its full (5-step) Block-Update;
        # q1 proceeds and must notice via its line-29 scan.
        run(system, AdversarialScheduler([1] + [0] * 5 + [1] * 10))
        assert system.processes[1].output is YIELD
