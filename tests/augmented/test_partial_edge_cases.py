"""Edge cases of the partially augmented snapshot and scan retry paths."""

import pytest

from repro.augmented.partial import PartialAugmentedSnapshot
from repro.errors import ModelError
from repro.runtime import AdversarialScheduler, RandomScheduler, System


class TestScanRetry:
    def test_scan_retries_until_quiescent(self):
        """A scan whose double collect is broken by an update retries and
        eventually returns a view including the update."""
        obj = PartialAugmentedSnapshot("P", 1, pids=[0, 1])
        system = System()

        def scanner(proc):
            return (yield from obj.scan(proc.pid))

        def updater(proc):
            yield from obj.update(proc.pid, 0, "late")

        system.add_process(scanner, pid=0)
        system.add_process(updater, pid=1)
        # Scanner does its first H scan; the updater then appends (2
        # steps); the scanner's pair mismatches and it retries.
        script = [0, 1, 1] + [0] * 20
        result = system.run(AdversarialScheduler(script), max_steps=10_000)
        assert result.completed
        assert result.outputs[0] == ("late",)

    def test_scan_helps_before_confirming(self):
        """The scan publishes its first collect to every helping register
        before its confirming collect (lines 16-18 discipline)."""
        obj = PartialAugmentedSnapshot("P", 1, pids=[0, 1])
        system = System()

        def scanner(proc):
            return (yield from obj.scan(proc.pid))

        system.add_process(scanner, pid=0)
        system.run(RandomScheduler(0), max_steps=10_000)
        helping_writes = [
            event
            for event in system.trace.steps()
            if event.obj_name.startswith("P.L[")
        ]
        assert len(helping_writes) == 1  # one write to L[0->1] per attempt


class TestAccessControl:
    def test_update_by_stranger_rejected(self):
        obj = PartialAugmentedSnapshot("P", 1, pids=[0])
        with pytest.raises(ModelError):
            next(obj.update(42, 0, "v"))

    def test_scan_by_stranger_rejected(self):
        obj = PartialAugmentedSnapshot("P", 1, pids=[0])
        with pytest.raises(ModelError):
            next(obj.scan(42))

    def test_unsafe_mode_lets_anyone_block_update(self):
        obj = PartialAugmentedSnapshot(
            "P", 1, pids=[0, 1], unsafe_allow_any_rank=True
        )
        system = System()

        def body(proc):
            return (yield from obj.block_update(proc.pid, [0], ["x"]))

        system.add_process(body, pid=1)
        result = system.run(RandomScheduler(0), max_steps=10_000)
        assert result.completed
        assert result.outputs[1] == (None,)  # pre-update view
