"""Behavioural tests of the augmented snapshot object (Figure 1)."""

import pytest

from repro.augmented import AugmentedSnapshot, YIELD
from repro.errors import ModelError, ValidationError
from repro.runtime import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    System,
)


def run_bodies(aug_factory, bodies, scheduler=None, max_steps=500_000):
    sys_ = System()
    aug = aug_factory()
    for body in bodies:
        sys_.add_process(lambda proc, b=body: b(proc, aug))
    result = sys_.run(scheduler or RoundRobinScheduler(), max_steps=max_steps)
    return sys_, aug, result


class TestConstruction:
    def test_requires_components(self):
        with pytest.raises(ValidationError):
            AugmentedSnapshot("M", components=0, pids=[0])

    def test_requires_processes(self):
        with pytest.raises(ValidationError):
            AugmentedSnapshot("M", components=1, pids=[])

    def test_duplicate_pids_rejected(self):
        with pytest.raises(ValidationError):
            AugmentedSnapshot("M", components=1, pids=[1, 1])

    def test_rank_order_follows_pid_list(self):
        aug = AugmentedSnapshot("M", components=1, pids=[30, 10, 20])
        assert aug.rank_of(30) == 0
        assert aug.rank_of(20) == 2

    def test_unknown_pid_rejected(self):
        aug = AugmentedSnapshot("M", components=1, pids=[0])
        with pytest.raises(ModelError):
            aug.rank_of(9)

    def test_register_count_includes_h_and_touched_l(self):
        aug = AugmentedSnapshot("M", components=2, pids=[0, 1])
        assert aug.register_count() == 2  # H only, no L cells touched yet


class TestBlockUpdateValidation:
    def setup_method(self):
        self.aug = AugmentedSnapshot("M", components=3, pids=[0, 1])

    def test_empty_components_rejected(self):
        with pytest.raises(ValidationError):
            next(self.aug.block_update(0, [], []))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            next(self.aug.block_update(0, [0, 1], ["v"]))

    def test_duplicate_components_rejected(self):
        with pytest.raises(ValidationError):
            next(self.aug.block_update(0, [1, 1], ["a", "b"]))

    def test_out_of_range_component_rejected(self):
        with pytest.raises(ValidationError):
            next(self.aug.block_update(0, [3], ["v"]))


class TestSoloBehaviour:
    def test_scan_of_fresh_object(self):
        def body(proc, aug):
            return (yield from aug.scan(proc.pid))

        _, _, result = run_bodies(
            lambda: AugmentedSnapshot("M", components=3, pids=[0]), [body]
        )
        assert result.outputs[0] == (None, None, None)

    def test_solo_block_update_is_atomic_and_returns_prior_view(self):
        def body(proc, aug):
            first = yield from aug.block_update(proc.pid, [0, 2], ["a", "c"])
            second = yield from aug.block_update(proc.pid, [1], ["b"])
            final = yield from aug.scan(proc.pid)
            return first, second, final

        _, _, result = run_bodies(
            lambda: AugmentedSnapshot("M", components=3, pids=[0]), [body]
        )
        first, second, final = result.outputs[0]
        assert first == (None, None, None)  # view before the Block-Update
        assert second == ("a", None, "c")
        assert final == ("a", "b", "c")

    def test_rank0_never_yields(self):
        """q_0 has no lower-identifier process, so its Block-Updates are
        always atomic (Lemma 16)."""

        def q0(proc, aug):
            out = []
            for r in range(5):
                out.append((yield from aug.block_update(proc.pid, [r % 2], [r])))
            return out

        def q1(proc, aug):
            for r in range(5):
                yield from aug.block_update(proc.pid, [(r + 1) % 2], [10 + r])

        for seed in range(10):
            _, aug, result = run_bodies(
                lambda: AugmentedSnapshot("M", components=2, pids=[0, 1]),
                [q0, q1],
                RandomScheduler(seed),
            )
            assert result.completed
            assert all(v is not YIELD for v in result.outputs[0])
            assert aug.yield_counts[0] == 0


class TestConcurrentBehaviour:
    @pytest.mark.parametrize("seed", range(15))
    def test_runs_complete_and_yields_only_from_higher_ranks(self, seed):
        def body(proc, aug):
            outcome = []
            for r in range(3):
                v = yield from aug.block_update(
                    proc.pid, [proc.pid % 2], [f"{proc.pid}.{r}"]
                )
                outcome.append(v)
                yield from aug.scan(proc.pid)
            return outcome

        _, aug, result = run_bodies(
            lambda: AugmentedSnapshot("M", components=2, pids=[0, 1, 2]),
            [body] * 3,
            RandomScheduler(seed),
        )
        assert result.completed
        assert aug.yield_counts[0] == 0

    def test_yield_forced_by_adversary(self):
        """An interleaving where q_1's Block-Update brackets q_0's update to
        H must make q_1 return ☡."""

        def q0(proc, aug):
            yield from aug.block_update(proc.pid, [0], ["lo"])

        def q1(proc, aug):
            return (yield from aug.block_update(proc.pid, [1], ["hi"]))

        # q1 scans H (line 23); then q0 runs its whole Block-Update — exactly
        # 5 steps (scan, update, scan, scan, one L read; rank 0 helps no one
        # below it); then q1 proceeds (update, scan, helping write, scan) and
        # its line-29 scan sees #g_0 > #h_0, forcing ☡.
        script = [1] + [0] * 5 + [1] * 4
        _, aug, result = run_bodies(
            lambda: AugmentedSnapshot("M", components=2, pids=[0, 1]),
            [q0, q1],
            AdversarialScheduler(script),
        )
        assert result.completed
        assert result.outputs[1] is YIELD
        assert aug.yield_counts[1] == 1

    @pytest.mark.parametrize("seed", range(15))
    def test_scan_sees_all_completed_block_updates(self, seed):
        """A scan taken after the system quiesces reflects every update."""

        def writer(proc, aug):
            yield from aug.block_update(proc.pid, [proc.pid], [f"w{proc.pid}"])

        sys_ = System()
        aug = AugmentedSnapshot("M", components=3, pids=[0, 1, 2])
        for _ in range(3):
            sys_.add_process(lambda proc: writer(proc, aug))
        result = sys_.run(RandomScheduler(seed))
        assert result.completed

        def reader(proc):
            return (yield from aug.scan(proc.pid))

        sys2 = System()
        sys2.add_process(reader, pid=0)
        final = sys2.run(RoundRobinScheduler())
        assert final.outputs[0] == ("w0", "w1", "w2")

    def test_block_updates_are_wait_free(self):
        """Each Block-Update takes a bounded number of primitive steps
        regardless of what others do: 4 H-steps + (k+1-1) L reads + up to
        rank helping writes."""

        def body(proc, aug):
            yield from aug.block_update(proc.pid, [0], ["x"])

        for seed in range(5):
            sys_, aug, result = run_bodies(
                lambda: AugmentedSnapshot("M", components=1, pids=[0, 1, 2, 3]),
                [body] * 4,
                RandomScheduler(seed),
            )
            per_pid = {}
            for event in sys_.trace.steps():
                per_pid[event.pid] = per_pid.get(event.pid, 0) + 1
            bound = 4 + 3 + 3  # H steps + helping writes + L reads
            assert all(count <= bound for count in per_pid.values())

    def test_statistics_counters(self):
        def body(proc, aug):
            for _ in range(2):
                yield from aug.block_update(proc.pid, [0], ["v"])

        _, aug, result = run_bodies(
            lambda: AugmentedSnapshot("M", components=1, pids=[0, 1]),
            [body] * 2,
            RoundRobinScheduler(),
        )
        total = sum(aug.atomic_counts.values()) + sum(aug.yield_counts.values())
        assert total == 4
