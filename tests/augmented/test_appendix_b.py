"""Appendix B as tests: the linearization rules and Lemmas 13-23.

Every checker in repro.augmented.linearization is exercised over a large
family of random and adversarial schedules; an empty violation list on each
execution is the executable form of the corresponding lemma.
"""

import pytest

from repro.augmented import AugmentedSnapshot
from repro.augmented.linearization import (
    check_all,
    check_atomic_block_updates,
    check_returned_views,
    check_scan_views,
    check_updates_within_intervals,
    check_yield_rule,
    extract_operations,
    linearize,
)
from repro.runtime import RandomScheduler, RoundRobinScheduler, System


def run_workload(pids, m, rounds, seed, wide_updates=False):
    """Standard mixed Scan/Block-Update workload; returns (system, object)."""
    sys_ = System()
    aug = AugmentedSnapshot("M", components=m, pids=pids)

    def body(proc):
        for r in range(rounds):
            if wide_updates:
                comps = [(proc.pid + offset) % m for offset in range(min(2, m))]
                comps = list(dict.fromkeys(comps))
            else:
                comps = [(proc.pid + r) % m]
            values = [f"{proc.pid}.{r}.{c}" for c in comps]
            yield from aug.block_update(proc.pid, comps, values)
            yield from aug.scan(proc.pid)

    for _ in pids:
        sys_.add_process(body)
    result = sys_.run(RandomScheduler(seed), max_steps=500_000)
    assert result.completed
    return sys_, aug


class TestExtraction:
    def test_counts_match_workload(self):
        sys_, aug = run_workload([0, 1], m=2, rounds=3, seed=0)
        bus, scans = extract_operations(sys_.trace, aug)
        assert len(bus) == 6
        assert len(scans) == 6
        assert all(record.completed for record in bus)
        assert all(record.completed for record in scans)

    def test_block_update_fields_populated(self):
        sys_, aug = run_workload([0, 1], m=2, rounds=1, seed=1)
        bus, _ = extract_operations(sys_.trace, aug)
        for record in bus:
            assert record.timestamp is not None
            assert record.h_scan_seq is not None
            assert record.x_seq is not None
            assert record.h_scan_seq < record.x_seq
            assert record.result in ("view", "yield")

    def test_scan_linearizes_at_last_h_scan(self):
        sys_, aug = run_workload([0], m=1, rounds=1, seed=2)
        _, scans = extract_operations(sys_.trace, aug)
        (scan,) = scans
        assert scan.begin_seq < scan.lin_seq <= scan.end_seq


class TestLinearization:
    def test_sigma_is_sorted(self):
        sys_, aug = run_workload([0, 1, 2], m=3, rounds=2, seed=3)
        lin = linearize(sys_.trace, aug)
        orders = [point.order for point in lin.sigma]
        assert orders == sorted(orders)

    def test_every_completed_update_linearizes_exactly_once(self):
        sys_, aug = run_workload([0, 1, 2], m=3, rounds=2, seed=4)
        lin = linearize(sys_.trace, aug)
        updates = [p for p in lin.sigma if p.kind == "update"]
        expected = sum(
            len(record.components)
            for record in lin.block_updates
            if record.timestamp is not None
        )
        assert len(updates) == expected

    def test_views_after_prefixes_shape(self):
        sys_, aug = run_workload([0, 1], m=2, rounds=1, seed=5)
        lin = linearize(sys_.trace, aug)
        views = lin.views_after_prefixes()
        assert len(views) == len(lin.sigma) + 1
        assert views[0] == (None, None)


@pytest.mark.parametrize("seed", range(25))
class TestLemmasUnderRandomSchedules:
    def test_corollary_18_scans(self, seed):
        sys_, aug = run_workload([0, 1, 2], m=3, rounds=3, seed=seed)
        assert check_scan_views(linearize(sys_.trace, aug)) == []

    def test_lemma_14_atomic_block_updates(self, seed):
        sys_, aug = run_workload([0, 1, 2], m=3, rounds=3, seed=seed)
        assert check_atomic_block_updates(linearize(sys_.trace, aug)) == []

    def test_lemma_15_update_intervals(self, seed):
        sys_, aug = run_workload([0, 1, 2], m=3, rounds=3, seed=seed)
        assert check_updates_within_intervals(linearize(sys_.trace, aug)) == []

    def test_lemma_16_yield_rule(self, seed):
        sys_, aug = run_workload([0, 1, 2], m=3, rounds=3, seed=seed)
        assert check_yield_rule(sys_.trace, aug) == []

    def test_lemma_22_returned_views(self, seed):
        sys_, aug = run_workload([0, 1, 2], m=3, rounds=3, seed=seed)
        assert check_returned_views(linearize(sys_.trace, aug)) == []


@pytest.mark.parametrize("seed", range(10))
class TestLemmasWideWorkload:
    def test_check_all_with_multi_component_updates(self, seed):
        sys_, aug = run_workload(
            [0, 1, 2, 3], m=4, rounds=2, seed=seed, wide_updates=True
        )
        assert check_all(sys_.trace, aug) == []


class TestLargerConfigurations:
    @pytest.mark.parametrize("k_plus_1,m", [(2, 1), (2, 4), (4, 2), (5, 3)])
    def test_check_all_across_shapes(self, k_plus_1, m):
        sys_, aug = run_workload(
            list(range(k_plus_1)), m=m, rounds=2, seed=k_plus_1 * 10 + m
        )
        assert check_all(sys_.trace, aug) == []

    def test_round_robin_schedule(self):
        sys_ = System()
        aug = AugmentedSnapshot("M", components=2, pids=[0, 1, 2])

        def body(proc):
            for r in range(2):
                yield from aug.block_update(proc.pid, [r % 2], [proc.pid])
                yield from aug.scan(proc.pid)

        for _ in range(3):
            sys_.add_process(body)
        result = sys_.run(RoundRobinScheduler())
        assert result.completed
        assert check_all(sys_.trace, aug) == []
