"""Exhaustive-prefix validation of the augmented snapshot.

Random schedules sample the interleaving space; this module *enumerates*
it: every schedule prefix of a fixed length over two processes (completed
deterministically by round-robin) is executed, and the full Appendix B
checker battery runs on each execution.  At prefix length L the suite
covers all 2^L interleaving prefixes — small-scope certainty to complement
the seeded sweeps.
"""


from repro.augmented import AugmentedSnapshot
from repro.augmented.linearization import check_all, linearize
from repro.runtime import AdversarialScheduler, System
from repro.runtime.scheduler import interleavings

PREFIX_LENGTH = 10  # 2^10 = 1024 executions


def run_script(script):
    system = System()
    aug = AugmentedSnapshot("M", components=2, pids=[0, 1])

    def body(proc):
        for round_no in range(2):
            yield from aug.block_update(
                proc.pid, [(proc.pid + round_no) % 2], [f"{proc.pid}.{round_no}"]
            )
            yield from aug.scan(proc.pid)

    for _ in range(2):
        system.add_process(body)
    result = system.run(
        AdversarialScheduler(list(script), then="roundrobin"),
        max_steps=50_000,
    )
    assert result.completed
    return system, aug


class TestExhaustivePrefixes:
    def test_all_interleaving_prefixes_satisfy_appendix_b(self):
        violations = []
        atomic_total = 0
        yield_total = 0
        for script in interleavings([0, 1], PREFIX_LENGTH):
            system, aug = run_script(script)
            found = check_all(system.trace, aug)
            if found:
                violations.append((script, found[:2]))
                if len(violations) >= 3:
                    break
            atomic_total += sum(aug.atomic_counts.values())
            yield_total += sum(aug.yield_counts.values())
        assert not violations, violations
        # Both outcomes are genuinely exercised across the space.
        assert atomic_total > 0
        assert yield_total > 0

    def test_rank0_never_yields_across_all_prefixes(self):
        for script in interleavings([0, 1], 7):
            _system, aug = run_script(script)
            assert aug.yield_counts[0] == 0

    def test_views_consistent_across_all_prefixes(self):
        """Every atomic Block-Update's view matches an admissible point of
        the linearized execution — Lemma 22 over the whole prefix space."""
        from repro.augmented.linearization import check_returned_views

        for script in interleavings([0, 1], 7):
            system, aug = run_script(script)
            lin = linearize(system.trace, aug)
            assert check_returned_views(lin) == []
