"""Unit and property tests for the local functions of Figure 1 (lines 1-13)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.augmented.views import (
    YIELD,
    get_view,
    history_count,
    history_counts,
    is_prefix,
    is_proper_prefix,
    new_timestamp,
    timestamps_in,
)
from repro.errors import ValidationError
from repro.timestamps import VectorTimestamp


def ts(*comps):
    return VectorTimestamp(comps)


class TestYieldSign:
    def test_singleton(self):
        from repro.augmented.views import _YieldSign

        assert _YieldSign() is YIELD

    def test_falsy(self):
        assert not YIELD
        view_or_yield = YIELD
        assert not bool(view_or_yield)

    def test_repr_mentions_yield(self):
        assert "YIELD" in repr(YIELD)


class TestHistoryCount:
    def test_empty_history(self):
        assert history_count(()) == 0

    def test_counts_distinct_timestamps(self):
        history = (
            (0, "a", ts(1, 0)),
            (1, "b", ts(1, 0)),  # same Block-Update
            (0, "c", ts(2, 0)),  # next Block-Update
        )
        assert history_count(history) == 2

    def test_full_counts(self):
        h = (
            ((0, "a", ts(1, 0)),),
            (),
        )
        assert history_counts(h) == (1, 0)


class TestNewTimestamp:
    def test_bumps_own_component(self):
        h = (
            ((0, "a", ts(1, 0)),),
            ((1, "b", ts(1, 1)),),
        )
        assert new_timestamp(h, 0) == ts(2, 1)
        assert new_timestamp(h, 1) == ts(1, 2)

    def test_rank_out_of_range(self):
        with pytest.raises(ValidationError):
            new_timestamp(((),), 5)

    def test_corollary_11_dominates_contained_timestamps(self):
        """New-timestamp(h) is lexicographically larger than any timestamp
        contained in h."""
        # A well-formed history (Lemma 10: #h_j >= t_j for every contained t):
        # rank 0 performed Block-Updates with timestamps (1,0) then (2,1);
        # rank 1 performed one with (1,1).
        h = (
            ((0, "a", ts(1, 0)), (1, "b", ts(2, 1))),
            ((2, "c", ts(1, 1)),),
        )
        for rank in (0, 1):
            fresh = new_timestamp(h, rank)
            for contained in timestamps_in(h):
                assert fresh > contained


class TestGetView:
    def test_empty_gives_bottoms(self):
        assert get_view(((), ()), 3) == (None, None, None)

    def test_largest_timestamp_wins(self):
        h = (
            ((0, "old", ts(1, 0)),),
            ((0, "new", ts(1, 1)),),
        )
        assert get_view(h, 1) == ("new",)

    def test_per_component_independence(self):
        h = (
            ((0, "x", ts(2, 0)), (1, "y", ts(1, 0))),
            ((1, "z", ts(1, 1)),),
        )
        assert get_view(h, 2) == ("x", "z")

    def test_component_out_of_range_rejected(self):
        h = (((7, "v", ts(1,)),),)
        with pytest.raises(ValidationError):
            get_view(h, 2)


class TestPrefix:
    def test_empty_is_prefix_of_anything(self):
        a = ((), ())
        b = (((0, "v", ts(1, 0)),), ())
        assert is_prefix(a, b)
        assert not is_prefix(b, a)

    def test_reflexive(self):
        h = (((0, "v", ts(1, 0)),),)
        assert is_prefix(h, h)
        assert not is_proper_prefix(h, h)

    def test_proper_prefix(self):
        a = (((0, "v", ts(1, 0)),),)
        b = (((0, "v", ts(1, 0)), (1, "w", ts(2, 0))),)
        assert is_proper_prefix(a, b)

    def test_divergent_histories_incomparable(self):
        a = (((0, "v", ts(1, 0)),),)
        b = (((0, "w", ts(1, 0)),),)
        assert not is_prefix(a, b)
        assert not is_prefix(b, a)

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            is_prefix(((),), ((), ()))


@st.composite
def histories(draw):
    """Random well-formed scan results over 2 ranks, 2 components."""
    n_ops = draw(st.integers(min_value=0, max_value=5))
    h = [[], []]
    counts = [0, 0]
    for _ in range(n_ops):
        rank = draw(st.integers(0, 1))
        counts[rank] += 1
        stamp = VectorTimestamp(
            [counts[0], counts[1]] if rank == 1 else [counts[0], max(0, counts[1] - 1)]
        )
        comp = draw(st.integers(0, 1))
        h[rank].append((comp, f"v{rank}.{counts[rank]}", stamp))
    return (tuple(h[0]), tuple(h[1]))


class TestPrefixProperties:
    @given(histories())
    def test_view_components_come_from_history(self, h):
        view = get_view(h, 2)
        values = {triple[1] for history in h for triple in history}
        for component in view:
            assert component is None or component in values

    @given(histories(), st.integers(0, 1))
    def test_new_timestamp_strictly_dominates(self, h, rank):
        fresh = new_timestamp(h, rank)
        for contained in timestamps_in(h):
            assert fresh > contained
