"""Trace-level properties of the augmented snapshot: Observation 5,
Lemma 10, Lemma 12, checked on real executions rather than hand histories."""

import pytest

from repro.augmented import AugmentedSnapshot, is_prefix
from repro.augmented.views import history_counts, timestamps_in
from repro.runtime import RandomScheduler, System


def run_workload(k_plus_1, m, rounds, seed):
    system = System()
    aug = AugmentedSnapshot("M", components=m, pids=list(range(k_plus_1)))

    def body(proc):
        for r in range(rounds):
            yield from aug.block_update(
                proc.pid, [(proc.pid + r) % m], [f"{proc.pid}.{r}"]
            )
            yield from aug.scan(proc.pid)

    for _ in range(k_plus_1):
        system.add_process(body)
    result = system.run(RandomScheduler(seed), max_steps=500_000)
    assert result.completed
    return system, aug


def h_scan_results(system, aug):
    """All results of scans of H, in execution order."""
    return [
        event.result
        for event in system.trace.steps()
        if event.obj_name == aug.H.name and event.op == "scan"
    ]


@pytest.mark.parametrize("seed", range(15))
class TestObservation5:
    def test_scan_results_totally_prefix_ordered(self, seed):
        """Observation 5: results of scans of H are totally ordered by the
        (componentwise) prefix relation, in execution order."""
        system, aug = run_workload(3, 3, 3, seed)
        results = h_scan_results(system, aug)
        for earlier, later in zip(results, results[1:]):
            assert is_prefix(earlier, later)

    def test_proper_prefix_implies_earlier(self, seed):
        system, aug = run_workload(3, 2, 2, seed)
        results = h_scan_results(system, aug)
        for i, a in enumerate(results):
            for b in results[i + 1:]:
                # later is never a *proper* prefix of earlier
                assert not (is_prefix(b, a) and a != b)


@pytest.mark.parametrize("seed", range(15))
class TestLemma10And12:
    def test_lemma_10_contained_timestamps_bounded_by_counts(self, seed):
        """For any timestamp t contained in a scan result h,
        #h_j >= t_j for all j."""
        system, aug = run_workload(3, 3, 3, seed)
        for h in h_scan_results(system, aug):
            counts = history_counts(h)
            for stamp in timestamps_in(h):
                for j, component in enumerate(stamp.as_tuple()):
                    assert counts[j] >= component

    def test_corollary_11_fresh_timestamps_dominate(self, seed):
        """Timestamps actually generated during the run dominate everything
        contained in the history they were generated from: equivalently,
        all appended timestamps are strictly increasing per process."""
        system, aug = run_workload(3, 3, 3, seed)
        per_rank = {}
        state = [()] * aug.k_plus_1
        for event in system.trace.steps():
            if event.obj_name == aug.H.name and event.op == "update":
                slot, new_history = event.args
                appended = new_history[len(state[slot]):]
                state[slot] = new_history
                if appended:
                    stamp = appended[0][2]
                    if slot in per_rank:
                        assert stamp > per_rank[slot]
                    per_rank[slot] = stamp

    def test_lemma_12_timestamps_unique_per_component(self, seed):
        """Any two triples in H for the same component of M carry
        different timestamps."""
        system, aug = run_workload(4, 3, 3, seed)
        final = aug.H.view()
        seen = set()
        for history in final:
            for component, _value, stamp in history:
                key = (component, stamp)
                assert key not in seen
                seen.add(key)

    def test_all_block_update_timestamps_globally_unique(self, seed):
        system, aug = run_workload(4, 3, 3, seed)
        final = aug.H.view()
        stamps = [
            stamp
            for history in final
            for _c, _v, stamp in history
        ]
        # Triples of the same Block-Update share a timestamp; distinct
        # Block-Updates never do.  Here each Block-Update writes one
        # component, so all stamps are distinct.
        assert len(set(stamps)) == len(stamps)
