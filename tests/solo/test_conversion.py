"""Theorem 4 as tests: the derandomized machine is obstruction-free, uses
the same registers, and only takes steps the original allows."""

import random

import pytest

from repro.errors import DivergenceError, ValidationError
from repro.runtime import RandomScheduler, RoundRobinScheduler, System
from repro.solo import (
    ConvertedMachine,
    SpinOrCommit,
    TokenRace,
    converted_body,
    nondet_body,
    shortest_solo_path,
)
from repro.solo.conversion import make_registers, solo_run_machine
from repro.solo.machines import READ, WRITE, NondetMachine


class TestShortestSoloPath:
    def test_spin_or_commit_path(self):
        machine = SpinOrCommit()
        path = shortest_solo_path(machine, machine.initial_state("v"), {})
        assert path == [(WRITE, 0, "token"), (READ, 0)]

    def test_final_state_gives_empty_path(self):
        machine = SpinOrCommit()
        assert shortest_solo_path(machine, ("done", "v"), {}) == []

    def test_view_constrains_responses(self):
        """With the register known to hold the token, the path can finish
        in one read from the `wrote` state."""
        machine = SpinOrCommit()
        path = shortest_solo_path(machine, ("wrote", "v"), {0: "token"})
        assert path == [(READ, 0)]

    def test_unknown_registers_branch_over_domain(self):
        """From `wrote` with an unknown register, the optimistic branch
        (register already holds the token) gives a 1-step path."""
        machine = SpinOrCommit()
        path = shortest_solo_path(machine, ("wrote", "v"), {})
        assert len(path) == 1

    def test_non_terminating_machine_detected(self):
        class Forever(NondetMachine):
            name, registers, value_domain = "forever", 1, (None,)

            def initial_state(self, value):
                return "spin"

            def is_final(self, state):
                return False

            def output(self, state):
                raise AssertionError

            def steps(self, state):
                return ((READ, 0),)

            def transition(self, state, step, response):
                return "spin"

        with pytest.raises(DivergenceError):
            shortest_solo_path(Forever(), "spin", {}, max_nodes=1_000)


class TestConvertedMachine:
    def test_same_register_count(self):
        for machine in (SpinOrCommit(), TokenRace()):
            assert ConvertedMachine(machine).registers == machine.registers

    def test_policy_is_deterministic_and_memoized(self):
        converted = ConvertedMachine(SpinOrCommit())
        state = converted.machine.initial_state("v")
        first = converted.next_step(state, {})
        second = converted.next_step(state, {})
        assert first == second == (WRITE, 0, "token")

    def test_every_step_is_allowed_by_nu(self):
        """Π′ ⊆ Π: each chosen step belongs to the original ν."""
        machine = TokenRace()
        converted = ConvertedMachine(machine)
        output, _, _ = solo_run_machine(converted, 1)
        for (state, view), step in converted._policy.items():
            assert step in machine.steps(state)
        assert output == 1

    def test_solo_measure_strictly_decreases_after_coverage(self):
        """The Theorem 4 potential: once the local view covers every
        register (the paper's prefix α′), the shortest-path length strictly
        decreases to 1, bounding the rest of the run."""
        for machine, value in ((SpinOrCommit(), "v"), (TokenRace(), 0)):
            converted = ConvertedMachine(machine)
            output, measures, covered_at = solo_run_machine(converted, value)
            assert output is not None
            assert measures  # took at least one step
            tail = measures[covered_at:]
            assert all(
                later < earlier for earlier, later in zip(tail, tail[1:])
            )
            assert measures[-1] == 1

    def test_potential_can_rise_before_coverage(self):
        """Before all registers are known, an optimistic branch can be
        falsified by a real read — the reason the paper's argument needs
        the α′ prefix.  TokenRace exhibits the rise."""
        converted = ConvertedMachine(TokenRace())
        _output, measures, covered_at = solo_run_machine(converted, 0)
        head = measures[: covered_at + 1]
        assert any(
            later > earlier for earlier, later in zip(head, head[1:])
        ) or covered_at <= 1

    def test_solo_from_adversarial_contents(self):
        """Obstruction-freedom from arbitrary reachable contents: seed the
        registers with junk and the solo run still terminates."""
        machine = TokenRace()
        converted = ConvertedMachine(machine)
        for contents in ({0: 0, 1: 1}, {0: 1, 1: None}, {0: None, 1: 0}):
            output, measures, _covered = solo_run_machine(
                converted, 1, initial_contents=dict(contents)
            )
            assert output in (0, 1)
            assert len(measures) <= 10


class TestRuntimeExecution:
    def test_converted_runs_concurrently(self):
        machine = TokenRace()
        converted = ConvertedMachine(machine)
        registers = make_registers(machine)
        for seed in range(10):
            system = System()
            for index, value in enumerate((0, 1)):
                system.add_process(converted_body(converted, registers, value))
            # Fresh registers per run.
            for register in registers:
                register.value = None
            result = system.run(RandomScheduler(seed), max_steps=5_000)
            for output in result.outputs.values():
                assert output in (0, 1)

    def test_nondet_body_with_seeded_chooser(self):
        machine = SpinOrCommit()
        registers = make_registers(machine)
        rng = random.Random(3)
        system = System()
        system.add_process(
            nondet_body(machine, registers, "v", chooser=rng.choice)
        )
        result = system.run(RoundRobinScheduler(), max_steps=10_000)
        # Randomized: terminates with probability 1; seed 3 terminates.
        assert result.outputs.get(0) == "v"

    def test_converted_execution_replayable_in_original(self):
        """Record Π′'s steps, then drive Π with a chooser replaying them:
        the executions coincide — every execution of Π′ is one of Π."""
        machine = SpinOrCommit()
        converted = ConvertedMachine(machine)
        registers = make_registers(machine, prefix="A")
        system = System()
        system.add_process(converted_body(converted, registers, "v"))
        result = system.run(RoundRobinScheduler(), max_steps=1_000)
        recorded = [
            (event.op, event.args)
            for event in system.trace.steps()
        ]
        assert result.outputs[0] == "v"

        steps_iter = iter(recorded)

        def replay_chooser(options):
            op, args = next(steps_iter)
            for option in options:
                if op == "read" and option[0] == READ:
                    return option
                if op == "write" and option[0] == WRITE and option[2] == args[0]:
                    return option
            raise AssertionError(f"recorded step {op}{args} not in ν")

        registers2 = make_registers(machine, prefix="B")
        system2 = System()
        system2.add_process(
            nondet_body(machine, registers2, "v", chooser=replay_chooser)
        )
        result2 = system2.run(RoundRobinScheduler(), max_steps=1_000)
        assert result2.outputs[0] == "v"

    def test_register_count_mismatch_rejected(self):
        machine = TokenRace()
        converted = ConvertedMachine(machine)
        with pytest.raises(ValidationError):
            converted_body(converted, make_registers(SpinOrCommit()), 0)
