"""Tests for the Appendix A machine model and example machines."""

import random

import pytest

from repro.errors import ValidationError
from repro.solo import SpinOrCommit, TokenRace
from repro.solo.machines import READ, WRITE


class TestSpinOrCommit:
    def setup_method(self):
        self.machine = SpinOrCommit()

    def test_initial_state_not_final(self):
        state = self.machine.initial_state("v")
        assert not self.machine.is_final(state)

    def test_nondeterministic_choice_in_start(self):
        state = self.machine.initial_state("v")
        steps = self.machine.steps(state)
        assert (READ, 0) in steps
        assert (WRITE, 0, "token") in steps

    def test_spin_path_never_terminates(self):
        """The all-reads choice sequence loops forever in `start`."""
        state = self.machine.initial_state("v")
        for _ in range(50):
            state = self.machine.transition(state, (READ, 0), None)
            assert state == ("start", "v")

    def test_commit_path_terminates_in_two_steps(self):
        state = self.machine.initial_state("v")
        state = self.machine.transition(state, (WRITE, 0, "token"), "token")
        state = self.machine.transition(state, (READ, 0), "token")
        assert self.machine.is_final(state)
        assert self.machine.output(state) == "v"

    def test_overwritten_token_retries(self):
        state = self.machine.initial_state("v")
        state = self.machine.transition(state, (WRITE, 0, "token"), "token")
        state = self.machine.transition(state, (READ, 0), "other")
        assert state == ("start", "v")

    def test_output_of_nonfinal_rejected(self):
        with pytest.raises(ValidationError):
            self.machine.output(self.machine.initial_state("v"))


class TestTokenRace:
    def setup_method(self):
        self.machine = TokenRace()

    def test_input_domain_enforced(self):
        with pytest.raises(ValidationError):
            self.machine.initial_state(7)

    def test_claim_then_verify_terminates(self):
        state = self.machine.initial_state(1)
        state = self.machine.transition(state, (WRITE, 0, 1), 1)
        state = self.machine.transition(state, (READ, 0), 1)
        state = self.machine.transition(state, (READ, 1), 1)
        assert self.machine.is_final(state)
        assert self.machine.output(state) == 1

    def test_mismatch_adopts_register_zero(self):
        state = self.machine.initial_state(1)
        state = self.machine.transition(state, (WRITE, 1, 1), 1)
        state = self.machine.transition(state, (READ, 0), 0)
        state = self.machine.transition(state, (READ, 1), 1)
        assert state == ("start", 0, None)

    def test_idle_reads_spin(self):
        state = self.machine.initial_state(0)
        for _ in range(10):
            state = self.machine.transition(state, (READ, 0), None)
        assert state == ("start", 0, None)

    def test_random_choice_sequences_stay_well_formed(self):
        """Fuzz ν/δ closure: every chooser path stays inside the state
        machine (no ValidationError) and outputs are inputs when final."""
        rng = random.Random(5)
        for _ in range(50):
            state = self.machine.initial_state(rng.choice((0, 1)))
            contents = {0: None, 1: None}
            for _step in range(30):
                if self.machine.is_final(state):
                    assert self.machine.output(state) in (0, 1)
                    break
                step = rng.choice(self.machine.steps(state))
                if step[0] == READ:
                    response = contents[step[1]]
                else:
                    contents[step[1]] = step[2]
                    response = step[2]
                state = self.machine.transition(state, step, response)
