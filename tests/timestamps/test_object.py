"""Tests for the Get-timestamp object."""

import pytest

from repro.errors import ModelError
from repro.runtime import RandomScheduler, RoundRobinScheduler, System
from repro.timestamps import TimestampObject


class TestSequential:
    def test_repeated_gets_increase(self):
        obj = TimestampObject("T", pids=[0])
        sys_ = System()

        def body(proc):
            first = yield from obj.get_timestamp(proc.pid)
            second = yield from obj.get_timestamp(proc.pid)
            third = yield from obj.get_timestamp(proc.pid)
            return [first, second, third]

        sys_.add_process(body)
        result = sys_.run(RoundRobinScheduler())
        seq = result.outputs[0]
        assert seq[0] < seq[1] < seq[2]

    def test_unknown_pid_rejected(self):
        obj = TimestampObject("T", pids=[0])
        with pytest.raises(ModelError):
            list(obj.get_timestamp(7))

    def test_duplicate_pids_rejected(self):
        with pytest.raises(ModelError):
            TimestampObject("T", pids=[1, 1])

    def test_register_count(self):
        assert TimestampObject("T", pids=[0, 1, 2]).register_count() == 3


class TestConcurrent:
    @pytest.mark.parametrize("seed", range(20))
    def test_get_timestamp_specification(self, seed):
        """Every Get-timestamp returns a value strictly larger than all
        values returned by Get-timestamps that completed before it began."""
        pids = [0, 1, 2]
        obj = TimestampObject("T", pids=pids)
        sys_ = System()
        intervals = []  # (start_seq, end_seq, timestamp)

        def body(proc):
            for _ in range(3):
                start = len(sys_.trace.steps())
                ts = yield from obj.get_timestamp(proc.pid)
                end = len(sys_.trace.steps())
                intervals.append((start, end, ts))

        for _ in pids:
            sys_.add_process(body)
        result = sys_.run(RandomScheduler(seed))
        assert result.completed
        for start_a, end_a, ts_a in intervals:
            for start_b, end_b, ts_b in intervals:
                if end_a <= start_b:  # a completed before b began
                    assert ts_b > ts_a

    @pytest.mark.parametrize("seed", range(20))
    def test_all_timestamps_distinct(self, seed):
        pids = [0, 1, 2, 3]
        obj = TimestampObject("T", pids=pids)
        sys_ = System()

        def body(proc):
            out = []
            for _ in range(2):
                out.append((yield from obj.get_timestamp(proc.pid)))
            return out

        for _ in pids:
            sys_.add_process(body)
        result = sys_.run(RandomScheduler(seed))
        everything = [ts for out in result.outputs.values() for ts in out]
        assert len(set(everything)) == len(everything)
