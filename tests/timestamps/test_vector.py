"""Unit and property tests for lexicographic vector timestamps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.timestamps import VectorTimestamp

vectors = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6)


def same_size_pair():
    return st.integers(min_value=1, max_value=6).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 50), min_size=n, max_size=n),
            st.lists(st.integers(0, 50), min_size=n, max_size=n),
        )
    )


class TestConstruction:
    def test_zero(self):
        assert VectorTimestamp.zero(3).as_tuple() == (0, 0, 0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            VectorTimestamp([])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            VectorTimestamp([1, -1])

    def test_immutable(self):
        ts = VectorTimestamp([1, 2])
        with pytest.raises(AttributeError):
            ts.components = (9, 9)

    def test_bump_out_of_range(self):
        with pytest.raises(ValidationError):
            VectorTimestamp([1]).bump(5)


class TestOrdering:
    def test_lexicographic_not_componentwise(self):
        # (1, 0) > (0, 99): lexicographic order is decided by the first
        # differing component, unlike the component-wise partial order.
        assert VectorTimestamp([1, 0]) > VectorTimestamp([0, 99])

    def test_equal(self):
        assert VectorTimestamp([1, 2]) == VectorTimestamp([1, 2])

    def test_size_mismatch_raises(self):
        with pytest.raises(ValidationError):
            VectorTimestamp([1]) < VectorTimestamp([1, 2])

    def test_incomparable_with_other_types(self):
        assert VectorTimestamp([1]) != (1,)

    def test_hashable_and_consistent(self):
        a, b = VectorTimestamp([3, 4]), VectorTimestamp([3, 4])
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestProperties:
    @given(vectors)
    def test_bump_own_component_strictly_increases(self, comps):
        ts = VectorTimestamp(comps)
        for i in range(len(comps)):
            assert ts.bump(i) > ts

    @given(same_size_pair())
    def test_total_order(self, pair):
        a, b = VectorTimestamp(pair[0]), VectorTimestamp(pair[1])
        assert (a < b) + (a == b) + (a > b) == 1

    @given(same_size_pair(), vectors)
    def test_transitivity(self, pair, third):
        size = len(pair[0])
        c_comps = (third * size)[:size]
        a, b, c = (
            VectorTimestamp(pair[0]),
            VectorTimestamp(pair[1]),
            VectorTimestamp(c_comps),
        )
        if a <= b and b <= c:
            assert a <= c

    @given(vectors)
    def test_zero_is_minimum(self, comps):
        assert VectorTimestamp.zero(len(comps)) <= VectorTimestamp(comps)

    @given(same_size_pair())
    def test_new_timestamp_rule_dominates(self, pair):
        """The Figure 1 New-timestamp rule: copying counts that are
        component-wise >= another vector and bumping your own component
        yields a lexicographically larger timestamp (Corollary 11 shape)."""
        mine, other = pair
        merged = [max(a, b) for a, b in zip(mine, other)]
        bumped = VectorTimestamp(merged).bump(0)
        assert bumped > VectorTimestamp(other)
