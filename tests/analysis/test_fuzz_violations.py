"""Tests for multi-violation retention in the fuzzer.

``fuzz_protocol`` historically discarded every violating schedule after
the first; it now retains up to ``max_saved_violations`` of them (so a
sharded campaign can report violations found by every worker) while the
single-violation behavior — first schedule, shrunken counterexample —
stays exactly as before.
"""


from repro.analysis.fuzz import fuzz_protocol, schedule_for_run
from repro.analysis.shrink import violates
from repro.protocols import (
    KSetAgreementTask,
    RacingConsensus,
    TruncatedProtocol,
)


def broken_consensus():
    return TruncatedProtocol(RacingConsensus(3), 1)


def fuzz(**kwargs):
    defaults = dict(runs=80, schedule_length=40, seed=1)
    defaults.update(kwargs)
    return fuzz_protocol(
        broken_consensus(), [0, 1, 2], KSetAgreementTask(1), **defaults
    )


class TestViolationRetention:
    def test_retains_up_to_cap(self):
        report = fuzz(max_saved_violations=5)
        assert report.violating_runs > 5
        assert len(report.violations) == 5

    def test_cap_keeps_lowest_run_indices(self):
        capped = fuzz(max_saved_violations=3)
        full = fuzz(max_saved_violations=10_000)
        assert capped.violations == full.violations[:3]
        indices = [record.run_index for record in capped.violations]
        assert indices == sorted(indices)

    def test_every_retained_schedule_actually_violates(self):
        report = fuzz(max_saved_violations=6)
        for record in report.violations:
            assert violates(
                broken_consensus(), [0, 1, 2], KSetAgreementTask(1),
                list(record.schedule),
            )
            assert list(record.schedule) == schedule_for_run(
                1, record.run_index, processes=3, length=40
            )

    def test_violating_runs_counts_beyond_cap(self):
        capped = fuzz(max_saved_violations=2)
        uncapped = fuzz(max_saved_violations=10_000)
        assert capped.violating_runs == uncapped.violating_runs
        assert capped.violating_runs > len(capped.violations)


class TestSingleViolationBehavior:
    def test_first_violation_schedule_is_lowest_indexed(self):
        report = fuzz()
        assert report.first_violation_schedule == list(
            report.violations[0].schedule
        )
        assert report.violations[0].run_index == min(
            record.run_index for record in report.violations
        )

    def test_minimized_corresponds_to_first_violation(self):
        report = fuzz(shrink=True)
        assert report.minimized is not None
        assert report.minimized.original == report.first_violation_schedule
        assert violates(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1),
            report.minimized.minimized,
        )

    def test_shrink_false_leaves_minimized_unset(self):
        report = fuzz(shrink=False)
        assert not report.clean
        assert report.minimized is None

    def test_clean_report_has_no_violations(self):
        report = fuzz_protocol(
            RacingConsensus(3), [0, 1, 1], KSetAgreementTask(1),
            runs=60, schedule_length=50, seed=2,
        )
        assert report.clean
        assert report.violations == []
        assert report.first_violation_schedule is None


class TestRunOffset:
    def test_offset_shifts_absolute_indices(self):
        whole = fuzz(runs=60, max_saved_violations=10_000)
        first = fuzz(runs=30, run_offset=0, max_saved_violations=10_000)
        second = fuzz(runs=30, run_offset=30, max_saved_violations=10_000)
        assert first.merge(second) == whole
        assert all(
            record.run_index >= 30 for record in second.violations
        )
