"""Tests for the FLP valence machinery."""

import pytest

from repro.analysis import bivalent_initial_configurations, classify_valence
from repro.analysis.bivalence import (
    initial_configuration,
    step_configuration,
)
from repro.errors import ValidationError
from repro.protocols import ImmediateDecide, RacingConsensus


class TestConfigurationStepping:
    def test_initial_configuration_shape(self):
        protocol = RacingConsensus(2)
        states, memory = initial_configuration(protocol, [0, 1])
        assert len(states) == 2
        assert memory == (None, None)

    def test_step_applies_update(self):
        protocol = RacingConsensus(2)
        config = initial_configuration(protocol, [0, 1])
        config = step_configuration(protocol, config, 0)
        _states, memory = config
        assert memory[0] == (1, 0)

    def test_step_on_decided_raises(self):
        protocol = ImmediateDecide(1)
        config = initial_configuration(protocol, [7])
        config = step_configuration(protocol, config, 0)
        config = step_configuration(protocol, config, 0)
        with pytest.raises(ValidationError):
            step_configuration(protocol, config, 0)


class TestValence:
    def test_same_inputs_univalent(self):
        report = classify_valence(RacingConsensus(2), [1, 1])
        assert report.values == {1}
        assert report.univalent
        assert not report.bivalent

    def test_different_inputs_bivalent(self):
        """The FLP Lemma 2 shape: with inputs 0 and 1, both outcomes are
        reachable from the initial configuration."""
        report = classify_valence(RacingConsensus(2), [0, 1])
        assert report.bivalent
        assert report.values == {0, 1}

    def test_witness_schedules_replay(self):
        protocol = RacingConsensus(2)
        report = classify_valence(protocol, [0, 1])
        for value, schedule in report.witnesses.items():
            config = initial_configuration(protocol, [0, 1])
            for index in schedule:
                config = step_configuration(protocol, config, index)
            states, _memory = config
            decided = {protocol.decision(s) for s in states}
            assert value in decided

    def test_univalent_after_decision(self):
        """Once a process decided 0, only 0 remains reachable."""
        protocol = RacingConsensus(2)
        report = classify_valence(protocol, [0, 1])
        schedule = report.witnesses[0]
        config = initial_configuration(protocol, [0, 1])
        for index in schedule:
            config = step_configuration(protocol, config, index)
        later = classify_valence(protocol, [0, 1], config=config)
        assert later.values == {0}

    def test_truncation_reported(self):
        report = classify_valence(
            RacingConsensus(2), [1, 1], max_configs=1
        )
        assert report.truncated


class TestBivalentInitials:
    def test_finds_the_mixed_vectors(self):
        results = bivalent_initial_configurations(
            RacingConsensus(2), [(0, 0), (0, 1), (1, 0), (1, 1)]
        )
        vectors = {vector for vector, _report in results}
        assert vectors == {(0, 1), (1, 0)}

    def test_trivial_protocol_everything_bivalent(self):
        """ImmediateDecide is not consensus: mixed inputs give two outputs,
        which the valence tool reports as bivalence."""
        results = bivalent_initial_configurations(
            ImmediateDecide(2), [(0, 1)]
        )
        assert len(results) == 1
