"""Property-based linearizability tests for the RMW object specs.

Random histories of swap / test-and-set / compare-and-swap operations
are generated *from* an atomic ground truth: each operation's result is
computed by applying the sequential spec in some linear order, and the
real-time intervals are then laid out to respect (or deliberately blur)
that order.  Such a history is linearizable by construction, so the
Wing–Gong checker must accept it and
:func:`~repro.analysis.certified_linearization` must emit a witness
certificate that the independent verifier replays successfully.

The rejection side is hand-built: canonical impossible histories (two
test-and-set winners, a swap that returns a value nobody installed, two
compare-and-swaps that both claim to have won the same race) must come
back ``(False, None)``.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CompletedOperation,
    CompareAndSwapSpec,
    SwapSpec,
    certified_linearization,
    check_linearizable,
    spec_for_base_object,
)
from repro.analysis import TestAndSetSpec as TASSpec  # noqa: N817 — plain import collides with pytest collection
from repro.certify.verify import verify

KINDS = ("swap", "test-and-set", "compare-and-swap")

_VALUES = st.integers(min_value=0, max_value=3)


def _operation(kind):
    """One (op, args) invocation drawn for the given object kind."""
    read = st.tuples(st.just("read"), st.just(()))
    if kind == "swap":
        mutate = st.tuples(st.just("swap"), st.tuples(_VALUES))
    elif kind == "test-and-set":
        mutate = st.tuples(
            st.sampled_from(["test_and_set", "reset"]), st.just(())
        )
    else:
        mutate = st.tuples(
            st.just("compare_and_swap"), st.tuples(_VALUES, _VALUES)
        )
    return st.one_of(read, mutate)


@st.composite
def atomic_history(draw):
    """A history whose results come from an actual sequential execution.

    Returns ``(kind, history)``.  Intervals are sequential
    (``[2i, 2i+1]``) with each end optionally stretched forward, which
    only *removes* precedence constraints — the generating order stays
    a valid linearization, so the history stays linearizable.
    """
    kind = draw(st.sampled_from(KINDS))
    invocations = draw(
        st.lists(_operation(kind), min_size=1, max_size=5)
    )
    spec = spec_for_base_object(kind)
    state = spec.initial_state()
    history = []
    for index, (op, args) in enumerate(invocations):
        state, result = spec.apply(state, op, args)
        stretch = draw(st.integers(min_value=0, max_value=6))
        history.append(CompletedOperation(
            f"op{index}", draw(st.integers(0, 2)), op, tuple(args),
            result, 2 * index, 2 * index + 1 + stretch,
        ))
    return kind, history


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(atomic_history())
def test_atomic_histories_are_linearizable(kind_and_history):
    kind, history = kind_and_history
    ok, witness = check_linearizable(
        history, spec_for_base_object(kind)
    )
    assert ok
    assert sorted(witness) == sorted(op.op_id for op in history)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(atomic_history())
def test_atomic_histories_certify_and_replay(kind_and_history):
    kind, history = kind_and_history
    ok, _witness, certificate = certified_linearization(
        history, spec_for_base_object(kind)
    )
    assert ok and certificate is not None
    verdict = verify(certificate)
    assert verdict.accepted, verdict


def _op(op_id, pid, name, args, result, start, end):
    return CompletedOperation(op_id, pid, name, tuple(args), result,
                              start, end)


class TestImpossibleHistoriesRejected:
    def test_two_tas_winners(self):
        history = [
            _op("a", 0, "test_and_set", (), 0, 0, 1),
            _op("b", 1, "test_and_set", (), 0, 2, 3),
        ]
        assert check_linearizable(history, TASSpec()) == (False, None)

    def test_swap_returns_uninstalled_value(self):
        history = [
            _op("a", 0, "swap", (5,), None, 0, 1),
            _op("b", 1, "swap", (6,), 9, 2, 3),  # nobody ever wrote 9
        ]
        assert check_linearizable(history, SwapSpec()) == (False, None)

    def test_swap_then_stale_read(self):
        history = [
            _op("a", 0, "swap", (5,), None, 0, 1),
            _op("b", 1, "read", (), None, 2, 3),  # reads initial after swap
        ]
        assert check_linearizable(history, SwapSpec()) == (False, None)

    def test_two_cas_both_win_same_race(self):
        history = [
            _op("a", 0, "compare_and_swap", (None, "x"), None, 0, 1),
            _op("b", 1, "compare_and_swap", (None, "y"), None, 2, 3),
        ]
        assert check_linearizable(
            history, CompareAndSwapSpec()
        ) == (False, None)

    def test_concurrent_tas_still_has_one_winner(self):
        """Overlap does not excuse two winners: some order must exist."""
        history = [
            _op("a", 0, "test_and_set", (), 0, 0, 10),
            _op("b", 1, "test_and_set", (), 0, 5, 6),
        ]
        assert check_linearizable(history, TASSpec()) == (False, None)
