"""Slow reference explorer: the pre-optimization code path, verbatim.

This module preserves the naively pure-functional explorer exactly as it
stood before the transition-cache/interning/parent-pointer optimization
of the production engine in :mod:`repro.analysis.explore`: ``poised`` is
re-called on every visit, ``_step`` rebuilds full state/memory tuples,
every frontier node carries an O(depth) schedule copy, and the memo
re-hashes wide configuration tuples.  It exists so the differential
property tests (``tests/campaign/test_explore_differential.py``) can
prove the optimized engine emits byte-identical
:class:`~repro.analysis.explore.ExplorationReport` objects — serial and
sharded — across the protocol corpus.

Keep this file dumb on purpose.  Do not optimize it; its value is that
it computes the report the obvious way.
"""

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.explore import (
    ExplorationReport,
    effective_prefix_depth,
    unit_budget,
)
from repro.errors import ValidationError
from repro.protocols.base import DECIDE, SCAN, Protocol


def _decisions(protocol: Protocol, states: Tuple) -> Dict[int, Any]:
    out = {}
    for index, state in enumerate(states):
        kind, payload = protocol.poised(state)
        if kind == DECIDE:
            out[index] = payload
    return out


def _step(
    protocol: Protocol, states: Tuple, memory: Tuple, index: int
) -> Tuple[Tuple, Tuple]:
    """Apply one step of (undecided) process ``index``; pure."""
    kind, payload = protocol.poised(states[index])
    if kind == SCAN:
        new_state = protocol.advance(states[index], memory)
        new_memory = memory
    else:
        component, value = payload
        new_state = protocol.advance(states[index], None)
        new_memory = memory[:component] + (value,) + memory[component + 1:]
    return states[:index] + (new_state,) + states[index + 1:], new_memory


def reference_schedule_prefixes(
    protocol: Protocol, inputs: Sequence[Any], depth: int
) -> Tuple[Tuple[int, ...], ...]:
    """All viable schedule prefixes of length ``depth``, in lex order
    (recursive formulation)."""
    states = tuple(
        protocol.initial_state(i, v) for i, v in enumerate(inputs)
    )
    memory: Tuple = (None,) * protocol.m
    prefixes: List[Tuple[int, ...]] = []

    def extend(states: Tuple, memory: Tuple, prefix: Tuple[int, ...]) -> None:
        if len(prefix) == depth:
            prefixes.append(prefix)
            return
        viable = [
            i for i in range(len(inputs))
            if protocol.poised(states[i])[0] != DECIDE
        ]
        if not viable:
            prefixes.append(prefix)
            return
        for index in viable:
            new_states, new_memory = _step(protocol, states, memory, index)
            extend(new_states, new_memory, prefix + (index,))

    extend(states, memory, ())
    return tuple(prefixes)


def _check_config(
    report: ExplorationReport,
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    states: Tuple,
    schedule: Tuple[int, ...],
    stop_at_first_violation: bool,
) -> Tuple[Dict[int, Any], bool]:
    """Safety-check one configuration against the task."""
    decided = _decisions(protocol, states)
    if not decided:
        return decided, False
    found = task.check(list(inputs), decided)
    if not found:
        return decided, False
    for violation in found:
        if violation not in report.violations:
            report.violations.append(violation)
    as_list = list(schedule)
    if report.counterexample is None or as_list < report.counterexample:
        report.counterexample = as_list
    return decided, stop_at_first_violation


def _explore_unit(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    prefix: Tuple[int, ...],
    max_configs: int,
    max_steps: Optional[int],
    stop_at_first_violation: bool,
) -> ExplorationReport:
    """Explore the interleaving subtree below one schedule prefix."""
    report = ExplorationReport()
    best_depth: Dict[Tuple, int] = {}

    # Pass 1: walk the prefix, recording the path and whether each step
    # took the least viable index (the ownership rule needs the suffix).
    states = tuple(
        protocol.initial_state(i, v) for i, v in enumerate(inputs)
    )
    memory: Tuple = (None,) * protocol.m
    path: List[Tuple[Tuple, Tuple]] = []
    least_viable: List[bool] = []
    for index in prefix:
        path.append((states, memory))
        viable = [
            i for i in range(len(inputs))
            if protocol.poised(states[i])[0] != DECIDE
        ]
        least_viable.append(bool(viable) and index == viable[0])
        states, memory = _step(protocol, states, memory, index)
    owned_from = len(prefix)
    for flag in reversed(least_viable):
        if not flag:
            break
        owned_from -= 1

    # Pass 2: seed the memo with the path configurations and check the
    # owned interior ones.
    for depth, (p_states, p_memory) in enumerate(path):
        key = (p_states, p_memory)
        if key in best_depth:
            continue
        best_depth[key] = depth
        if depth < owned_from:
            continue
        report.configurations += 1
        _decided, stop = _check_config(
            report, protocol, inputs, task, p_states, prefix[:depth],
            stop_at_first_violation,
        )
        if stop:
            report.violations.sort()
            return report
        if report.configurations >= max_configs:
            report.truncated = True
            report.violations.sort()
            return report

    # Pass 3: frontier exploration below the prefix.
    frontier: List[Tuple[Tuple, Tuple, int, Tuple[int, ...]]] = [
        (states, memory, len(prefix), prefix)
    ]
    while frontier:
        states, memory, depth, schedule = frontier.pop()
        key = (states, memory)
        prior = best_depth.get(key)
        if prior is not None and depth >= prior:
            continue
        first_visit = prior is None
        best_depth[key] = depth
        if first_visit:
            report.configurations += 1

        decided, stop = _check_config(
            report, protocol, inputs, task, states, schedule,
            stop_at_first_violation,
        )
        if stop:
            break
        all_decided = len(decided) == len(inputs)
        if all_decided and first_visit:
            report.fully_decided += 1
        if report.configurations >= max_configs:
            report.truncated = True
            break
        if all_decided:
            continue
        if max_steps is not None and depth >= max_steps:
            report.truncated = True
            continue

        for index in range(len(inputs)):
            if index in decided:
                continue
            new_states, new_memory = _step(protocol, states, memory, index)
            frontier.append(
                (new_states, new_memory, depth + 1, schedule + (index,))
            )
    report.violations.sort()
    return report


def reference_explore_prefix_range(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    prefixes: Sequence[Tuple[int, ...]],
    start: int,
    stop: int,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
) -> ExplorationReport:
    """Explore units ``start..stop-1`` of a prefix decomposition."""
    budget = unit_budget(max_configs, len(prefixes))
    report = ExplorationReport()
    for prefix in prefixes[start:stop]:
        report = report.merge(
            _explore_unit(
                protocol, inputs, task, tuple(prefix), budget, max_steps,
                stop_at_first_violation,
            )
        )
    return report


def reference_explore_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
    prefix_depth: int = 0,
) -> ExplorationReport:
    """Explore every interleaving of a protocol instance, checking safety."""
    if len(inputs) > protocol.n:
        raise ValidationError(
            f"{protocol.name} supports n={protocol.n}, got {len(inputs)} inputs"
        )
    depth = effective_prefix_depth(prefix_depth, max_steps)
    prefixes = reference_schedule_prefixes(protocol, inputs, depth)
    return reference_explore_prefix_range(
        protocol, inputs, task, prefixes, 0, len(prefixes),
        max_configs=max_configs, max_steps=max_steps,
        stop_at_first_violation=stop_at_first_violation,
    )
