"""Tests for the bounded-exhaustive protocol model checker."""

import pytest

from repro.analysis import (
    check_obstruction_freedom,
    explore_prefix_range,
    explore_protocol,
    schedule_prefixes,
    unit_budget,
)
from repro.errors import ValidationError
from repro.protocols import (
    ImmediateDecide,
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    TruncatedProtocol,
)
from repro.protocols.base import DECIDE, SCAN, UPDATE, Protocol


class DiamondTrap(Protocol):
    """Regression gadget for the depth-memoization soundness bug.

    The configuration after p0's first update is reachable both by the
    one-step schedule ``[0]`` and by the three-step diamond ``[1, 0, 1]``
    (p1's idle scan/update round-trips through component 1 without
    changing it).  Under ``max_steps=3``, DFS reaches that configuration
    first at depth 3 — already at the horizon, so its subtree (where p1
    observes "go", arms, and decides 999 against p0's input 0) is cut
    off.  The later depth-1 arrival via ``[0]`` must re-expand it to find
    the violation; a memo on ``(states, memory)`` alone prunes it and
    reports safe.
    """

    n, m, name = 2, 2, "diamond-trap"

    def initial_state(self, index, value):
        return ("p0", 0, value) if index == 0 else ("p1", "idle-scan")

    def poised(self, state):
        if state[0] == "p0":
            steps = [(UPDATE, (0, "go")), (SCAN, None), (DECIDE, state[2])]
            return steps[min(state[1], 2)]
        phase = state[1]
        if phase == "idle-scan":
            return (SCAN, None)
        if phase == "idle-upd":
            return (UPDATE, (1, None))
        if phase == "armed":
            return (UPDATE, (1, "bomb"))
        return (DECIDE, 999)

    def advance(self, state, observation=None):
        if state[0] == "p0":
            return ("p0", state[1] + 1, state[2])
        phase = state[1]
        if phase == "idle-scan":
            if observation[0] == "go":
                return ("p1", "armed")
            return ("p1", "idle-upd")
        if phase == "idle-upd":
            return ("p1", "idle-scan")
        return ("p1", "fire")


class LastConfigBad(Protocol):
    """Regression gadget for the budget off-by-one: the single successor
    configuration (where the lone process decides a non-input) is the
    ``max_configs``-th one counted, and must still be safety-checked."""

    n, m, name = 1, 1, "last-config-bad"

    def initial_state(self, index, value):
        return "start"

    def poised(self, state):
        if state == "start":
            return (UPDATE, (0, "x"))
        return (DECIDE, 999)

    def advance(self, state, observation=None):
        return "done"


class TestDepthMemoizationRegression:
    def test_shallower_arrival_reexpanded(self):
        # Fails on the pre-fix explorer (memo on configuration alone):
        # it reports safe under max_steps=3 because the depth-3 arrival
        # poisons the memo before the depth-1 arrival gets there.
        report = explore_protocol(
            DiamondTrap(), [0, 1], KSetAgreementTask(1), max_steps=3
        )
        assert not report.safe
        assert report.counterexample == [0, 1, 1]

    def test_deep_only_violation_stays_out_of_reach(self):
        # Soundness cuts both ways: the violation needs 3 steps past
        # p0's update, so max_steps=2 must NOT report it.
        report = explore_protocol(
            DiamondTrap(), [0, 1], KSetAgreementTask(1), max_steps=2
        )
        assert report.safe
        assert report.truncated

    def test_final_budgeted_config_checked(self):
        # Fails on the pre-fix explorer (budget break before the safety
        # check): the 2nd configuration is the violating one.
        report = explore_protocol(
            LastConfigBad(), [0], KSetAgreementTask(1), max_configs=2
        )
        assert not report.safe

    def test_budget_is_respected(self):
        report = explore_protocol(
            RacingConsensus(2), [0, 1], KSetAgreementTask(1), max_configs=10
        )
        assert report.configurations <= 10


class TestScheduleSharding:
    def test_prefixes_are_viable_and_lexicographic(self):
        prefixes = schedule_prefixes(RacingConsensus(2), [0, 1], 3)
        assert prefixes == tuple(sorted(prefixes))
        assert all(len(p) == 3 for p in prefixes)
        assert all(all(i in (0, 1) for i in p) for p in prefixes)

    def test_early_decided_prefixes_kept_short(self):
        # When every process is decided before the sharding depth, the
        # prefix is kept at its shorter length instead of being padded
        # with unviable steps.
        class BornDecided(Protocol):
            n, m, name = 2, 1, "born-decided"

            def initial_state(self, index, value):
                return value

            def poised(self, state):
                return (DECIDE, state)

            def advance(self, state, observation=None):
                return state

        assert schedule_prefixes(BornDecided(), [0, 1], 4) == ((),)
        # ImmediateDecide takes two steps (update, decide); at depth 4
        # every viable prefix is a complete 4-step interleaving.
        prefixes = schedule_prefixes(ImmediateDecide(2), [0, 1], 4)
        assert all(sorted(p) == [0, 0, 1, 1] for p in prefixes)

    def test_depth_zero_is_single_empty_prefix(self):
        assert schedule_prefixes(RacingConsensus(2), [0, 1], 0) == ((),)

    def test_depth_beyond_recursion_headroom(self):
        """The decomposition must not recurse once per depth level.

        A single never-deciding process yields exactly one prefix — a
        path as deep as requested — so any per-level stack frame would
        blow the interpreter's recursion limit long before depth 5000.
        """
        import sys

        class Spinner(Protocol):
            n, m, name = 1, 1, "spinner"

            def initial_state(self, index, value):
                return ("scan", 0)

            def poised(self, state):
                phase, count = state
                if phase == "scan":
                    return (SCAN, None)
                return (UPDATE, (0, count))

            def advance(self, state, observation=None):
                phase, count = state
                if phase == "scan":
                    return ("update", count + 1)
                return ("scan", count)

        depth = sys.getrecursionlimit() + 4000
        prefixes = schedule_prefixes(Spinner(), [0], depth)
        assert prefixes == ((0,) * depth,)

    def test_unit_budget_ceil_division(self):
        assert unit_budget(10, 4) == 3
        assert unit_budget(12, 4) == 3
        assert unit_budget(1, 100) == 1
        assert unit_budget(100, 0) == 100

    def test_negative_prefix_depth_rejected(self):
        with pytest.raises(ValidationError):
            explore_protocol(
                RacingConsensus(2), [0, 1], KSetAgreementTask(1),
                prefix_depth=-1,
            )

    def test_prefix_range_halves_merge_to_serial(self):
        protocol = TruncatedProtocol(RacingConsensus(3), 1)
        task = KSetAgreementTask(1)
        bounds = dict(max_configs=100_000, max_steps=20)
        serial = explore_protocol(
            protocol, [0, 1, 2], task, prefix_depth=2, **bounds
        )
        prefixes = schedule_prefixes(protocol, [0, 1, 2], 2)
        half = len(prefixes) // 2
        left = explore_prefix_range(
            protocol, [0, 1, 2], task, prefixes, 0, half, **bounds
        )
        right = explore_prefix_range(
            protocol, [0, 1, 2], task, prefixes, half, len(prefixes),
            **bounds
        )
        merged = left.merge(right)
        assert merged == serial
        assert repr(merged) == repr(serial)

    def test_prefix_depths_agree_on_safety(self):
        # Determinism is a per-decomposition contract: different prefix
        # depths may stop at different first violations, but every depth
        # must agree on the verdict and return a replayable schedule.
        from repro.analysis.bivalence import (
            initial_configuration,
            step_configuration,
        )

        protocol = TruncatedProtocol(RacingConsensus(3), 1)
        task = KSetAgreementTask(1)
        for depth in (0, 1, 2):
            report = explore_protocol(
                protocol, [0, 1, 2], task, max_configs=200_000,
                max_steps=20, prefix_depth=depth,
            )
            assert not report.safe
            assert len(report.counterexample) <= 20
            config = initial_configuration(protocol, [0, 1, 2])
            for index in report.counterexample:
                config = step_configuration(protocol, config, index)
            states, _memory = config
            decided = {
                i: protocol.decision(state)
                for i, state in enumerate(states)
                if protocol.decision(state) is not None
            }
            assert task.check([0, 1, 2], decided) != []


class TestExploreBasics:
    def test_trivial_protocol_fully_explored(self):
        report = explore_protocol(
            ImmediateDecide(2), [0, 1], KSetAgreementTask(2)
        )
        assert report.safe
        assert not report.truncated
        assert report.fully_decided > 0

    def test_input_count_validated(self):
        with pytest.raises(ValidationError):
            explore_protocol(ImmediateDecide(1), [0, 1], KSetAgreementTask(1))

    def test_config_budget_truncates(self):
        report = explore_protocol(
            RacingConsensus(2), [0, 1], KSetAgreementTask(1), max_configs=10
        )
        assert report.truncated

    def test_depth_bound_truncates(self):
        report = explore_protocol(
            RacingConsensus(2), [0, 1], KSetAgreementTask(1),
            max_configs=100_000, max_steps=3,
        )
        assert report.truncated

    def test_counterexample_replayable(self):
        """The schedule returned for a violation reproduces it when
        replayed step by step."""
        from repro.analysis.bivalence import (
            initial_configuration,
            step_configuration,
        )

        broken = TruncatedProtocol(RacingConsensus(3), 1)
        task = KSetAgreementTask(1)
        report = explore_protocol(
            broken, [0, 1, 2], task, max_configs=500_000, max_steps=40
        )
        assert not report.safe
        config = initial_configuration(broken, [0, 1, 2])
        for index in report.counterexample:
            config = step_configuration(broken, config, index)
        states, _memory = config
        decided = {}
        for i, state in enumerate(states):
            value = broken.decision(state)
            if value is not None:
                decided[i] = value
        assert task.check([0, 1, 2], decided) != []

    def test_collect_multiple_violations(self):
        broken = TruncatedProtocol(RacingConsensus(3), 1)
        report = explore_protocol(
            broken, [0, 1, 2], KSetAgreementTask(1),
            max_configs=200_000, max_steps=30,
            stop_at_first_violation=False,
        )
        assert len(report.violations) >= 1

    def test_min_seen_is_safe_for_weak_task(self):
        report = explore_protocol(
            MinSeen(2), [0, 1], KSetAgreementTask(2), max_configs=100_000
        )
        assert report.safe
        assert not report.truncated


class TestObstructionProbes:
    def test_wait_free_protocol_always_passes(self):
        schedules = [[0, 1, 0, 1], [], [1, 1, 1]]
        violations = check_obstruction_freedom(
            MinSeen(2), [5, 3], schedules
        )
        assert violations == []

    def test_livelocking_protocol_detected(self):
        """A protocol whose solo runs never decide fails the probe."""
        from repro.protocols.base import SCAN, UPDATE, Protocol

        class NeverDecide(Protocol):
            n, m, name = 1, 1, "never"

            def initial_state(self, index, value):
                return ("scan", 0)

            def poised(self, state):
                phase, count = state
                if phase == "scan":
                    return (SCAN, None)
                return (UPDATE, (0, count))

            def advance(self, state, observation=None):
                phase, count = state
                if phase == "scan":
                    return ("update", count + 1)
                return ("scan", count)

        violations = check_obstruction_freedom(
            NeverDecide(), [0], [[0, 0, 0]], solo_budget=200
        )
        assert violations

    def test_out_of_range_schedule_entry_rejected(self):
        with pytest.raises(ValidationError) as excinfo:
            check_obstruction_freedom(MinSeen(2), [5, 3], [[0, 2, 1]])
        assert "out of range" in str(excinfo.value)
        with pytest.raises(ValidationError):
            check_obstruction_freedom(MinSeen(2), [5, 3], [[-1]])

    def test_decided_processes_skipped(self):
        # Schedule longer than the protocol's life: decided steps skipped.
        violations = check_obstruction_freedom(
            ImmediateDecide(1), [4], [[0] * 50]
        )
        assert violations == []
