"""Tests for the bounded-exhaustive protocol model checker."""

import pytest

from repro.analysis import check_obstruction_freedom, explore_protocol
from repro.errors import ValidationError
from repro.protocols import (
    ImmediateDecide,
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    TruncatedProtocol,
)


class TestExploreBasics:
    def test_trivial_protocol_fully_explored(self):
        report = explore_protocol(
            ImmediateDecide(2), [0, 1], KSetAgreementTask(2)
        )
        assert report.safe
        assert not report.truncated
        assert report.fully_decided > 0

    def test_input_count_validated(self):
        with pytest.raises(ValidationError):
            explore_protocol(ImmediateDecide(1), [0, 1], KSetAgreementTask(1))

    def test_config_budget_truncates(self):
        report = explore_protocol(
            RacingConsensus(2), [0, 1], KSetAgreementTask(1), max_configs=10
        )
        assert report.truncated

    def test_depth_bound_truncates(self):
        report = explore_protocol(
            RacingConsensus(2), [0, 1], KSetAgreementTask(1),
            max_configs=100_000, max_steps=3,
        )
        assert report.truncated

    def test_counterexample_replayable(self):
        """The schedule returned for a violation reproduces it when
        replayed step by step."""
        from repro.analysis.bivalence import (
            initial_configuration,
            step_configuration,
        )

        broken = TruncatedProtocol(RacingConsensus(3), 1)
        task = KSetAgreementTask(1)
        report = explore_protocol(
            broken, [0, 1, 2], task, max_configs=500_000, max_steps=40
        )
        assert not report.safe
        config = initial_configuration(broken, [0, 1, 2])
        for index in report.counterexample:
            config = step_configuration(broken, config, index)
        states, _memory = config
        decided = {}
        for i, state in enumerate(states):
            value = broken.decision(state)
            if value is not None:
                decided[i] = value
        assert task.check([0, 1, 2], decided) != []

    def test_collect_multiple_violations(self):
        broken = TruncatedProtocol(RacingConsensus(3), 1)
        report = explore_protocol(
            broken, [0, 1, 2], KSetAgreementTask(1),
            max_configs=200_000, max_steps=30,
            stop_at_first_violation=False,
        )
        assert len(report.violations) >= 1

    def test_min_seen_is_safe_for_weak_task(self):
        report = explore_protocol(
            MinSeen(2), [0, 1], KSetAgreementTask(2), max_configs=100_000
        )
        assert report.safe
        assert not report.truncated


class TestObstructionProbes:
    def test_wait_free_protocol_always_passes(self):
        schedules = [[0, 1, 0, 1], [], [1, 1, 1]]
        violations = check_obstruction_freedom(
            MinSeen(2), [5, 3], schedules
        )
        assert violations == []

    def test_livelocking_protocol_detected(self):
        """A protocol whose solo runs never decide fails the probe."""
        from repro.protocols.base import SCAN, UPDATE, Protocol

        class NeverDecide(Protocol):
            n, m, name = 1, 1, "never"

            def initial_state(self, index, value):
                return ("scan", 0)

            def poised(self, state):
                phase, count = state
                if phase == "scan":
                    return (SCAN, None)
                return (UPDATE, (0, count))

            def advance(self, state, observation=None):
                phase, count = state
                if phase == "scan":
                    return ("update", count + 1)
                return ("scan", count)

        violations = check_obstruction_freedom(
            NeverDecide(), [0], [[0, 0, 0]], solo_budget=200
        )
        assert violations

    def test_decided_processes_skipped(self):
        # Schedule longer than the protocol's life: decided steps skipped.
        violations = check_obstruction_freedom(
            ImmediateDecide(1), [4], [[0] * 50]
        )
        assert violations == []
