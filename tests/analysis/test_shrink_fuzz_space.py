"""Tests for counterexample shrinking, fuzzing, and space measurement."""

import pytest

from repro.analysis import (
    components_written,
    explore_protocol,
    fuzz_protocol,
    measure_protocol_space,
    measure_system_registers,
    replay_schedule,
    shrink_schedule,
    violates,
)
from repro.protocols import (
    ImmediateDecide,
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
    run_protocol,
)
from repro.runtime import RandomScheduler


def broken_consensus():
    return TruncatedProtocol(RacingConsensus(3), 1)


def violating_schedule():
    report = explore_protocol(
        broken_consensus(), [0, 1, 2], KSetAgreementTask(1),
        max_configs=500_000, max_steps=40,
    )
    assert not report.safe
    return report.counterexample


class TestReplay:
    def test_replay_reaches_decisions(self):
        schedule = violating_schedule()
        decisions = replay_schedule(broken_consensus(), [0, 1, 2], schedule)
        assert len(set(decisions.values())) >= 2

    def test_decided_indices_are_noops(self):
        protocol = ImmediateDecide(2)
        # Way more steps than needed: extra entries are skipped.
        decisions = replay_schedule(protocol, [7, 8], [0] * 20 + [1] * 20)
        assert decisions == {0: 7, 1: 8}

    def test_violates_predicate(self):
        schedule = violating_schedule()
        assert violates(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1), schedule
        )
        assert not violates(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1), []
        )


class TestShrink:
    def test_shrinks_padded_schedule(self):
        # Suffix padding keeps the violation (decisions only accumulate);
        # prefix padding would change the execution entirely.
        schedule = violating_schedule()
        padded = list(schedule) + [2, 1, 0] * 8
        assert violates(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1), padded
        )
        result = shrink_schedule(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1), padded
        )
        assert len(result.minimized) <= len(schedule)
        assert violates(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1),
            result.minimized,
        )

    def test_result_is_one_minimal(self):
        schedule = violating_schedule()
        result = shrink_schedule(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1), schedule
        )
        minimized = result.minimized
        for position in range(len(minimized)):
            candidate = minimized[:position] + minimized[position + 1:]
            assert not (
                candidate
                and violates(
                    broken_consensus(), [0, 1, 2],
                    KSetAgreementTask(1), candidate,
                )
            )

    def test_non_violating_input_rejected(self):
        with pytest.raises(ValueError):
            shrink_schedule(
                broken_consensus(), [0, 1, 2], KSetAgreementTask(1), [0, 1]
            )


class TestFuzz:
    def test_finds_and_shrinks_violation(self):
        report = fuzz_protocol(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1),
            runs=300, schedule_length=40, seed=1,
        )
        assert not report.clean
        assert report.minimized is not None
        assert len(report.minimized.minimized) <= 40

    def test_safe_protocol_stays_clean(self):
        report = fuzz_protocol(
            RacingConsensus(3), [0, 1, 1], KSetAgreementTask(1),
            runs=150, schedule_length=50, seed=2,
        )
        assert report.clean

    def test_deterministic_given_seed(self):
        a = fuzz_protocol(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1),
            runs=100, seed=5, shrink=False,
        )
        b = fuzz_protocol(
            broken_consensus(), [0, 1, 2], KSetAgreementTask(1),
            runs=100, seed=5, shrink=False,
        )
        assert a.violating_runs == b.violating_runs
        assert a.first_violation_schedule == b.first_violation_schedule


class TestSpaceMeasurement:
    def test_components_written_counts_distinct(self):
        protocol = RotatingWrites(3, 3, rounds=3)
        # One process stepping 3 rounds: writes 3 distinct components.
        schedule = [0] * 6
        assert len(components_written(protocol, [9], schedule)) == 3

    def test_solo_runs_touch_few_components(self):
        """Space complexity is a max over executions: solo executions of
        grouped k-set touch only the solo process's group's components."""
        protocol = RacingConsensus(4)
        report = measure_protocol_space(
            protocol, [0, 1, 0, 1],
            schedules=[[0] * 20, [0, 1] * 20, [0, 1, 2, 3] * 10],
        )
        assert report.declared_m == 4
        assert report.min_used == 1  # solo run writes only its component
        assert report.max_used <= 4

    def test_mean_and_max(self):
        protocol = MinSeen(2)
        report = measure_protocol_space(
            protocol, [1, 2], schedules=[[0, 0], [0, 1, 0, 1]]
        )
        assert report.per_run == [1, 2]
        assert report.max_used == 2
        assert report.mean_used == 1.5

    def test_system_register_breakdown(self):
        system, _result = run_protocol(
            MinSeen(3), [1, 2, 3], RandomScheduler(0)
        )
        usage = measure_system_registers(system)
        assert usage == {"M": 3}
