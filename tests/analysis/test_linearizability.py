"""Tests for the Wing–Gong linearizability checker, including the
machine-check of the [AAD+93] snapshot constructions."""

import pytest

from repro.analysis.linearizability import (
    CompletedOperation,
    RegisterSpec,
    SnapshotSpec,
    check_linearizable,
    crossing_pairs,
    history_from_trace,
)
from repro.errors import ValidationError
from repro.memory import AfekSnapshot
from repro.memory.afek import AfekMWSnapshot
from repro.runtime import RandomScheduler, System


def op(op_id, pid, name, args, result, start, end):
    return CompletedOperation(op_id, pid, name, tuple(args), result, start, end)


class TestChecker:
    def test_sequential_history_accepts(self):
        history = [
            op("w", 0, "write", (5,), 5, 0, 1),
            op("r", 1, "read", (), 5, 2, 3),
        ]
        ok, witness = check_linearizable(history, RegisterSpec())
        assert ok
        assert witness == ["w", "r"]

    def test_stale_read_after_write_rejected(self):
        history = [
            op("w", 0, "write", (5,), 5, 0, 1),
            op("r", 1, "read", (), None, 2, 3),  # reads initial after write
        ]
        ok, witness = check_linearizable(history, RegisterSpec())
        assert not ok
        assert witness is None

    def test_concurrent_read_may_return_either(self):
        for observed in (None, 5):
            history = [
                op("w", 0, "write", (5,), 5, 0, 10),
                op("r", 1, "read", (), observed, 5, 6),  # overlaps the write
            ]
            ok, _ = check_linearizable(history, RegisterSpec())
            assert ok

    def test_snapshot_spec(self):
        spec = SnapshotSpec(2)
        history = [
            op("u", 0, "update", (0, "a"), None, 0, 1),
            op("s", 1, "scan", (), ("a", None), 2, 3),
        ]
        ok, _ = check_linearizable(history, spec)
        assert ok

    def test_snapshot_new_old_inversion_rejected(self):
        """The classic non-atomic-snapshot anomaly: two scans disagree on
        the order of two non-concurrent updates."""
        spec = SnapshotSpec(2)
        history = [
            op("u1", 0, "update", (0, "a"), None, 0, 1),
            op("u2", 1, "update", (1, "b"), None, 2, 3),
            op("s1", 2, "scan", (), (None, "b"), 4, 5),  # saw u2 but not u1!
        ]
        ok, _ = check_linearizable(history, spec)
        assert not ok

    def test_duplicate_ids_rejected(self):
        history = [
            op("x", 0, "read", (), None, 0, 1),
            op("x", 1, "read", (), None, 2, 3),
        ]
        with pytest.raises(ValidationError):
            check_linearizable(history, RegisterSpec())

    def test_interval_sanity(self):
        with pytest.raises(ValidationError):
            op("x", 0, "read", (), None, 5, 2)

    def test_crossing_pairs(self):
        history = [
            op("a", 0, "read", (), None, 0, 10),
            op("b", 1, "read", (), None, 5, 6),
            op("c", 2, "read", (), None, 20, 21),
        ]
        assert crossing_pairs(history) == 1


def run_afek_workload(snapshot_factory, body_factory, writers, seed):
    system = System()
    snapshot = snapshot_factory()
    for _ in writers:
        system.add_process(body_factory(snapshot))
    result = system.run(RandomScheduler(seed), max_steps=200_000)
    assert result.completed
    return system, snapshot


class TestAfekLinearizability:
    """E9: the [AAD+93] constructions are linearizable — machine-checked."""

    @pytest.mark.parametrize("seed", range(10))
    def test_single_writer_snapshot_linearizable(self, seed):
        writers = [0, 1, 2]

        def factory():
            return AfekSnapshot("S", writers=writers, initial=None)

        def body_factory(snapshot):
            def body(proc):
                yield from snapshot.update(proc.pid, f"w{proc.pid}")
                yield from snapshot.scan(proc.pid)
                yield from snapshot.update(proc.pid, f"w{proc.pid}b")

            return body

        system, snapshot = run_afek_workload(factory, body_factory, writers, seed)
        history = history_from_trace(system.trace, "S")
        assert len(history) == 9
        ok, _witness = check_linearizable(history, SnapshotSpec(3))
        assert ok

    @pytest.mark.parametrize("seed", range(10))
    def test_multi_writer_snapshot_linearizable(self, seed):
        writers = [0, 1, 2, 3]

        def factory():
            return AfekMWSnapshot("MW", components=2, initial=None)

        def body_factory(snapshot):
            def body(proc):
                yield from snapshot.update(proc.pid, proc.pid % 2, f"w{proc.pid}")
                yield from snapshot.scan(proc.pid)

            return body

        system, snapshot = run_afek_workload(factory, body_factory, writers, seed)
        history = history_from_trace(system.trace, "MW")
        ok, _witness = check_linearizable(history, SnapshotSpec(2))
        assert ok

    def test_histories_are_actually_contended(self):
        """Guard against vacuity: the workloads do produce overlapping
        operations under at least one seed."""
        total_crossings = 0
        for seed in range(10):
            writers = [0, 1, 2]

            def factory():
                return AfekSnapshot("S", writers=writers, initial=None)

            def body_factory(snapshot):
                def body(proc):
                    yield from snapshot.update(proc.pid, proc.pid)
                    yield from snapshot.scan(proc.pid)

                return body

            system, _ = run_afek_workload(factory, body_factory, writers, seed)
            total_crossings += crossing_pairs(history_from_trace(system.trace, "S"))
        assert total_crossings > 0
