"""Tests for the Burns–Lynch covering machinery."""

import pytest

from repro.analysis import build_covering
from repro.analysis.covering import release_covering
from repro.errors import ValidationError
from repro.protocols import MinSeen, RacingConsensus, RotatingWrites


class TestBuildCovering:
    def test_covers_distinct_components(self):
        protocol = RacingConsensus(4)
        report = build_covering(protocol, [0, 1, 0, 1])
        assert report.size == 4
        assert sorted(report.covered) == [0, 1, 2, 3]

    def test_poised_values_are_pending_writes(self):
        protocol = RacingConsensus(3)
        report = build_covering(protocol, [0, 1, 0])
        for index, (component, value) in report.poised_values.items():
            assert report.covered[component] == index
            assert value[0] >= 1  # a (round, value) pair

    def test_target_larger_than_m_rejected(self):
        with pytest.raises(ValidationError):
            build_covering(RacingConsensus(2), [0, 1], target=3)

    def test_partial_target(self):
        report = build_covering(RacingConsensus(4), [0, 1, 0, 1], target=2)
        assert report.size == 2

    def test_early_decider_reported_blocked(self):
        """ImmediateDecide processes write once then decide; the second
        process targeting an already-covered component decides during its
        drive and is reported blocked."""
        protocol = MinSeen(2)
        # Process 0 covers component 0; process 1 covers component 1: both
        # cover fresh components, nobody blocked.
        report = build_covering(protocol, [5, 3])
        assert report.size == 2
        assert report.blocked == {}

    def test_blocked_when_no_fresh_component(self):
        """A process that can only ever write an already-covered component
        decides during its drive and is reported blocked."""
        from repro.protocols.base import DECIDE, SCAN, UPDATE, Protocol

        class WriteZeroOnce(Protocol):
            n, m, name = 2, 2, "write-zero-once"

            def initial_state(self, index, value):
                return ("update", value)

            def poised(self, state):
                phase, value = state
                if phase == "update":
                    return (UPDATE, (0, value))
                if phase == "scan":
                    return (SCAN, None)
                return (DECIDE, value)

            def advance(self, state, observation=None):
                phase, value = state
                return ("scan" if phase == "update" else "done", value)

        report = build_covering(WriteZeroOnce(), [1, 2], target=2)
        assert report.size == 1
        assert report.covered == {0: 0}
        assert "decided" in report.blocked[1]

    def test_covering_grows_with_rotating_writes(self):
        protocol = RotatingWrites(6, 4, rounds=4)
        report = build_covering(protocol, [9, 8, 7, 6])
        assert report.size == 4


class TestReleaseCovering:
    def test_block_write_obliterates(self):
        protocol = RacingConsensus(3)
        report = build_covering(protocol, [0, 1, 0])
        contents = release_covering(report)
        # Every covered component now holds the poised (round, value) pair.
        for index, (component, value) in report.poised_values.items():
            assert contents[component] == value

    def test_release_does_not_mutate_report(self):
        protocol = RacingConsensus(2)
        report = build_covering(protocol, [0, 1])
        before = report.memory
        release_covering(report)
        assert report.memory == before
