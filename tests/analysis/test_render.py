"""Tests for the text renderers."""

import pytest

from repro.analysis.render import (
    render_bound_table,
    render_correspondence,
    render_decisions,
    render_linearization,
    render_trace,
)
from repro.augmented import AugmentedSnapshot
from repro.augmented.linearization import linearize
from repro.core import bound_table, check_correspondence, run_simulation
from repro.protocols import RotatingWrites
from repro.runtime import RandomScheduler, System


@pytest.fixture(scope="module")
def outcome():
    return run_simulation(
        RotatingWrites(7, 3, rounds=4), k=2, x=1, inputs=[5, 2, 8],
        scheduler=RandomScheduler(3), max_steps=400_000,
    )


@pytest.fixture(scope="module")
def augmented_run():
    system = System()
    aug = AugmentedSnapshot("M", components=2, pids=[0, 1])

    def body(proc):
        yield from aug.block_update(proc.pid, [proc.pid % 2], [proc.pid])
        yield from aug.scan(proc.pid)

    for _ in range(2):
        system.add_process(body)
    system.run(RandomScheduler(6), max_steps=50_000)
    return system, aug


class TestRenderTrace:
    def test_contains_step_rows(self, augmented_run):
        system, _aug = augmented_run
        text = render_trace(system)
        assert "seq" in text
        assert "M.H" in text
        assert "scan" in text

    def test_limit(self, augmented_run):
        system, _aug = augmented_run
        text = render_trace(system, limit=3)
        assert len(text.splitlines()) == 5  # header + separator + 3 rows


class TestRenderLinearization:
    def test_shows_updates_and_scans(self, augmented_run):
        system, aug = augmented_run
        text = render_linearization(linearize(system.trace, aug))
        assert "Update" in text
        assert "Scan" in text
        assert "atomic" in text


class TestRenderCorrespondence:
    def test_summary_and_rows(self, outcome):
        correspondence = check_correspondence(outcome)
        text = render_correspondence(correspondence)
        assert "simulated steps" in text
        assert "no violations" in text
        assert "block-update" in text

    def test_violations_rendered(self, outcome):
        correspondence = check_correspondence(outcome)
        correspondence.violations.append("made-up violation")
        text = render_correspondence(correspondence)
        assert "VIOLATIONS" in text
        assert "made-up violation" in text


class TestRenderBoundsAndDecisions:
    def test_bound_table(self):
        text = render_bound_table(bound_table(ns=[4, 8], ks=[1, 2]))
        assert "lower" in text
        assert "yes" in text  # consensus rows tight

    def test_decisions(self, outcome):
        text = render_decisions(outcome)
        assert "q0" in text
        assert "decided" in text

    def test_undecided_marked(self, outcome):
        import copy

        partial = copy.copy(outcome)
        partial.decisions = {0: 5}
        text = render_decisions(partial)
        assert "undecided" in text
