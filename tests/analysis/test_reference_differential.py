"""Differential suite: optimized explorer equals the slow reference.

The production explorer in :mod:`repro.analysis.explore` caches
transitions, interns configurations, and reconstructs schedules from
parent pointers; :mod:`tests.analysis.reference_explore` is the
pre-optimization implementation kept verbatim.  For a corpus of
protocol instances — including the DiamondTrap and LastConfigBad
regression gadgets, whose traversal-order and budget edge cases are
exactly what caching tends to perturb — both must produce identical
:class:`ExplorationReport` values field-for-field, as ``repr`` byte
strings, and as summaries, serially and when sharded over prefix
ranges.
"""

import pytest

from repro.analysis import (
    ExplorationContext,
    explore_prefix_range,
    explore_protocol,
    schedule_prefixes,
)
from repro.protocols import (
    CASConsensus,
    KSetAgreementTask,
    LargeRegisterEmulation,
    MinSeen,
    RacingConsensus,
    RegularRegisterTask,
    SwapConsensus,
    TASConsensus,
    TruncatedProtocol,
)
from repro.protocols.base import DECIDE, RMW, SCAN, UPDATE, Protocol
from tests.analysis.reference_explore import (
    reference_explore_prefix_range,
    reference_explore_protocol,
    reference_schedule_prefixes,
)
from tests.analysis.test_explore import DiamondTrap, LastConfigBad

# (protocol factory, inputs, task, bounds) — the bounds exercise the
# horizon, the configuration budget, and the unbounded cases.
CASES = [
    (lambda: TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=20)),
    (lambda: RacingConsensus(2), [0, 1],
     KSetAgreementTask(1), dict(max_configs=50_000, max_steps=14)),
    (lambda: MinSeen(2), [0, 1],
     KSetAgreementTask(2), dict(max_configs=100_000, max_steps=None)),
    (lambda: DiamondTrap(), [0, 1],
     KSetAgreementTask(1), dict(max_configs=200_000, max_steps=3)),
    (lambda: DiamondTrap(), [0, 1],
     KSetAgreementTask(1), dict(max_configs=200_000, max_steps=2)),
    (lambda: LastConfigBad(), [0],
     KSetAgreementTask(1), dict(max_configs=2, max_steps=None)),
]


def assert_reports_identical(optimized, reference):
    assert optimized == reference
    assert repr(optimized) == repr(reference)
    assert optimized.summary() == reference.summary()


class TestSerialDifferential:
    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("stop_first", [True, False])
    def test_report_identical(self, case, stop_first):
        factory, inputs, task, bounds = CASES[case]
        reference = reference_explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, **bounds,
        )
        optimized = explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, **bounds,
        )
        assert_reports_identical(optimized, reference)

    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("prefix_depth", [1, 2, 3])
    def test_report_identical_with_prefix_depth(self, case, prefix_depth):
        factory, inputs, task, bounds = CASES[case]
        reference = reference_explore_protocol(
            factory(), inputs, task, prefix_depth=prefix_depth, **bounds,
        )
        optimized = explore_protocol(
            factory(), inputs, task, prefix_depth=prefix_depth, **bounds,
        )
        assert_reports_identical(optimized, reference)


class TestShardedDifferential:
    """Sharded optimized exploration merges to the reference's serial
    report — the ownership rule and merge monoid survive the caching."""

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_halves_merge_to_reference_serial(self, case):
        factory, inputs, task, bounds = CASES[case]
        depth = 2
        reference = reference_explore_protocol(
            factory(), inputs, task, prefix_depth=depth, **bounds,
        )
        protocol = factory()
        prefixes = schedule_prefixes(protocol, inputs, depth)
        half = len(prefixes) // 2
        left = explore_prefix_range(
            protocol, inputs, task, prefixes, 0, half, **bounds
        )
        right = explore_prefix_range(
            protocol, inputs, task, prefixes, half, len(prefixes), **bounds
        )
        assert_reports_identical(left.merge(right), reference)

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_shared_context_across_shards_is_pure(self, case):
        """One ExplorationContext reused across every shard (the campaign
        engine's in-process layout) must not leak state between units."""
        factory, inputs, task, bounds = CASES[case]
        protocol = factory()
        reference = reference_explore_protocol(
            protocol, inputs, task, prefix_depth=2, **bounds,
        )
        ctx = ExplorationContext(protocol, inputs, task)
        prefixes = schedule_prefixes(protocol, inputs, 2, context=ctx)
        merged = None
        for unit in range(len(prefixes)):
            shard = explore_prefix_range(
                protocol, inputs, task, prefixes, unit, unit + 1,
                context=ctx, **bounds,
            )
            merged = shard if merged is None else merged.merge(shard)
        assert_reports_identical(merged, reference)


class TestUnpackedDifferential:
    """The ``packed=False`` fallback encoding also equals the reference
    (the packed default is covered by every other class here; together
    they pin that the encoding choice is pure key representation)."""

    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("stop_first", [True, False])
    def test_report_identical(self, case, stop_first):
        factory, inputs, task, bounds = CASES[case]
        reference = reference_explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, **bounds,
        )
        unpacked = explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, packed=False, **bounds,
        )
        assert_reports_identical(unpacked, reference)


class SwapThenWrite(Protocol):
    """Gadget mixing an RMW step with updates and scans.

    Each process swaps its input through shared component 0 (so the
    second swapper's RMW lands on an already-written component — the
    cache-sensitive case for the explorer's RMW successor table), posts
    what it got back to its own component, scans, and decides what it
    sees in component 0.
    """

    def __init__(self, n: int = 2) -> None:
        self.n = n
        self.m = 1 + n
        self.name = f"swap-then-write(n={n})"

    def initial_state(self, index, value):
        self.check_index(index)
        return ("swap", index, value)

    def poised(self, state):
        phase, index, value = state
        if phase == "swap":
            return (RMW, (0, "swap", (value,)))
        if phase == "write":
            return (UPDATE, (1 + index, value))
        if phase == "scan":
            return (SCAN, None)
        return (DECIDE, value)

    def advance(self, state, observation=None):
        phase, index, value = state
        if phase == "swap":
            taken = value if observation is None else observation
            return ("write", index, taken)
        if phase == "write":
            return ("scan", index, value)
        return ("done", index, observation[0])


# The frozen reference explorer predates the RMW poised kind, so these
# cases are differential between the *live* encodings and execution
# layouts only: packed vs unpacked vs sharded must still agree
# byte-for-byte on every base-object family.
RMW_CASES = [
    (lambda: SwapConsensus(3), [0, 1, 2],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=None)),
    (lambda: CASConsensus(3), [0, 1, 2],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=None)),
    (lambda: TASConsensus(3), [0, 1, 2],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=None)),
    (lambda: SwapThenWrite(2), [3, 4],
     KSetAgreementTask(2), dict(max_configs=100_000, max_steps=None)),
    (lambda: LargeRegisterEmulation(3, (2,), safe=False), [0, 0],
     RegularRegisterTask(3, (2,)), dict(max_configs=100_000,
                                        max_steps=None)),
]


class TestBaseObjectEncodingDifferential:
    """Packed vs unpacked vs sharded over the RMW protocol families."""

    @pytest.mark.parametrize("case", range(len(RMW_CASES)))
    @pytest.mark.parametrize("stop_first", [True, False])
    def test_packed_equals_unpacked(self, case, stop_first):
        factory, inputs, task, bounds = RMW_CASES[case]
        packed = explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, packed=True, **bounds,
        )
        unpacked = explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, packed=False, **bounds,
        )
        assert_reports_identical(packed, unpacked)

    @pytest.mark.parametrize("case", range(len(RMW_CASES)))
    @pytest.mark.parametrize("packed", [True, False])
    def test_halves_merge_to_serial(self, case, packed):
        factory, inputs, task, bounds = RMW_CASES[case]
        depth = 2
        serial = explore_protocol(
            factory(), inputs, task, prefix_depth=depth, packed=packed,
            **bounds,
        )
        protocol = factory()
        prefixes = schedule_prefixes(protocol, inputs, depth)
        half = len(prefixes) // 2
        left = explore_prefix_range(
            protocol, inputs, task, prefixes, 0, half, packed=packed,
            **bounds,
        )
        right = explore_prefix_range(
            protocol, inputs, task, prefixes, half, len(prefixes),
            packed=packed, **bounds,
        )
        assert_reports_identical(left.merge(right), serial)

    @pytest.mark.parametrize("case", range(len(RMW_CASES)))
    def test_shared_context_across_shards_is_pure(self, case):
        """The RMW successor cache must not leak state between units."""
        factory, inputs, task, bounds = RMW_CASES[case]
        protocol = factory()
        serial = explore_protocol(
            protocol, inputs, task, prefix_depth=2, **bounds,
        )
        ctx = ExplorationContext(protocol, inputs, task)
        prefixes = schedule_prefixes(protocol, inputs, 2, context=ctx)
        merged = None
        for unit in range(len(prefixes)):
            shard = explore_prefix_range(
                protocol, inputs, task, prefixes, unit, unit + 1,
                context=ctx, **bounds,
            )
            merged = shard if merged is None else merged.merge(shard)
        assert_reports_identical(merged, serial)


class TestPrefixDecompositionDifferential:
    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("depth", [0, 1, 2, 4])
    def test_prefixes_identical(self, case, depth):
        factory, inputs, _task, _bounds = CASES[case]
        assert schedule_prefixes(factory(), inputs, depth) == (
            reference_schedule_prefixes(factory(), inputs, depth)
        )
