"""Symmetry counterexamples replay through the real runtime.

Property (the tentpole's witness contract, satellite of ISSUE 7): for
every corpus protocol where the *unreduced* explorer finds a violation —
including the DiamondTrap depth-bound gadget — symmetry-reduced
exploration also finds one, and its counterexample schedule, replayed
through :mod:`repro.runtime.replay` on a real system (processes built
with :func:`~repro.protocols.base.protocol_body`, decisions read back
from trace annotations), reproduces a task violation.  The explorer and
the runtime agree step-for-step on schedule semantics, so explorer
schedules are runtime schedules verbatim.
"""

import pytest

from repro.analysis import explore_protocol
from repro.memory.snapshot import AtomicSnapshot
from repro.protocols import (
    AnonymousSweepConsensus,
    KSetAgreementTask,
    RacingConsensus,
    TruncatedProtocol,
)
from repro.protocols.base import decided_values, protocol_body
from repro.runtime.replay import replay_run
from repro.runtime.system import System
from tests.analysis.test_explore import DiamondTrap, LastConfigBad

CASES = [
    (lambda: TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=20)),
    (lambda: RacingConsensus(2), [0, 1],
     KSetAgreementTask(1), dict(max_configs=50_000, max_steps=14)),
    (lambda: DiamondTrap(), [0, 1],
     KSetAgreementTask(1), dict(max_configs=200_000, max_steps=3)),
    (lambda: LastConfigBad(), [0],
     KSetAgreementTask(1), dict(max_configs=2, max_steps=None)),
    (lambda: AnonymousSweepConsensus(2, m=2, decision_round=1), [0, 1],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=12)),
    (lambda: AnonymousSweepConsensus(3, m=2, decision_round=1), [0, 1, 1],
     KSetAgreementTask(1), dict(max_configs=300_000, max_steps=12)),
]


def _runtime_violations(protocol, inputs, task, schedule):
    """Replay a schedule on a real system; return the task verdict."""

    def build():
        system = System()
        snapshot = AtomicSnapshot("M", components=protocol.m)
        for index, value in enumerate(inputs):
            system.add_process(protocol_body(protocol, index, value, snapshot))
        return system

    system, _result = replay_run(build, list(schedule))
    return task.check(list(inputs), decided_values(system))


@pytest.mark.parametrize("case", range(len(CASES)))
def test_reduced_counterexample_replays_in_runtime(case):
    factory, inputs, task, bounds = CASES[case]
    protocol = factory()
    unreduced = explore_protocol(protocol, inputs, task, **bounds)
    reduced = explore_protocol(
        factory(), inputs, task, symmetry=True, **bounds
    )
    assert reduced.safe == unreduced.safe
    if unreduced.safe:
        pytest.skip("corpus case is safe within the bounds")
    assert reduced.counterexample is not None
    assert _runtime_violations(
        protocol, inputs, task, reduced.counterexample
    )


@pytest.mark.parametrize("case", range(len(CASES)))
def test_unreduced_counterexample_replays_in_runtime(case):
    """Baseline for the property above: unreduced counterexamples
    replay too (the schedule semantics really are shared)."""
    factory, inputs, task, bounds = CASES[case]
    protocol = factory()
    report = explore_protocol(protocol, inputs, task, **bounds)
    if report.safe:
        pytest.skip("corpus case is safe within the bounds")
    assert _runtime_violations(
        protocol, inputs, task, report.counterexample
    )
