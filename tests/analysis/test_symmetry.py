"""Symmetry-reduced and packed exploration: contracts and reduction.

Three layers of guarantees:

* the packed configuration encoding is pure key encoding —
  ``packed=False`` and ``packed=True`` produce byte-identical reports
  (the frozen reference suite already pins the packed default against
  the pre-optimization explorer; here the unpacked path is pinned
  against the packed one across the same corpus, serially and sharded);
* symmetry reduction keeps the differential contract: identical reports
  for identity-group protocols (the reduction must be inert), and for
  full-symmetric protocols the same safe/unsafe verdict with a
  counterexample that replays — through the unreduced explorer — to a
  violating configuration;
* the reduction is *superlinear* on anonymous protocols: the visited
  configuration ratio unreduced/reduced grows with n (toward n!), it is
  not a constant factor.
"""

import pytest

from repro.analysis import (
    ExplorationContext,
    explore_prefix_range,
    explore_protocol,
    schedule_prefixes,
)
from repro.errors import ValidationError
from repro.protocols import (
    AnonymousSweepConsensus,
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    TruncatedProtocol,
)
from repro.protocols.base import SYMMETRY_FULL, SYMMETRY_IDENTITY, Protocol
from tests.analysis.test_explore import DiamondTrap, LastConfigBad

CASES = [
    (lambda: TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=20)),
    (lambda: RacingConsensus(2), [0, 1],
     KSetAgreementTask(1), dict(max_configs=50_000, max_steps=14)),
    (lambda: MinSeen(2), [0, 1],
     KSetAgreementTask(2), dict(max_configs=100_000, max_steps=None)),
    (lambda: DiamondTrap(), [0, 1],
     KSetAgreementTask(1), dict(max_configs=200_000, max_steps=3)),
    (lambda: DiamondTrap(), [0, 1],
     KSetAgreementTask(1), dict(max_configs=200_000, max_steps=2)),
    (lambda: LastConfigBad(), [0],
     KSetAgreementTask(1), dict(max_configs=2, max_steps=None)),
    (lambda: AnonymousSweepConsensus(2, m=2), [0, 1],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=10)),
    (lambda: AnonymousSweepConsensus(2, m=2, decision_round=1), [0, 1],
     KSetAgreementTask(1), dict(max_configs=100_000, max_steps=12)),
]


def assert_reports_identical(a, b):
    assert a == b
    assert repr(a) == repr(b)
    assert a.summary() == b.summary()


class TestSymmetryDeclarations:
    def test_default_group_is_identity(self):
        assert Protocol().symmetry() == SYMMETRY_IDENTITY
        assert RacingConsensus(2).symmetry() == SYMMETRY_IDENTITY

    def test_anonymous_declares_full(self):
        assert AnonymousSweepConsensus(3).symmetry() == SYMMETRY_FULL

    def test_symmetry_requires_packed(self):
        with pytest.raises(ValidationError):
            ExplorationContext(
                RacingConsensus(2), [0, 1], KSetAgreementTask(1),
                packed=False, symmetry=True,
            )

    def test_unknown_group_rejected(self):
        class Weird(RacingConsensus):
            def symmetry(self):
                return "dihedral"

        with pytest.raises(ValidationError):
            ExplorationContext(
                Weird(2), [0, 1], KSetAgreementTask(1), symmetry=True
            )

    def test_identity_group_never_activates_reduction(self):
        ctx = ExplorationContext(
            RacingConsensus(2), [0, 1], KSetAgreementTask(1), symmetry=True
        )
        assert ctx.symmetry_requested and not ctx.symmetry

    def test_context_mode_mismatch_rejected(self):
        protocol, inputs, task = RacingConsensus(2), [0, 1], KSetAgreementTask(1)
        ctx = ExplorationContext(protocol, inputs, task)
        prefixes = schedule_prefixes(protocol, inputs, 1, context=ctx)
        with pytest.raises(ValidationError):
            explore_prefix_range(
                protocol, inputs, task, prefixes, 0, len(prefixes),
                context=ctx, packed=False,
            )


class TestCanonicalKey:
    def test_permuted_configurations_share_a_key(self):
        protocol = AnonymousSweepConsensus(2, m=2)
        ctx = ExplorationContext(
            protocol, [0, 1], KSetAgreementTask(1), symmetry=True
        )
        # Intern the exact process permutation of a reachable
        # configuration: a distinct node (different states tuple) that
        # must share its canonical key.
        a = ctx.child(ctx.child(ctx.root, 0), 1)
        states = ctx.states_of(a)
        b = ctx._intern_scan((states[1], states[0]), ctx.memory_of(a))
        assert states != ctx.states_of(b)
        assert a is not b
        assert ctx.canon_key(a) == ctx.canon_key(b)

    def test_distinct_memory_distinct_key(self):
        protocol = AnonymousSweepConsensus(2, m=2)
        ctx = ExplorationContext(
            protocol, [0, 1], KSetAgreementTask(1), symmetry=True
        )
        fresh = ctx.root
        # scan then write for process 0 changes memory; its canonical
        # key must differ from the untouched root's.
        written = ctx.child(ctx.child(fresh, 0), 0)
        assert ctx.canon_key(written) != ctx.canon_key(fresh)


class TestPackedDifferential:
    """packed=False vs packed=True: byte-identical, serial and sharded."""

    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("stop_first", [True, False])
    def test_serial(self, case, stop_first):
        factory, inputs, task, bounds = CASES[case]
        packed = explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, **bounds,
        )
        unpacked = explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, packed=False, **bounds,
        )
        assert_reports_identical(packed, unpacked)

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_sharded_halves(self, case):
        factory, inputs, task, bounds = CASES[case]
        protocol = factory()
        depth = 2 if bounds["max_steps"] is None else min(
            2, bounds["max_steps"]
        )
        prefixes = schedule_prefixes(protocol, inputs, depth)
        mid = len(prefixes) // 2
        merged = {}
        for packed in (True, False):
            left = explore_prefix_range(
                protocol, inputs, task, prefixes, 0, mid,
                packed=packed, **bounds,
            )
            right = explore_prefix_range(
                protocol, inputs, task, prefixes, mid, len(prefixes),
                packed=packed, **bounds,
            )
            merged[packed] = left.merge(right)
        assert_reports_identical(merged[True], merged[False])


class TestSymmetryDifferential:
    """Reduced vs unreduced across the corpus (the tentpole contract)."""

    @pytest.mark.parametrize("case", range(len(CASES)))
    @pytest.mark.parametrize("stop_first", [True, False])
    def test_contract(self, case, stop_first):
        factory, inputs, task, bounds = CASES[case]
        protocol = factory()
        unreduced = explore_protocol(
            protocol, inputs, task,
            stop_at_first_violation=stop_first, **bounds,
        )
        reduced = explore_protocol(
            factory(), inputs, task,
            stop_at_first_violation=stop_first, symmetry=True, **bounds,
        )
        if protocol.symmetry() == SYMMETRY_IDENTITY:
            # Identity group: the reduction must be inert.
            assert_reports_identical(unreduced, reduced)
            return
        assert reduced.safe == unreduced.safe
        assert reduced.configurations <= unreduced.configurations
        if not unreduced.safe:
            assert reduced.violations
            assert reduced.counterexample is not None
            # The reduced counterexample is a genuine schedule: it must
            # replay to a violating configuration through an unreduced
            # context.
            ctx = ExplorationContext(protocol, inputs, task)
            final = ctx.replay(reduced.counterexample)
            assert ctx.check(final)

    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_serial_equals_sharded(self, case):
        """Serial == sharded must hold in symmetry mode too."""
        factory, inputs, task, bounds = CASES[case]
        protocol = factory()
        depth = 2 if bounds["max_steps"] is None else min(
            2, bounds["max_steps"]
        )
        prefixes = schedule_prefixes(protocol, inputs, depth)
        serial = explore_prefix_range(
            protocol, inputs, task, prefixes, 0, len(prefixes),
            symmetry=True, **bounds,
        )
        mid = len(prefixes) // 2
        left = explore_prefix_range(
            factory(), inputs, task, prefixes, 0, mid,
            symmetry=True, **bounds,
        )
        right = explore_prefix_range(
            factory(), inputs, task, prefixes, mid, len(prefixes),
            symmetry=True, **bounds,
        )
        assert_reports_identical(serial, left.merge(right))


class TestSuperlinearReduction:
    def test_ratio_grows_with_n(self):
        """The visited-configuration reduction grows with n — it is a
        state-space collapse (toward n!), not a constant factor."""
        ratios = []
        for n in (2, 3):
            protocol = AnonymousSweepConsensus(n, m=2)
            inputs = [0] + [1] * (n - 1)
            task = KSetAgreementTask(1)
            bounds = dict(max_configs=10**7, max_steps=9)
            full = explore_protocol(protocol, inputs, task, **bounds)
            reduced = explore_protocol(
                protocol, inputs, task, symmetry=True, **bounds
            )
            # Budget is effectively unbounded; both runs stop at the
            # same depth horizon, so the comparison is apples-to-apples.
            assert full.safe == reduced.safe
            ratios.append(full.configurations / reduced.configurations)
        assert ratios[1] > ratios[0] > 1.0
        # n=3 collapses identical-state process pairs aggressively:
        # well beyond any fixed small constant.
        assert ratios[1] > 2.0
