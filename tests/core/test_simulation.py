"""Tests for the revisionist simulation harness (Section 4 / Appendix C)."""

import pytest

from repro.core import run_simulation
from repro.core.simulation import (
    SIM_BLOCK_TAG,
    SIM_DECISION_TAG,
    _BlockRecord,
    _find_anchor,
    build_setup,
)
from repro.errors import ValidationError
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
)
from repro.runtime import RandomScheduler, RoundRobinScheduler


class TestSetup:
    def test_partition_shapes(self):
        setup = build_setup(RotatingWrites(7, 3), k=2, x=1, inputs=[0, 1, 2])
        assert setup.covering_ranks == (0, 1)
        assert setup.direct_ranks == (2,)
        assert setup.process_map[0] == (0, 1, 2)
        assert setup.process_map[1] == (3, 4, 5)
        assert setup.process_map[2] == (6,)
        assert setup.simulated_count == 7

    def test_x_equals_k_single_covering(self):
        setup = build_setup(RotatingWrites(5, 3), k=2, x=2, inputs=[0, 1, 2])
        assert setup.covering_ranks == (0,)
        assert setup.direct_ranks == (1, 2)
        assert setup.simulated_count == 3 + 2

    def test_covering_ranks_below_direct_ranks(self):
        """The paper's requirement: covering simulators get the lower
        identifiers, so their Block-Updates take precedence."""
        setup = build_setup(RotatingWrites(9, 4), k=2, x=1, inputs=[0, 1, 2])
        assert max(setup.covering_ranks) < min(setup.direct_ranks)

    def test_input_count_checked(self):
        with pytest.raises(ValidationError):
            build_setup(RotatingWrites(7, 3), k=2, x=1, inputs=[0, 1])

    def test_protocol_too_small_rejected(self):
        with pytest.raises(ValidationError):
            build_setup(RotatingWrites(5, 3), k=2, x=1, inputs=[0, 1, 2])

    def test_parameter_ranges(self):
        with pytest.raises(ValidationError):
            build_setup(RotatingWrites(7, 3), k=0, x=1, inputs=[0])
        with pytest.raises(ValidationError):
            build_setup(RotatingWrites(7, 3), k=2, x=3, inputs=[0, 1, 2])


class TestFindAnchor:
    def test_no_log_no_anchor(self):
        assert _find_anchor([], [0]) is None

    def test_finds_matching_atomic(self):
        log = [_BlockRecord((0,), True, view=("v",))]
        assert _find_anchor(log, [0]) is log[0]

    def test_yield_records_do_not_anchor(self):
        log = [_BlockRecord((0,), False)]
        assert _find_anchor(log, [0]) is None

    def test_set_equality_not_order(self):
        log = [_BlockRecord((2, 0), True, view=("a", None, "b"))]
        assert _find_anchor(log, [0, 2]) is log[0]

    def test_wider_block_after_disqualifies(self):
        log = [
            _BlockRecord((0,), True, view=("v", None)),
            _BlockRecord((0, 1), True, view=("v", "w")),
        ]
        assert _find_anchor(log, [0]) is None

    def test_same_width_after_does_not_disqualify(self):
        log = [
            _BlockRecord((0,), True, view=("v", None)),
            _BlockRecord((1,), True, view=(None, "w")),
        ]
        assert _find_anchor(log, [0]) is log[0]

    def test_takes_last_matching(self):
        log = [
            _BlockRecord((0,), True, view=("old",)),
            _BlockRecord((0,), True, view=("new",)),
        ]
        assert _find_anchor(log, [0]).view == ("new",)


class TestPositiveRuns:
    """The simulation fed correct (weak-task) protocols: everything
    terminates wait-free, with validity."""

    @pytest.mark.parametrize("seed", range(8))
    def test_rotating_writes_all_simulators_decide(self, seed):
        protocol = RotatingWrites(7, 3, rounds=4)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[5, 2, 8],
            scheduler=RandomScheduler(seed), max_steps=400_000,
        )
        assert outcome.result.completed
        assert outcome.all_decided

    @pytest.mark.parametrize("seed", range(8))
    def test_validity_inherited(self, seed):
        """Decided values are simulator inputs (Lemma 31's validity)."""
        inputs = [5, 2, 8]
        protocol = RotatingWrites(7, 3, rounds=4)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=inputs,
            scheduler=RandomScheduler(seed), max_steps=400_000,
        )
        for value in outcome.decisions.values():
            assert value in inputs

    def test_min_seen_truncated(self):
        protocol = TruncatedProtocol(MinSeen(5, rounds=2), 2)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[3, 1, 2],
            scheduler=RoundRobinScheduler(), max_steps=200_000,
        )
        assert outcome.all_decided
        for value in outcome.decisions.values():
            assert value in (3, 1, 2)

    @pytest.mark.parametrize("x", [1, 2, 3])
    def test_varying_x(self, x):
        k = 3
        m = 2
        n = (k + 1 - x) * m + x
        protocol = RotatingWrites(n, m, rounds=3)
        outcome = run_simulation(
            protocol, k=k, x=x, inputs=list(range(k + 1)),
            scheduler=RandomScheduler(x), max_steps=400_000,
        )
        assert outcome.result.completed
        assert outcome.all_decided

    @pytest.mark.parametrize("seed", range(5))
    def test_revisions_happen(self, seed):
        protocol = RotatingWrites(7, 3, rounds=6)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[1, 2, 3],
            scheduler=RandomScheduler(seed), max_steps=400_000,
        )
        assert outcome.revision_count() > 0
        assert outcome.block_update_count() > 0


class TestFalsifier:
    """Theorem 3 run as an experiment: a protocol below the bound must
    expose a violation through the simulation."""

    @pytest.mark.parametrize("seed", range(10))
    def test_consensus_on_one_register_breaks(self, seed):
        broken = TruncatedProtocol(RacingConsensus(3), 1)
        outcome = run_simulation(
            broken, k=1, x=1, inputs=[0, 1],
            scheduler=RandomScheduler(seed), max_steps=200_000,
        )
        violations = outcome.task_violations(KSetAgreementTask(1))
        assert violations or outcome.result.diverged
        # Empirically, the violation is decisive: both values get decided.
        assert violations

    def test_full_cover_terminations_occur(self):
        broken = TruncatedProtocol(RacingConsensus(3), 1)
        outcome = run_simulation(
            broken, k=1, x=1, inputs=[0, 1],
            scheduler=RandomScheduler(0), max_steps=200_000,
        )
        vias = {
            event.payload["via"]
            for event in outcome.system.trace.annotations(SIM_DECISION_TAG)
        }
        assert "full_cover" in vias

    @pytest.mark.parametrize("seed", range(6))
    def test_k2_below_bound(self, seed):
        """n=5, k=2, x=1: bound is 3, so m=1 is far below — the aliasing
        collapses everything to one register and the simulators disagree."""
        broken = TruncatedProtocol(RacingConsensus(5), 1)
        outcome = run_simulation(
            broken, k=2, x=1, inputs=[0, 1, 2],
            scheduler=RandomScheduler(seed), max_steps=300_000,
        )
        violations = outcome.task_violations(KSetAgreementTask(2))
        assert violations or outcome.result.diverged


class TestTraceArtifacts:
    def test_block_update_annotations(self):
        protocol = RotatingWrites(7, 3, rounds=3)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[1, 2, 3],
            scheduler=RandomScheduler(3), max_steps=400_000,
        )
        blocks = outcome.system.trace.annotations(SIM_BLOCK_TAG)
        assert blocks
        for event in blocks:
            assert event.payload["rank"] in (0, 1)

    def test_decisions_annotated_once_per_rank(self):
        protocol = RotatingWrites(7, 3, rounds=3)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[1, 2, 3],
            scheduler=RandomScheduler(5), max_steps=400_000,
        )
        ranks = [
            event.payload["rank"]
            for event in outcome.system.trace.annotations(SIM_DECISION_TAG)
        ]
        assert sorted(ranks) == sorted(set(ranks))

    def test_space_accounting(self):
        """The augmented object reports H (k+1 components) plus touched
        helping cells."""
        protocol = RotatingWrites(7, 3, rounds=3)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[1, 2, 3],
            scheduler=RandomScheduler(7), max_steps=400_000,
        )
        assert outcome.aug.register_count() >= 3
