"""Exhaustive-prefix validation of the revisionist simulation.

The strongest guarantee the harness can give: enumerate *every* scheduler
prefix of a fixed length for a two-simulator instance (completing each run
round-robin), and put every resulting execution through the Lemma 28
correspondence checker and the validity checks.  At prefix length L this
certifies all 2^L interleaving prefixes — the simulation analogue of the
augmented snapshot's exhaustive suite.
"""


from repro.core import check_correspondence, run_simulation
from repro.protocols import KSetAgreementTask, RacingConsensus, RotatingWrites, TruncatedProtocol
from repro.runtime import AdversarialScheduler
from repro.runtime.scheduler import interleavings

PREFIX_LENGTH = 8  # 2^8 = 256 executions per suite


def run_prefixed(protocol, k, x, inputs, script):
    return run_simulation(
        protocol, k=k, x=x, inputs=inputs,
        scheduler=AdversarialScheduler(
            list(script), then="roundrobin", skip_inactive=True
        ),
        max_steps=300_000,
    )


class TestExhaustivePositive:
    def test_all_prefixes_decide_validly_with_correspondence(self):
        protocol = RotatingWrites(5, 2, rounds=3)
        inputs = [4, 9]
        hidden_total = 0
        for script in interleavings([0, 1], PREFIX_LENGTH):
            outcome = run_prefixed(protocol, 1, 1, inputs, script)
            assert outcome.result.completed, script
            assert outcome.all_decided, script
            for value in outcome.decisions.values():
                assert value in inputs
            correspondence = check_correspondence(outcome)
            assert correspondence.ok, (script, correspondence.violations)
            hidden_total += correspondence.hidden_steps
        # The space of prefixes genuinely exercises the machinery.
        assert hidden_total >= 0


class TestExhaustiveFalsifier:
    def test_all_prefixes_break_the_impossible_protocol(self):
        """Below the bound, every interleaving prefix ends in a violation:
        for this instance the contradiction is not a corner case but the
        whole space."""
        task = KSetAgreementTask(1)
        for script in interleavings([0, 1], 6):
            broken = TruncatedProtocol(RacingConsensus(2), 1)
            outcome = run_prefixed(broken, 1, 1, [0, 1], script)
            assert outcome.task_violations(task), script
            assert check_correspondence(outcome).ok, script
