"""Tests for the BG simulation and its safe-agreement substrate."""

import pytest

from repro.core.bg import (
    AGREED,
    EMPTY,
    PENDING,
    BGSimulation,
    SafeAgreement,
    run_bg_simulation,
)
from repro.errors import ModelError, ValidationError
from repro.protocols import ImmediateDecide, MinSeen, RotatingWrites
from repro.runtime import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    System,
)


class TestSafeAgreement:
    def run_proposers(self, values, scheduler=None, crash_script=None):
        sa = SafeAgreement("SA", pids=list(range(len(values))))
        system = System()

        def proposer(value):
            def body(proc):
                yield from sa.propose(proc.pid, value)
                status, agreed = yield from sa.resolve(proc.pid)
                return status, agreed

            return body

        for value in values:
            system.add_process(proposer(value))
        result = system.run(
            scheduler or RoundRobinScheduler(), max_steps=10_000
        )
        return sa, system, result

    def test_solo_proposer_agrees_on_own_value(self):
        _sa, _system, result = self.run_proposers(["only"])
        assert result.outputs[0] == (AGREED, "only")

    @pytest.mark.parametrize("seed", range(15))
    def test_agreement_and_validity(self, seed):
        values = ["a", "b", "c"]
        _sa, _system, result = self.run_proposers(
            values, RandomScheduler(seed)
        )
        outcomes = {
            agreed for status, agreed in result.outputs.values()
            if status == AGREED
        }
        assert len(outcomes) == 1
        assert outcomes <= set(values)

    def test_resolution_is_stable(self):
        """Once AGREED, later resolves return the same value."""
        sa = SafeAgreement("SA", pids=[0, 1])
        system = System()
        log = []

        def body(proc):
            yield from sa.propose(proc.pid, f"v{proc.pid}")
            for _ in range(3):
                log.append((yield from sa.resolve(proc.pid)))

        for _ in range(2):
            system.add_process(body)
        system.run(RandomScheduler(3), max_steps=10_000)
        agreed = {value for status, value in log if status == AGREED}
        assert len(agreed) == 1

    def test_empty_before_any_proposal(self):
        sa = SafeAgreement("SA", pids=[0, 1])
        system = System()

        def body(proc):
            return (yield from sa.resolve(proc.pid))

        system.add_process(body)
        result = system.run(RoundRobinScheduler())
        assert result.outputs[0] == (EMPTY, None)

    def test_pending_while_rival_in_window(self):
        """A proposer crashed between its level-1 and level-2 writes leaves
        the object permanently PENDING — the BG blocking behaviour."""
        sa = SafeAgreement("SA", pids=[0, 1])
        system = System()

        def victim(proc):
            yield from sa.propose(proc.pid, "dead")

        def observer(proc):
            return (yield from sa.resolve(proc.pid))

        system.add_process(victim, pid=0)
        system.add_process(observer, pid=1)
        # Victim takes its level-1 write, then crashes before the scan.
        script = [0, ("crash", 0), 1]
        result = system.run(AdversarialScheduler(script), max_steps=1_000)
        assert result.outputs[1] == (PENDING, None)

    def test_double_propose_rejected(self):
        sa = SafeAgreement("SA", pids=[0])
        system = System()

        def body(proc):
            yield from sa.propose(proc.pid, "x")
            yield from sa.propose(proc.pid, "y")

        system.add_process(body)
        with pytest.raises(ModelError):
            system.run(RoundRobinScheduler(), max_steps=1_000)

    def test_unknown_proposer_rejected(self):
        sa = SafeAgreement("SA", pids=[0])
        with pytest.raises(ModelError):
            list(sa.propose(5, "v"))


class TestBGSimulation:
    @pytest.mark.parametrize("seed", range(10))
    def test_all_simulated_processes_complete(self, seed):
        inputs = [5, 2, 8, 1]
        outcome = run_bg_simulation(
            RotatingWrites(4, 3, rounds=3), inputs, simulators=3,
            scheduler=RandomScheduler(seed), max_steps=400_000,
        )
        assert outcome.result.completed
        assert set(outcome.simulated_outputs) == {0, 1, 2, 3}
        for value in outcome.simulated_outputs.values():
            assert value in inputs

    @pytest.mark.parametrize("seed", range(10))
    def test_simulators_agree_per_process(self, seed):
        """All simulators derive identical decisions for each simulated
        process (scan outcomes are agreed, updates deterministic)."""
        inputs = [5, 2, 8]
        simulation = BGSimulation(
            MinSeen(3, rounds=2), inputs, simulator_pids=[0, 1]
        )
        system = System()
        announce = {}
        for pid in (0, 1):
            system.add_process(simulation.simulator_body(announce), pid=pid)
        result = system.run(RandomScheduler(seed), max_steps=400_000)
        assert result.completed
        per_simulator = [
            system.processes[pid].output["outputs"] for pid in (0, 1)
        ]
        assert per_simulator[0] == per_simulator[1]

    def test_single_simulator_degenerates_to_sequential(self):
        inputs = ["x", "y"]
        outcome = run_bg_simulation(
            ImmediateDecide(2), inputs, simulators=1,
            scheduler=RoundRobinScheduler(), max_steps=50_000,
        )
        assert outcome.simulated_outputs == {0: "x", 1: "y"}

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValidationError):
            run_bg_simulation(
                ImmediateDecide(1), [1, 2], simulators=2,
                scheduler=RoundRobinScheduler(),
            )


class TestBGCrashTolerance:
    """The defining property: f crashed simulators block at most f
    simulated processes; the rest finish."""

    class CrashAfterScheduler(RandomScheduler):
        def __init__(self, seed, victim, after):
            super().__init__(seed)
            self.victim, self.after = victim, after
            self._count = 0
            self.pending_crashes = []

        def reset(self):
            super().reset()
            self._count = 0
            self.pending_crashes = []

        def next_pid(self, active):
            pid = super().next_pid(active)
            if pid == self.victim:
                self._count += 1
                if self._count > self.after:
                    self.pending_crashes.append(self.victim)
                    others = [p for p in active if p != self.victim]
                    if others:
                        return super().next_pid(others)
            return pid

    @pytest.mark.parametrize("after", [1, 2, 4, 7])
    def test_one_crash_blocks_at_most_one_process(self, after):
        inputs = [5, 2, 8, 1]
        scheduler = self.CrashAfterScheduler(seed=3, victim=0, after=after)
        outcome = run_bg_simulation(
            RotatingWrites(4, 3, rounds=3), inputs, simulators=3,
            scheduler=scheduler, max_steps=400_000, give_up_after=60,
        )
        assert outcome.result.completed
        # At least n - 1 simulated processes decided.
        assert outcome.completed_processes >= len(inputs) - 1
        for pid, blocked in outcome.blocked.items():
            assert len(blocked) <= 1

    def test_crash_free_run_blocks_nothing(self):
        outcome = run_bg_simulation(
            RotatingWrites(3, 2, rounds=2), [7, 8, 9], simulators=2,
            scheduler=RandomScheduler(5), max_steps=400_000,
            give_up_after=60,
        )
        assert outcome.completed_processes == 3
        assert all(not blocked for blocked in outcome.blocked.values())
