"""The liveness side of the falsifier: protocols that are not actually
x-obstruction-free get caught by the simulation's solo budgets.

Theorem 3's contradiction has two observable shapes.  Safety violations
(tested in test_simulation.py) are one; the other is a protocol whose solo
runs never decide — the simulation's local (hidden or terminating) solo
executions then exceed their budget and raise DivergenceError, the finite
signature of "Π is not x-obstruction-free"."""

import pytest

from repro.core import run_simulation
from repro.errors import DivergenceError
from repro.protocols.base import SCAN, UPDATE, Protocol
from repro.runtime import RandomScheduler, RoundRobinScheduler


class NeverDecides(Protocol):
    """Alternates update/scan forever: trivially safe, never live."""

    def __init__(self, n: int, m: int):
        self.n = n
        self.m = m
        self.name = f"never-decides(n={n}, m={m})"

    def initial_state(self, index, value):
        """Poised to write its counter to component index % m."""
        return ("update", index, 0)

    def poised(self, state):
        """update -> scan -> update -> ... without end."""
        phase, index, count = state
        if phase == "update":
            return (UPDATE, (index % self.m, count))
        return (SCAN, None)

    def advance(self, state, observation=None):
        """Bump the counter on each scan."""
        phase, index, count = state
        if phase == "update":
            return ("scan", index, count)
        return ("update", index, count + 1)


class TestLivenessFalsifier:
    def test_full_cover_solo_run_diverges(self):
        """With m=1 the covering simulator immediately attempts the
        terminating solo run, which cannot decide: DivergenceError."""
        protocol = NeverDecides(2, 1)
        with pytest.raises(DivergenceError):
            run_simulation(
                protocol, k=1, x=1, inputs=[0, 1],
                scheduler=RoundRobinScheduler(),
                max_steps=50_000, solo_budget=500,
            )

    def test_hidden_revision_diverges(self):
        """With m>=2 the divergence surfaces either in a revision's hidden
        solo run or in the final full-cover run — both budgeted."""
        protocol = NeverDecides(5, 2)
        with pytest.raises(DivergenceError):
            run_simulation(
                protocol, k=1, x=1, inputs=[0, 1],
                scheduler=RoundRobinScheduler(),
                max_steps=200_000, solo_budget=500,
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_divergence_is_schedule_independent(self, seed):
        protocol = NeverDecides(2, 1)
        with pytest.raises(DivergenceError):
            run_simulation(
                protocol, k=1, x=1, inputs=[0, 1],
                scheduler=RandomScheduler(seed),
                max_steps=50_000, solo_budget=500,
            )

    def test_safe_protocols_never_trip_the_budget(self):
        """Control: a wait-free protocol with the same shape decides long
        before any reasonable solo budget."""
        from repro.protocols import RotatingWrites

        outcome = run_simulation(
            RotatingWrites(3, 1, rounds=3), k=1, x=1, inputs=[4, 9],
            scheduler=RoundRobinScheduler(),
            max_steps=50_000, solo_budget=500,
        )
        assert outcome.all_decided
