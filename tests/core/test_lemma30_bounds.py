"""Quantitative checks of the Lemma 30/33 counting bounds.

Lemma 30 bounds a covering simulator's Block-Updates between stabilization
points: at most C(m,1)·C(m,2)···C(m,m-1) before it constructs a full-width
block and decides.  These tests verify the measured counts respect the
bounds (with the bound evaluated exactly), and that Scans — which are only
non-blocking — retry precisely as often as rival Block-Updates land
(Lemma 23's accounting).
"""

import math

import pytest

from repro.augmented import AugmentedSnapshot
from repro.core import check_correspondence, run_simulation
from repro.core.simulation import SIM_BLOCK_TAG
from repro.protocols import RotatingWrites
from repro.runtime import RandomScheduler, System


def f_of_m(m: int) -> int:
    """The Lemma 30/33 product: C(m,1) * C(m,2) * ... * C(m,m-1)."""
    product = 1
    for r in range(1, m):
        product *= math.comb(m, r)
    return max(product, 1)


class TestFOfM:
    def test_values(self):
        assert f_of_m(1) == 1
        assert f_of_m(2) == 2
        assert f_of_m(3) == 9
        assert f_of_m(4) == 96

    def test_monotone(self):
        values = [f_of_m(m) for m in range(1, 7)]
        assert values == sorted(values)


class TestBlockUpdateCounts:
    @pytest.mark.parametrize("m", [2, 3])
    @pytest.mark.parametrize("seed", range(5))
    def test_per_simulator_block_updates_bounded(self, m, seed):
        """Each covering simulator's Block-Update count stays within a
        small multiple of f(m) per stabilization era — with only k+1-x = 2
        covering simulators and wait-free workloads, a few eras suffice."""
        n = 2 * m + 1
        protocol = RotatingWrites(n, m, rounds=2 * m + 2)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[1, 2, 3],
            scheduler=RandomScheduler(seed), max_steps=800_000,
        )
        assert outcome.result.completed
        per_rank = {}
        for event in outcome.system.trace.annotations(SIM_BLOCK_TAG):
            rank = event.payload["rank"]
            per_rank[rank] = per_rank.get(rank, 0) + 1
        generous = (m + 1) * f_of_m(m) * 4
        for rank, count in per_rank.items():
            assert count <= generous, (rank, count, generous)

    @pytest.mark.parametrize("x", [1, 2, 3])
    def test_correspondence_across_x(self, x):
        """Lemma 28 holds for every obstruction parameter, not just x=1."""
        k, m = 3, 2
        n = (k + 1 - x) * m + x
        protocol = RotatingWrites(n, m, rounds=4)
        outcome = run_simulation(
            protocol, k=k, x=x, inputs=list(range(k + 1)),
            scheduler=RandomScheduler(x * 7), max_steps=800_000,
        )
        correspondence = check_correspondence(outcome)
        assert correspondence.ok, correspondence.violations


class TestLemma23ScanAccounting:
    @pytest.mark.parametrize("seed", range(8))
    def test_scan_retries_match_rival_updates(self, seed):
        """A Scan's double collect fails only when an update to H landed in
        between (Lemma 23's progress argument): total failed double
        collects are bounded by total Block-Updates."""
        system = System()
        aug = AugmentedSnapshot("M", components=2, pids=[0, 1, 2])

        def body(proc):
            for r in range(3):
                yield from aug.block_update(proc.pid, [r % 2], [proc.pid])
                yield from aug.scan(proc.pid)

        for _ in range(3):
            system.add_process(body)
        result = system.run(RandomScheduler(seed), max_steps=200_000)
        assert result.completed

        h_scans = sum(
            1
            for event in system.trace.steps()
            if event.obj_name == aug.H.name and event.op == "scan"
        )
        h_updates = sum(
            1
            for event in system.trace.steps()
            if event.obj_name == aug.H.name and event.op == "update"
        )
        scans = 9  # 3 procs x 3 Scans each
        block_updates = 9
        # Each Scan costs 2 H-scans minimum; each retry adds 2 more.  Each
        # Block-Update performs exactly 3 H-scans and 1 H-update.
        retries = (h_scans - 3 * block_updates - 2 * scans) / 2
        assert retries >= 0
        assert retries <= h_updates
