"""Failure injection: the crash-tolerance claims, exercised.

The paper's progress properties are all statements about surviving
crashes: the simulation is *wait-free* (Lemma 30), so simulators must
decide no matter which other simulators stop; the augmented snapshot is
*non-blocking* with wait-free Block-Updates and Scans blockable only by
ongoing Block-Updates (Lemma 23) — a process that crashes mid-operation
must not wedge anyone.  These tests crash processes at adversarial points
and assert the survivors' progress.
"""

import pytest

from repro.augmented import AugmentedSnapshot
from repro.augmented.linearization import check_all
from repro.core import check_correspondence, run_simulation
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    RotatingWrites,
    run_protocol,
)
from repro.runtime import (
    AdversarialScheduler,
    RandomScheduler,
    System,
)


class CrashAfterScheduler(RandomScheduler):
    """Random scheduling, but crash ``victim`` after its ``after``-th step."""

    def __init__(self, seed, victim, after):
        super().__init__(seed)
        self.victim = victim
        self.after = after
        self._victim_steps = 0
        self.pending_crashes = []

    def reset(self):
        super().reset()
        self._victim_steps = 0
        self.pending_crashes = []

    def next_pid(self, active):
        pid = super().next_pid(active)
        if pid == self.victim:
            self._victim_steps += 1
            if self._victim_steps > self.after:
                self.pending_crashes.append(self.victim)
                others = [p for p in active if p != self.victim]
                if others:
                    return super().next_pid(others)
        return pid


class TestAugmentedSnapshotCrashTolerance:
    @pytest.mark.parametrize("victim,after", [(0, 2), (1, 3), (2, 1)])
    def test_crash_mid_block_update_does_not_wedge_scans(self, victim, after):
        """A process that dies inside a Block-Update stops updating H, so
        other processes' Scans stabilize and complete."""
        aug = AugmentedSnapshot("M", components=2, pids=[0, 1, 2])
        system = System()

        def body(proc):
            for round_no in range(3):
                yield from aug.block_update(
                    proc.pid, [proc.pid % 2], [f"{proc.pid}.{round_no}"]
                )
                yield from aug.scan(proc.pid)

        for _ in range(3):
            system.add_process(body)
        scheduler = CrashAfterScheduler(seed=9, victim=victim, after=after)
        result = system.run(scheduler, max_steps=100_000)
        survivors = [pid for pid in (0, 1, 2) if pid != victim]
        for pid in survivors:
            assert system.processes[pid].status == "done"
        # The Appendix B lemmas hold on the crashed execution too: the
        # analysis handles incomplete operations.
        assert check_all(system.trace, aug) == []

    def test_crash_between_update_and_help_is_harmless(self):
        """Crash exactly after the update to H (line 25), before the
        helping writes: other processes can still complete (the victim's
        Updates linearize; nobody waits on its help)."""
        aug = AugmentedSnapshot("M", components=2, pids=[0, 1])
        system = System()

        def victim(proc):
            yield from aug.block_update(proc.pid, [0, 1], ["a", "b"])

        def survivor(proc):
            view1 = yield from aug.scan(proc.pid)
            yield from aug.block_update(proc.pid, [0], ["mine"])
            view2 = yield from aug.scan(proc.pid)
            return view1, view2

        system.add_process(victim, pid=0)
        system.add_process(survivor, pid=1)
        # Victim takes scan(23) + update(25) = 2 steps, then crashes.
        script = [0, 0, ("crash", 0)] + [1] * 50
        result = system.run(AdversarialScheduler(script), max_steps=10_000)
        assert system.processes[1].status == "done"
        view1, view2 = system.processes[1].output
        # The victim's Updates linearized at its update to H, so the
        # survivor's first scan already sees them.
        assert view1 == ("a", "b")
        assert view2 == ("mine", "b")
        assert check_all(system.trace, aug) == []


class TestSimulationCrashTolerance:
    @pytest.mark.parametrize("victim", [0, 1, 2])
    def test_surviving_simulators_decide(self, victim):
        """Wait-freedom (Lemma 30): crash any one simulator mid-run; the
        other k simulators still decide."""
        protocol = RotatingWrites(7, 3, rounds=4)
        scheduler = CrashAfterScheduler(seed=21, victim=victim, after=6)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[5, 2, 8],
            scheduler=scheduler, max_steps=500_000,
        )
        assert outcome.result.completed
        survivors = {0, 1, 2} - {victim}
        assert survivors <= set(outcome.decisions)
        for rank in survivors:
            assert outcome.decisions[rank] in (5, 2, 8)

    @pytest.mark.parametrize("victim", [0, 1])
    def test_validity_preserved_under_crashes(self, victim):
        protocol = RotatingWrites(7, 3, rounds=4)
        inputs = [4, 9, 6]
        scheduler = CrashAfterScheduler(seed=33, victim=victim, after=10)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=inputs,
            scheduler=scheduler, max_steps=500_000,
        )
        for value in outcome.decisions.values():
            assert value in inputs

    def test_correspondence_holds_on_crashed_runs(self):
        """Lemma 28 with an incomplete simulator: the reconstruction covers
        whatever the crashed simulator managed to linearize."""
        protocol = RotatingWrites(7, 3, rounds=4)
        scheduler = CrashAfterScheduler(seed=17, victim=1, after=5)
        outcome = run_simulation(
            protocol, k=2, x=1, inputs=[5, 2, 8],
            scheduler=scheduler, max_steps=500_000,
        )
        correspondence = check_correspondence(outcome)
        assert correspondence.ok, correspondence.violations


class TestProtocolCrashTolerance:
    @pytest.mark.parametrize("seed", range(5))
    def test_wait_free_protocol_ignores_crashes(self, seed):
        """MinSeen is wait-free: crashing any process leaves the others'
        termination and validity untouched."""
        inputs = [7, 3, 9]
        scheduler = CrashAfterScheduler(seed=seed, victim=seed % 3, after=1)
        system, result = run_protocol(
            MinSeen(3, rounds=2), inputs, scheduler, max_steps=50_000
        )
        survivors = {0, 1, 2} - {seed % 3}
        for pid in survivors:
            assert pid in result.outputs
            assert result.outputs[pid] in inputs

    def test_consensus_survivor_decides_solo_after_crash(self):
        """Obstruction-freedom with a crash: once the other process dies,
        the survivor runs solo and must decide."""
        inputs = [0, 1]
        scheduler = CrashAfterScheduler(seed=2, victim=0, after=3)
        system, result = run_protocol(
            RacingConsensus(2), inputs, scheduler, max_steps=50_000
        )
        assert 1 in result.outputs
        assert KSetAgreementTask(1).check(inputs, result.outputs) == []
