"""Tests for the Lemma 28 correspondence checker."""

import pytest

from repro.core import check_correspondence, run_simulation
from repro.core.invariant import SimEntry, _Replayer
from repro.core.simulation import build_setup
from repro.protocols import (
    MinSeen,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
)
from repro.runtime import RandomScheduler


def run(protocol, k, x, inputs, seed, max_steps=400_000):
    return run_simulation(
        protocol, k=k, x=x, inputs=inputs,
        scheduler=RandomScheduler(seed), max_steps=max_steps,
    )


class TestReplayer:
    def test_initial_states_from_simulator_inputs(self):
        setup = build_setup(RotatingWrites(7, 3), k=2, x=1, inputs=[9, 8, 7])
        replayer = _Replayer(setup)
        # Processes 0-2 belong to rank 0 (input 9), 3-5 to rank 1 (input 8),
        # 6 to rank 2 (input 7).
        assert replayer.initial_states[0][3] == 9
        assert replayer.initial_states[3][3] == 8
        assert replayer.initial_states[6][3] == 7

    def test_replay_applies_updates(self):
        setup = build_setup(RotatingWrites(7, 3), k=2, x=1, inputs=[9, 8, 7])
        replayer = _Replayer(setup)
        entries = [SimEntry(kind="update", process=0, component=1, value="x")]
        _states, contents = replayer.replay(entries)
        assert contents == (None, "x", None)

    def test_replay_prefix(self):
        setup = build_setup(RotatingWrites(7, 3), k=2, x=1, inputs=[9, 8, 7])
        replayer = _Replayer(setup)
        entries = [
            SimEntry(kind="update", process=0, component=0, value="a"),
            SimEntry(kind="update", process=0, component=0, value="b"),
        ]
        _s, contents = replayer.replay(entries, upto=1)
        assert contents[0] == "a"


@pytest.mark.parametrize("seed", range(10))
class TestCorrespondenceHolds:
    def test_rotating_writes(self, seed):
        outcome = run(RotatingWrites(7, 3, rounds=6), 2, 1, [5, 2, 8], seed)
        correspondence = check_correspondence(outcome)
        assert correspondence.ok, correspondence.violations

    def test_min_seen(self, seed):
        outcome = run(TruncatedProtocol(MinSeen(5, rounds=3), 2), 2, 1,
                      [3, 1, 2], seed)
        correspondence = check_correspondence(outcome)
        assert correspondence.ok, correspondence.violations

    def test_falsifier_correspondence_still_holds(self, seed):
        """On a broken protocol, the *simulation* is still faithful: the
        task violation belongs to the protocol, not the machinery."""
        outcome = run(TruncatedProtocol(RacingConsensus(3), 1), 1, 1,
                      [0, 1], seed, max_steps=200_000)
        correspondence = check_correspondence(outcome)
        assert correspondence.ok, correspondence.violations


class TestHiddenSteps:
    def test_hidden_executions_are_inserted_and_verified(self):
        """Across seeds, some runs revise pasts with non-empty hidden
        executions; the checker re-derives and validates each insertion."""
        total_hidden = 0
        for seed in range(20):
            outcome = run(RotatingWrites(7, 3, rounds=8), 2, 1,
                          [5, 2, 8], seed, max_steps=500_000)
            correspondence = check_correspondence(outcome)
            assert correspondence.ok, correspondence.violations
            total_hidden += correspondence.hidden_steps
        assert total_hidden > 0

    def test_hidden_entries_marked(self):
        for seed in range(20):
            outcome = run(RotatingWrites(7, 3, rounds=8), 2, 1,
                          [5, 2, 8], seed, max_steps=500_000)
            correspondence = check_correspondence(outcome)
            hidden = [e for e in correspondence.entries if e.hidden]
            if hidden:
                # Hidden steps belong to covering simulators' processes
                # beyond the first (the revised ones).
                setup = outcome.setup
                first_processes = {
                    setup.process_map[rank][0] for rank in range(3)
                }
                for entry in hidden:
                    assert entry.process not in first_processes
                return
        pytest.skip("no hidden steps in sampled seeds")


class TestCorrespondenceCatchesLies:
    """Corrupt the recorded execution and verify the checker notices —
    guarding against a vacuously-green checker."""

    def _good_outcome(self):
        return run(RotatingWrites(7, 3, rounds=4), 2, 1, [5, 2, 8], 3)

    def test_corrupted_scan_view_detected(self):
        outcome = self._good_outcome()
        # Tamper: rewrite the view of the first completed augmented Scan.
        from repro.augmented.object import AUG_OP_TAG

        for event in outcome.system.trace.events:
            if (
                event.is_annotation()
                and event.tag == AUG_OP_TAG
                and event.payload.get("kind") == "scan"
                and event.payload.get("phase") == "end"
            ):
                tampered = dict(event.payload)
                tampered["view"] = ("bogus",) * 3
                object.__setattr__(event, "payload", tampered)
                break
        correspondence = check_correspondence(outcome)
        assert not correspondence.ok

    def test_corrupted_decision_detected(self):
        outcome = self._good_outcome()
        from repro.core.simulation import SIM_DECISION_TAG

        for event in outcome.system.trace.events:
            if event.is_annotation() and event.tag == SIM_DECISION_TAG:
                tampered = dict(event.payload)
                tampered["value"] = "not-a-real-decision"
                object.__setattr__(event, "payload", tampered)
                break
        correspondence = check_correspondence(outcome)
        assert not correspondence.ok
