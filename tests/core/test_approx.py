"""Tests for the Appendix D approximate-agreement simulation."""

import pytest

from repro.core import check_correspondence, run_approx_simulation
from repro.errors import ValidationError
from repro.protocols import AveragingApprox, TruncatedProtocol
from repro.runtime import RandomScheduler, RoundRobinScheduler


def protocol_for(m, eps, n_factor=2):
    """An approximate-agreement protocol squeezed onto m registers for 2m
    processes (aliasing keeps validity and wait-freedom)."""
    return TruncatedProtocol(AveragingApprox(n_factor * m, eps), m)


class TestValidation:
    def test_needs_two_inputs(self):
        with pytest.raises(ValidationError):
            run_approx_simulation(
                protocol_for(2, 0.5), [0], RoundRobinScheduler()
            )

    def test_protocol_width_checked(self):
        protocol = AveragingApprox(3, 0.5)  # n=3 < 2m=6
        with pytest.raises(ValidationError):
            run_approx_simulation(protocol, [0, 1], RoundRobinScheduler())


class TestRuns:
    @pytest.mark.parametrize("seed", range(10))
    def test_both_simulators_decide(self, seed):
        outcome = run_approx_simulation(
            protocol_for(2, 2 ** -6), [0, 1], RandomScheduler(seed)
        )
        assert outcome.result.completed
        assert outcome.all_decided

    @pytest.mark.parametrize("seed", range(10))
    def test_validity(self, seed):
        outcome = run_approx_simulation(
            protocol_for(2, 2 ** -6), [0, 1], RandomScheduler(seed)
        )
        for value in outcome.decisions.values():
            assert 0.0 <= value <= 1.0

    def test_same_inputs_decide_that_value(self):
        outcome = run_approx_simulation(
            protocol_for(2, 2 ** -6), [1, 1], RoundRobinScheduler()
        )
        assert set(outcome.decisions.values()) == {1.0}

    @pytest.mark.parametrize("seed", range(8))
    def test_correspondence(self, seed):
        outcome = run_approx_simulation(
            protocol_for(2, 2 ** -8), [0, 1], RandomScheduler(seed)
        )
        correspondence = check_correspondence(outcome)
        assert correspondence.ok, correspondence.violations


class TestEpsilonIndependence:
    """Lemma 33's heart: simulator step counts are a function of m, not ε."""

    def test_steps_constant_across_epsilon(self):
        step_profiles = {}
        for exponent in (2, 6, 10, 14):
            eps = 2.0 ** -exponent
            outcome = run_approx_simulation(
                protocol_for(2, eps), [0, 1], RoundRobinScheduler()
            )
            assert outcome.all_decided
            step_profiles[exponent] = outcome.max_steps_taken
        values = set(step_profiles.values())
        assert len(values) == 1, step_profiles

    def test_steps_grow_with_m(self):
        """More registers means more covering work: f(m) grows."""
        eps = 2 ** -6
        steps_by_m = {}
        for m in (1, 2, 3):
            outcome = run_approx_simulation(
                protocol_for(m, eps), [0, 1], RoundRobinScheduler()
            )
            assert outcome.all_decided
            steps_by_m[m] = outcome.max_steps_taken
        assert steps_by_m[1] <= steps_by_m[2] <= steps_by_m[3]

    def test_crossover_with_hoest_shavit_bound(self):
        """For small enough ε the simulation's steps fall below
        log₃(1/ε) — the contradiction that proves ⌊n/2⌋+1."""
        import math

        outcome = run_approx_simulation(
            protocol_for(2, 2 ** -40), [0, 1], RoundRobinScheduler()
        )
        assert outcome.all_decided
        hoest_shavit = math.log(2 ** 40, 3)
        assert outcome.max_steps_taken < hoest_shavit
