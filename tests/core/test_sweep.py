"""Tests for the sweep/aggregation harness."""


from repro.core.sweep import SweepReport, sweep_protocol, sweep_simulation
from repro.protocols import (
    KSetAgreementTask,
    MinSeen,
    RacingConsensus,
    RotatingWrites,
    TruncatedProtocol,
)


class TestSweepReport:
    def test_clean_logic(self):
        report = SweepReport(runs=3)
        assert report.clean
        report.safety_violations = 1
        assert not report.clean

    def test_histogram_folding(self):
        report = SweepReport()
        report.record_decisions({0: "a", 1: "a", 2: "b"})
        report.record_decisions({0: "a"})
        assert report.decisions_histogram == {"a": 3, "b": 1}

    def test_summary_mentions_counts(self):
        report = SweepReport(runs=5, all_decided=4, safety_violations=1)
        text = report.summary()
        assert "5 runs" in text
        assert "1 safety" in text


class TestSweepSimulation:
    def test_positive_sweep_is_clean(self):
        report = sweep_simulation(
            RotatingWrites(7, 3, rounds=4), k=2, x=1, inputs=[5, 2, 8],
            seeds=range(5), verify_correspondence=True,
        )
        assert report.runs == 5
        assert report.all_decided == 5
        assert report.clean
        assert set(report.decisions_histogram) <= {5, 2, 8}

    def test_falsifier_sweep_counts_violations(self):
        report = sweep_simulation(
            TruncatedProtocol(RacingConsensus(2), 1), k=1, x=1,
            inputs=[0, 1], seeds=range(5), task=KSetAgreementTask(1),
        )
        assert report.safety_violations == 5
        assert report.first_violating_seed == 0
        assert not report.clean

    def test_max_steps_observed_tracked(self):
        report = sweep_simulation(
            RotatingWrites(5, 2, rounds=2), k=1, x=1, inputs=[1, 2],
            seeds=range(3),
        )
        assert report.max_steps_observed > 0


class TestSweepProtocol:
    def test_wait_free_protocol_sweep(self):
        report = sweep_protocol(
            MinSeen(3, rounds=2), [4, 1, 9], seeds=range(8),
            task=KSetAgreementTask(3),
        )
        assert report.runs == 8
        assert report.all_decided == 8
        assert report.clean

    def test_livelock_counted_as_divergence(self):
        # A budget below any deciding execution's length forces divergence.
        report = sweep_protocol(
            RacingConsensus(2), [0, 1], seeds=range(10), max_steps=8,
        )
        assert report.divergences >= 1
        assert report.runs == 10
