"""Tests for the Theorem 3 / Appendix D bound formulas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    approx_space_lower_bound,
    bound_table,
    consensus_space_bound,
    kset_space_lower_bound,
    kset_space_upper_bound,
    max_simulatable_registers,
    simulated_process_count,
)
from repro.errors import ValidationError


class TestPaperValues:
    def test_consensus_is_tight_n(self):
        for n in (2, 3, 10, 100):
            assert consensus_space_bound(n) == n
            assert kset_space_lower_bound(n, 1, 1) == n
            assert kset_space_upper_bound(n, 1, 1) == n

    def test_obstruction_free_kset_formula(self):
        # x = 1: floor((n-1)/k) + 1
        assert kset_space_lower_bound(10, 3, 1) == (10 - 1) // 3 + 1 == 4
        assert kset_space_lower_bound(7, 2, 1) == 4

    def test_general_x_formula(self):
        assert kset_space_lower_bound(20, 5, 3) == (20 - 3) // 3 + 1 == 6

    def test_x_equals_k_case(self):
        # x = k: floor(n-k) + 1 = n - k + 1, within x of the upper bound.
        n, k = 12, 4
        assert kset_space_lower_bound(n, k, k) == n - k + 1
        assert kset_space_upper_bound(n, k, k) == n

    def test_approx_bound(self):
        assert approx_space_lower_bound(10) == 6
        assert approx_space_lower_bound(11) == 6
        assert approx_space_lower_bound(2) == 2


class TestValidation:
    def test_k_positive(self):
        with pytest.raises(ValidationError):
            kset_space_lower_bound(5, 0, 1)

    def test_x_range(self):
        with pytest.raises(ValidationError):
            kset_space_lower_bound(5, 2, 3)
        with pytest.raises(ValidationError):
            kset_space_lower_bound(5, 2, 0)

    def test_n_greater_than_k(self):
        with pytest.raises(ValidationError):
            kset_space_lower_bound(2, 2, 1)

    def test_approx_n_positive(self):
        with pytest.raises(ValidationError):
            approx_space_lower_bound(0)


class TestSimulationArithmetic:
    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    def test_simulatable_iff_below_bound(self, m, k, x):
        """The simulation can be instantiated with m registers iff m is
        strictly below the Theorem 3 bound — the exact pivot of the proof."""
        if x > k:
            return
        n = simulated_process_count(m, k, x)
        if n <= k:
            return
        assert max_simulatable_registers(n, k, x) >= m
        assert kset_space_lower_bound(n, k, x) >= m + 1

    @given(
        st.integers(min_value=3, max_value=200),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    def test_lower_at_most_upper(self, n, k, x):
        if x > k or n <= k:
            return
        assert kset_space_lower_bound(n, k, x) <= kset_space_upper_bound(n, k, x)

    @given(st.integers(min_value=2, max_value=500))
    def test_consensus_row_tight(self, n):
        assert kset_space_lower_bound(n, 1, 1) == kset_space_upper_bound(n, 1, 1)

    def test_process_count_formula(self):
        assert simulated_process_count(4, 3, 1) == 3 * 4 + 1
        assert simulated_process_count(4, 3, 3) == 4 + 3


class TestBoundTable:
    def test_skips_invalid_combinations(self):
        rows = bound_table(ns=[2, 5], ks=[1, 4], xs=[1, 2])
        for row in rows:
            assert row.x <= row.k
            assert row.n > row.k

    def test_row_fields(self):
        rows = bound_table(ns=[10], ks=[2], xs=[1])
        (row,) = rows
        assert row.lower == 5
        assert row.upper == 9
        assert row.gap == 4
        assert not row.tight

    def test_consensus_rows_tight(self):
        rows = bound_table(ns=range(2, 20), ks=[1])
        assert all(row.tight for row in rows)

    def test_asymptotic_tightness_for_constant_k_x(self):
        """Lower/upper ratio tends to 1/(k+1-x) * ... — for k=x the bounds
        differ by at most x-1+... check the paper's 'asymptotically tight
        when k and x constant' claim numerically: ratio bounded."""
        rows = bound_table(ns=[1000], ks=[4], xs=[4])
        (row,) = rows
        # x = k: lower = n-k+1, upper = n: additive gap k-1... here x-? gap
        assert row.upper - row.lower == row.k - 1 + (row.k - row.x)
