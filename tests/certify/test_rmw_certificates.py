"""Certificate replay over the read-modify-write base objects.

The trust story of docs/CERTIFICATES.md must survive the multi-primitive
substrate: a violation-schedule certificate from a swap-based consensus
scenario and a covering certificate whose reserving executions contain
frozen *and* landed RMW steps both verify through the independent
replayer (``deep=True``), and any tampering with a base-object field —
the protocol's family, an RMW step's operation name or arguments, a
frozen RMW's withheld value, a linearization spec's kind — fails
closed, even when the tamperer honestly re-checksums the lie.
"""

import json

from repro.analysis import explore_protocol
from repro.analysis.covering import build_covering
from repro.analysis.linearizability import (
    CompletedOperation,
    certified_linearization,
    spec_for_base_object,
)
from repro.certify.canonical import canonical_json
from repro.certify.certificates import make_certificate
from repro.certify.emit import (
    SOURCE_EXPLORE,
    exploration_certificates,
    violation_certificate,
)
from repro.certify.verify import (
    REASON_COVERING_INVALID,
    REASON_OK,
    verify,
)
from repro.protocols import KSetAgreementTask, SwapConsensus
from tests.certify.gadgets import SwapThenWrite, register_gadgets

register_gadgets()


def remint(certificate, **updates):
    """An honestly re-checksummed copy with payload fields replaced."""
    payload = json.loads(canonical_json(certificate.payload))
    payload.update(updates)
    return make_certificate(certificate.kind, payload)


def swap_violation_certificate():
    """The explorer's counterexample certificate for swap consensus."""
    protocol = SwapConsensus(3)
    inputs = [0, 1, 2]
    task = KSetAgreementTask(1)
    report = explore_protocol(protocol, inputs, task)
    assert not report.safe
    (certificate,) = exploration_certificates(
        protocol, inputs, task, report
    )
    return certificate


def swap_covering_certificate():
    """A covering certificate with frozen and landed RMW steps."""
    report = build_covering(SwapThenWrite(2), [5, 6], certificates=True)
    assert report.size == 2
    # The second process's reserving execution swapped through the
    # already-covered component 0 — a *landed* RMW step in the log.
    assert any(
        step[0] == "rmw"
        for steps in report.executions.values() for step in steps
    )
    (certificate,) = report.certificates
    return certificate


class TestHonestRMWCertificatesVerify:
    def test_swap_violation_verifies_deep(self):
        verdict = verify(swap_violation_certificate(), deep=True)
        assert verdict.accepted and verdict.reason == REASON_OK

    def test_swap_covering_verifies_deep(self):
        verdict = verify(swap_covering_certificate(), deep=True)
        assert verdict.accepted and verdict.reason == REASON_OK

    def test_swap_linearization_verifies_deep(self):
        history = [
            CompletedOperation("a", 0, "swap", (4,), None, 0, 1),
            CompletedOperation("b", 1, "swap", (9,), 4, 2, 3),
            CompletedOperation("c", 0, "read", (), 9, 4, 5),
        ]
        ok, _order, certificate = certified_linearization(
            history, spec_for_base_object("swap")
        )
        assert ok
        verdict = verify(certificate, deep=True)
        assert verdict.accepted and verdict.reason == REASON_OK


class TestTamperedBaseObjectFieldsFailClosed:
    def test_violation_with_swapped_protocol_family(self):
        """Re-labelling the base object (swap -> CAS consensus) changes
        the replay semantics, so the claimed decisions cannot recur."""
        certificate = swap_violation_certificate()
        tampered = remint(
            certificate, protocol={"family": "cas-consensus", "n": 3}
        )
        assert not verify(tampered, deep=True).accepted

    def test_violation_with_edited_decisions(self):
        certificate = swap_violation_certificate()
        decisions = json.loads(
            canonical_json(certificate.payload["decisions"])
        )
        decisions[0][1] = 99
        tampered = remint(certificate, decisions=decisions)
        assert not verify(tampered, deep=True).accepted

    def _tamper_execution_step(self, certificate, edit):
        payload = json.loads(canonical_json(certificate.payload))
        for _index, steps in payload["executions"]:
            for step in steps:
                if step[0] == "rmw":
                    edit(step)
                    return remint(certificate, executions=payload["executions"])
        raise AssertionError("no landed RMW step to tamper with")

    def test_covering_with_edited_rmw_operation(self):
        certificate = swap_covering_certificate()

        def edit(step):
            step[2] = "test_and_set"
            step[3] = []

        tampered = self._tamper_execution_step(certificate, edit)
        verdict = verify(tampered, deep=True)
        assert not verdict.accepted
        assert verdict.reason == REASON_COVERING_INVALID

    def test_covering_with_edited_rmw_arguments(self):
        certificate = swap_covering_certificate()

        def edit(step):
            step[3] = [step[3][0], "stowaway"] if step[3] else ["x"]

        tampered = self._tamper_execution_step(certificate, edit)
        assert not verify(tampered, deep=True).accepted

    def test_covering_with_edited_withheld_value(self):
        """A frozen RMW's withheld value is recomputed by the verifier
        from the operation's semantics; lying about it must not pass."""
        certificate = swap_covering_certificate()
        poised = json.loads(canonical_json(certificate.payload["poised"]))
        poised[0][2] = "forged"
        tampered = remint(certificate, poised=poised)
        verdict = verify(tampered, deep=True)
        assert not verdict.accepted
        assert verdict.reason == REASON_COVERING_INVALID

    def test_linearization_with_relabelled_spec(self):
        """Claiming a swap history linearizes as a plain register must
        fail: the register spec has no ``swap`` operation."""
        history = [
            CompletedOperation("a", 0, "swap", (4,), None, 0, 1),
        ]
        ok, _order, certificate = certified_linearization(
            history, spec_for_base_object("swap")
        )
        assert ok
        tampered = remint(
            certificate, spec={"family": "register", "initial": None}
        )
        assert not verify(tampered, deep=True).accepted

    def test_forged_violation_on_safe_base_object(self):
        """CAS consensus is safe; relabelling a swap counterexample to
        it (schedule and all) must not yield an accepted violation."""
        protocol = SwapConsensus(3)
        inputs = [0, 1, 2]
        task = KSetAgreementTask(1)
        report = explore_protocol(protocol, inputs, task)
        honest = violation_certificate(
            protocol, inputs, task, report.counterexample, SOURCE_EXPLORE
        )
        tampered = remint(
            honest, protocol={"family": "cas-consensus", "n": 3}
        )
        assert not verify(tampered, deep=True).accepted
