"""Verifier contract: honest acceptance, independence, files, CLI.

The headline property is *independence*: ``repro.certify.verify``
re-checks claims through its own replay machinery and must never import
the searchers it audits — importing it leaves no ``repro.analysis``
module loaded (asserted in a fresh subprocess).  The rest covers the
file/directory verification surface and the ``repro certify`` CLI's
exit-code contract.
"""

import json
import os
import subprocess
import sys

import repro
from repro.analysis.covering import build_covering
from repro.analysis.linearizability import (
    CompletedOperation,
    RegisterSpec,
    certified_linearization,
)
from repro.certify.certificates import (
    certificate_filename,
    load_certificates,
    make_certificate,
    write_certificates,
)
from repro.certify.emit import linearization_certificate
from repro.certify.verify import (
    REASON_CHECKSUM,
    REASON_LINEARIZATION_INVALID,
    REASON_MALFORMED,
    verify,
    verify_directory,
    verify_file,
    verify_json,
)
from repro.errors import CertificateError
from repro.protocols import RacingConsensus
from tests.certify.gadgets import register_gadgets

register_gadgets()

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class TestIndependence:
    def test_verify_import_graph_excludes_analysis(self):
        """Importing the verifier must not load any searcher module."""
        code = (
            "import sys\n"
            "import repro.certify.verify\n"
            "bad = sorted(\n"
            "    name for name in sys.modules\n"
            "    if name == 'repro.analysis'\n"
            "    or name.startswith('repro.analysis.')\n"
            ")\n"
            "print('\\n'.join(bad))\n"
            "sys.exit(1 if bad else 0)\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC_ROOT)
        completed = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert completed.returncode == 0, (
            f"repro.certify.verify pulled in searcher modules:\n"
            f"{completed.stdout}{completed.stderr}"
        )

    def test_deep_sweep_verification_stays_searcher_free(self):
        """``deep=True`` re-execution loads the runtime, not searchers."""
        code = (
            "import sys\n"
            "from repro.certify.verify import verify\n"
            "from repro.certify.certificates import from_json\n"
            "verdict = verify(from_json(sys.stdin.read()), deep=True)\n"
            "assert verdict.accepted, verdict\n"
            "bad = sorted(\n"
            "    name for name in sys.modules\n"
            "    if name == 'repro.analysis'\n"
            "    or name.startswith('repro.analysis.')\n"
            ")\n"
            "sys.exit(1 if bad else 0)\n"
        )
        from repro.certify.certificates import to_json
        from repro.core.sweep import sweep_protocol
        from repro.protocols import (
            KSetAgreementTask,
            TruncatedProtocol,
        )

        report = sweep_protocol(
            TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
            list(range(8)), task=KSetAgreementTask(1),
            max_steps=400_000, certificates=True,
        )
        (certificate,) = report.certificates
        env = dict(os.environ, PYTHONPATH=SRC_ROOT)
        completed = subprocess.run(
            [sys.executable, "-c", code], input=to_json(certificate),
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert completed.returncode == 0, completed.stderr


def lin_certificate():
    history = [
        CompletedOperation("w0", 0, "write", (5,), 5, 0, 1),
        CompletedOperation("r1", 1, "read", (), 5, 2, 3),
    ]
    ok, order, certificate = certified_linearization(
        history, RegisterSpec()
    )
    assert ok
    return history, order, certificate


class TestHonestCertificates:
    def test_register_linearization_verifies(self):
        _history, _order, certificate = lin_certificate()
        assert verify(certificate).accepted

    def test_covering_certificate_verifies(self):
        report = build_covering(
            RacingConsensus(3), [0, 1, 1], certificates=True
        )
        (certificate,) = report.certificates
        verdict = verify(certificate)
        assert verdict.accepted, verdict

    def test_non_witness_order_rejected(self):
        history, order, certificate = lin_certificate()
        bogus = linearization_certificate(
            RegisterSpec(), history, list(reversed(order))
        )
        verdict = verify(bogus)
        assert not verdict.accepted
        assert verdict.reason == REASON_LINEARIZATION_INVALID


class TestFilesAndDirectories:
    def test_write_load_verify_directory(self, tmp_path):
        _h, _o, certificate = lin_certificate()
        paths = write_certificates(str(tmp_path), [certificate])
        assert paths == [
            str(tmp_path / certificate_filename(certificate))
        ]
        # Idempotent: re-writing the same claims changes nothing.
        assert write_certificates(str(tmp_path), [certificate]) == paths
        assert load_certificates(str(tmp_path)) == [certificate]
        results = verify_directory(str(tmp_path))
        assert [(p, v.accepted) for p, v in results] == [
            (paths[0], True)
        ]

    def test_tampered_file_rejected_at_checksum(self, tmp_path):
        _h, _o, certificate = lin_certificate()
        (path,) = write_certificates(str(tmp_path), [certificate])
        data = json.loads(open(path).read())
        data["payload"]["order"] = list(reversed(data["payload"]["order"]))
        with open(path, "w") as handle:
            handle.write(json.dumps(data))
        verdict = verify_file(path)
        assert not verdict.accepted
        assert verdict.reason == REASON_CHECKSUM

    def test_non_certificate_json_is_malformed(self):
        assert verify_json("[1, 2, 3]").reason == REASON_MALFORMED
        assert verify_json("{not json").reason == REASON_MALFORMED
        assert verify_json('{"kind": "violation-schedule"}').reason \
            == REASON_MALFORMED

    def test_missing_directory_is_malformed_not_raised(self, tmp_path):
        results = verify_directory(str(tmp_path / "missing"))
        assert len(results) == 1
        assert results[0][1].reason == REASON_MALFORMED

    def test_make_certificate_refuses_bad_claims(self):
        import pytest

        with pytest.raises(CertificateError):
            make_certificate("alien-kind", {})
        with pytest.raises(CertificateError):
            make_certificate("violation-schedule", {1: "non-str key"})
        with pytest.raises(CertificateError):
            make_certificate("violation-schedule", {"x": float("nan")})


class TestCli:
    def run_cli(self, *argv):
        from repro.__main__ import main

        return main(list(argv))

    def test_emit_then_verify_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "certs")
        assert self.run_cli(
            "certify", "emit", "--scenario", "sweep", "--runs", "8",
            "--out", out,
        ) == 0
        assert self.run_cli("certify", "verify", "--dir", out) == 0
        captured = capsys.readouterr()
        assert "REJECT" not in captured.out

    def test_verify_rejects_tampered_file_nonzero(self, tmp_path, capsys):
        out = str(tmp_path / "certs")
        self.run_cli(
            "certify", "emit", "--scenario", "valence", "--out", out,
        )
        (name,) = os.listdir(out)
        path = os.path.join(out, name)
        data = json.loads(open(path).read())
        data["schema_version"] = 99
        with open(path, "w") as handle:
            handle.write(json.dumps(data))
        assert self.run_cli("certify", "verify", path) == 1
        assert "unsupported-schema-version" in capsys.readouterr().out

    def test_verify_with_nothing_to_check_is_usage_error(self, tmp_path):
        assert self.run_cli("certify", "verify") == 2
        assert self.run_cli(
            "certify", "verify", "--dir", str(tmp_path / "missing")
        ) == 2
