"""Adversarial certificate suite: every mutation must be rejected.

The certificate analogue of the chaos ``--slowdown`` must-fail
self-test: start from honest certificates, apply each mutation class a
dishonest worker could attempt — swap two schedule steps, drop a step,
perturb a decided value, corrupt the checksum, bump the schema version
— and assert the independent verifier rejects it with the *right*
reason code, not just any rejection.
"""

import dataclasses
import json

from repro.analysis.bivalence import classify_valence
from repro.analysis.covering import build_covering
from repro.analysis.fuzz import fuzz_protocol
from repro.analysis.linearizability import (
    CompletedOperation,
    SnapshotSpec,
    certified_linearization,
)
from repro.certify.canonical import canonical_json
from repro.certify.certificates import (
    KIND_SWEEP_RUN,
    make_certificate,
    to_json,
)
from repro.certify.emit import SOURCE_FUZZ_SHRINK
from repro.certify.verify import (
    REASON_CHECKSUM,
    REASON_COVERING_INVALID,
    REASON_DECISIONS_MISMATCH,
    REASON_LINEARIZATION_INVALID,
    REASON_MALFORMED,
    REASON_NO_VIOLATION,
    REASON_SCHEDULE_INVALID,
    REASON_SCHEMA_VERSION,
    REASON_UNKNOWN_DESCRIPTOR,
    REASON_UNKNOWN_KIND,
    REASON_VALENCE_MISMATCH,
    verify,
    verify_json,
)
from repro.protocols import (
    KSetAgreementTask,
    RacingConsensus,
    TruncatedProtocol,
)
from tests.certify.gadgets import register_gadgets

register_gadgets()


def remint(certificate, **updates):
    """An honestly re-checksummed copy with payload fields replaced.

    Mutating the payload and *recomputing* the checksum models a
    dishonest worker that signs its own lie: the certificate is
    structurally perfect, so the verifier must catch it on the semantic
    replay, not on the checksum.
    """
    payload = json.loads(canonical_json(certificate.payload))
    payload.update(updates)
    return make_certificate(certificate.kind, payload)


def fuzz_report():
    return fuzz_protocol(
        TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
        KSetAgreementTask(1), runs=80, schedule_length=40, seed=7,
        certificates=True,
    )


def shrink_certificate(report):
    """The report's 1-minimal shrunken-schedule certificate."""
    for certificate in report.certificates:
        if certificate.payload["source"] == SOURCE_FUZZ_SHRINK:
            return certificate
    raise AssertionError("fuzz report carried no shrink certificate")


class TestScheduleMutations:
    """Mutations of the claimed violating schedule."""

    def test_honest_certificates_accepted(self):
        report = fuzz_report()
        assert report.certificates
        for certificate in report.certificates:
            verdict = verify(certificate)
            assert verdict.accepted, verdict

    def test_swapping_two_schedule_steps_rejected(self):
        """Some transposition of distinct steps must change the outcome
        and be caught as a decisions or violation mismatch."""
        certificate = shrink_certificate(fuzz_report())
        schedule = certificate.payload["schedule"]
        rejected = []
        for i in range(len(schedule)):
            for j in range(i + 1, len(schedule)):
                if schedule[i] == schedule[j]:
                    continue
                swapped = list(schedule)
                swapped[i], swapped[j] = swapped[j], swapped[i]
                verdict = verify(remint(certificate, schedule=swapped))
                if not verdict.accepted:
                    rejected.append(verdict)
                    assert verdict.reason in (
                        REASON_DECISIONS_MISMATCH, REASON_NO_VIOLATION,
                    ), verdict
        assert rejected, "no transposition changed the replay outcome"

    def test_dropping_any_step_of_minimal_schedule_rejected(self):
        """The shrunken schedule is 1-minimal: every single-step
        deletion stops reproducing the claimed violating decisions."""
        certificate = shrink_certificate(fuzz_report())
        schedule = certificate.payload["schedule"]
        for drop in range(len(schedule)):
            shorter = schedule[:drop] + schedule[drop + 1:]
            verdict = verify(remint(certificate, schedule=shorter))
            assert not verdict.accepted, f"dropping step {drop} passed"
            assert verdict.reason in (
                REASON_DECISIONS_MISMATCH, REASON_NO_VIOLATION,
            ), verdict

    def test_out_of_range_process_index_rejected(self):
        certificate = shrink_certificate(fuzz_report())
        schedule = list(certificate.payload["schedule"]) + [99]
        verdict = verify(remint(certificate, schedule=schedule))
        assert not verdict.accepted
        assert verdict.reason == REASON_SCHEDULE_INVALID, verdict


class TestClaimMutations:
    """Mutations of the claimed outcome, envelope, and descriptors."""

    def test_perturbing_a_decided_value_rejected(self):
        certificate = shrink_certificate(fuzz_report())
        decisions = [
            list(pair) for pair in certificate.payload["decisions"]
        ]
        assert decisions
        decisions[0][1] = "not-what-was-decided"
        verdict = verify(remint(certificate, decisions=decisions))
        assert not verdict.accepted
        assert verdict.reason == REASON_DECISIONS_MISMATCH, verdict

    def test_corrupting_the_checksum_rejected(self):
        certificate = shrink_certificate(fuzz_report())
        tampered = dataclasses.replace(
            certificate, checksum="0" * len(certificate.checksum)
        )
        verdict = verify(tampered)
        assert not verdict.accepted
        assert verdict.reason == REASON_CHECKSUM, verdict

    def test_tampered_payload_without_reminting_fails_checksum(self):
        """Editing the JSON on disk without recomputing the checksum is
        the lazy tamper; it must die at the checksum, before replay."""
        certificate = shrink_certificate(fuzz_report())
        data = json.loads(to_json(certificate))
        data["payload"]["inputs"] = [1, 1]
        verdict = verify_json(json.dumps(data))
        assert not verdict.accepted
        assert verdict.reason == REASON_CHECKSUM, verdict

    def test_bumping_the_schema_version_rejected(self):
        certificate = shrink_certificate(fuzz_report())
        tampered = dataclasses.replace(
            certificate,
            schema_version=certificate.schema_version + 1,
        )
        verdict = verify(tampered)
        assert not verdict.accepted
        assert verdict.reason == REASON_SCHEMA_VERSION, verdict

    def test_unknown_kind_rejected(self):
        certificate = shrink_certificate(fuzz_report())
        data = json.loads(to_json(certificate))
        data["kind"] = "alien-kind"
        verdict = verify_json(json.dumps(data))
        assert not verdict.accepted
        # The checksum covers the kind, so the envelope edit dies there
        # (reminting an unknown kind is impossible: make_certificate
        # refuses it — a worker cannot even emit one honestly).
        assert verdict.reason in (REASON_CHECKSUM, REASON_UNKNOWN_KIND)

    def test_unknown_protocol_family_rejected(self):
        certificate = shrink_certificate(fuzz_report())
        verdict = verify(
            remint(certificate, protocol={"family": "no-such-family"})
        )
        assert not verdict.accepted
        assert verdict.reason == REASON_UNKNOWN_DESCRIPTOR, verdict

    def test_missing_payload_field_rejected_as_malformed(self):
        certificate = shrink_certificate(fuzz_report())
        payload = json.loads(canonical_json(certificate.payload))
        del payload["schedule"]
        verdict = verify(make_certificate(certificate.kind, payload))
        assert not verdict.accepted
        assert verdict.reason == REASON_MALFORMED, verdict


class TestOtherKindMutations:
    """One semantic tamper per remaining certificate kind."""

    def test_valence_witness_for_wrong_value_rejected(self):
        report = classify_valence(
            RacingConsensus(2), [0, 1], certificates=True
        )
        (certificate,) = report.certificates
        witnesses = json.loads(
            canonical_json(certificate.payload["witnesses"])
        )
        # Claim the first witness schedule decides the *other* value.
        witnesses[0][0], witnesses[1][0] = witnesses[1][0], witnesses[0][0]
        verdict = verify(remint(certificate, witnesses=witnesses))
        assert not verdict.accepted
        assert verdict.reason == REASON_VALENCE_MISMATCH, verdict

    def test_covering_memory_tamper_rejected(self):
        report = build_covering(
            RacingConsensus(3), [0, 1, 1], certificates=True
        )
        (certificate,) = report.certificates
        memory = json.loads(canonical_json(certificate.payload["memory"]))
        memory[0] = "forged"
        verdict = verify(remint(certificate, memory=memory))
        assert not verdict.accepted
        assert verdict.reason == REASON_COVERING_INVALID, verdict

    def test_covering_uncovered_write_rejected(self):
        """Forging a landed write on a component no earlier process
        covers violates the reserving-execution discipline."""
        report = build_covering(
            RacingConsensus(3), [0, 1, 1], certificates=True
        )
        (certificate,) = report.certificates
        executions = json.loads(
            canonical_json(certificate.payload["executions"])
        )
        # Claim the first frozen process's *pending* update (which
        # reserves a fresh component) actually landed: the step matches
        # what the process is poised to do, so only the
        # covered-component discipline can reject it.
        index, component, value = certificate.payload["poised"][0]
        steps = next(s for i, s in executions if i == index)
        steps.append(["update", component, value])
        verdict = verify(remint(certificate, executions=executions))
        assert not verdict.accepted
        assert verdict.reason == REASON_COVERING_INVALID, verdict

    def test_linearization_order_violating_real_time_rejected(self):
        history = [
            CompletedOperation("u0", 0, "update", (0, "a"), None, 0, 1),
            CompletedOperation("s1", 1, "scan", (), ("a",), 2, 3),
        ]
        ok, order, certificate = certified_linearization(
            history, SnapshotSpec(1)
        )
        assert ok and verify(certificate).accepted
        verdict = verify(remint(certificate, order=list(reversed(order))))
        assert not verdict.accepted
        assert verdict.reason == REASON_LINEARIZATION_INVALID, verdict

    def test_sweep_judgment_without_violation_rejected(self):
        from repro.core.sweep import sweep_protocol

        report = sweep_protocol(
            TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
            list(range(8)), task=KSetAgreementTask(1),
            max_steps=400_000, certificates=True,
        )
        (certificate,) = report.certificates
        # Claim unanimous decisions: consensus holds, nothing violated.
        verdict = verify(
            remint(certificate, decisions=[[0, 0], [1, 0]])
        )
        assert not verdict.accepted
        assert verdict.reason == REASON_NO_VIOLATION, verdict

    def test_sweep_deep_replay_catches_forged_decisions(self):
        """A forged violating decision map passes the fast judgment but
        dies on the ``deep=True`` seeded re-execution."""
        from repro.certify.verify import REASON_RUN_MISMATCH
        from repro.core.sweep import sweep_protocol

        report = sweep_protocol(
            TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
            list(range(8)), task=KSetAgreementTask(1),
            max_steps=400_000, certificates=True,
        )
        (certificate,) = report.certificates
        forged = remint(certificate, decisions=[[0, 7], [1, 8]])
        assert verify(forged).accepted  # still a violation on its face
        verdict = verify(forged, deep=True)
        assert not verdict.accepted
        assert verdict.reason == REASON_RUN_MISMATCH, verdict


class TestCanonicalEdgeCases:
    """Scalar edge cases a dishonest (or merely sloppy) emitter could
    exploit to mint two spellings of one claim — or one spelling of two
    different claims."""

    def test_negative_zero_and_zero_mint_equal_certificates(self):
        """-0.0 == 0.0, so the claims are equal and must hash equal;
        before normalization json.dumps spelled them "-0.0" vs "0.0"."""
        neg = make_certificate(
            KIND_SWEEP_RUN, {"seed": 1, "rate": -0.0}
        )
        pos = make_certificate(
            KIND_SWEEP_RUN, {"seed": 1, "rate": 0.0}
        )
        assert neg.checksum == pos.checksum
        assert to_json(neg) == to_json(pos)
        assert "-0.0" not in to_json(neg)

    def test_negative_zero_normalized_in_nested_containers(self):
        nested_neg = make_certificate(
            KIND_SWEEP_RUN,
            {"grid": [[-0.0, 1.5], {"x": -0.0}], "tag": "a"},
        )
        nested_pos = make_certificate(
            KIND_SWEEP_RUN,
            {"grid": [[0.0, 1.5], {"x": 0.0}], "tag": "a"},
        )
        assert nested_neg.checksum == nested_pos.checksum

    def test_checksum_helper_agrees_on_negative_zero(self):
        """content_checksum serializes single-pass (bypassing
        canonical_payload) and needs its own -0.0 fold; it must agree
        with make_certificate byte-for-byte."""
        from repro.certify.canonical import content_checksum
        from repro.certify.certificates import (
            CERTIFICATE_SCHEMA_VERSION,
        )

        payload = {"values": [-0.0, 2.0]}
        minted = make_certificate(KIND_SWEEP_RUN, payload)
        assert minted.checksum == content_checksum(
            KIND_SWEEP_RUN, CERTIFICATE_SCHEMA_VERSION, payload
        )
        assert minted.checksum == content_checksum(
            KIND_SWEEP_RUN, CERTIFICATE_SCHEMA_VERSION,
            {"values": [0.0, 2.0]},
        )

    def test_string_containing_minus_zero_spelling_is_untouched(self):
        """The "-0.0" fold must not rewrite string *values* that merely
        contain the spelling."""
        certificate = make_certificate(
            KIND_SWEEP_RUN, {"note": "rate was -0.0 exactly"}
        )
        assert certificate.payload["note"] == "rate was -0.0 exactly"
        assert "-0.0" in to_json(certificate)

    def test_bool_and_int_values_are_distinct_claims(self):
        """True == 1 in Python but "true" != "1" in JSON: the claims
        are distinguishable on disk, so they must hash apart — a
        verifier comparing payloads sees different claims."""
        as_bool = make_certificate(KIND_SWEEP_RUN, {"flag": True})
        as_int = make_certificate(KIND_SWEEP_RUN, {"flag": 1})
        assert as_bool.checksum != as_int.checksum
        assert as_bool.payload["flag"] is True
        assert as_int.payload["flag"] == 1
        assert as_int.payload["flag"] is not True

    def test_bool_dict_key_rejected_not_coerced(self):
        """json.dumps would silently coerce True → "true" as a key;
        emit must refuse instead of minting an ambiguous claim."""
        import pytest

        from repro.errors import CertificateError

        with pytest.raises(CertificateError):
            make_certificate(KIND_SWEEP_RUN, {True: 1})
        with pytest.raises(CertificateError):
            make_certificate(KIND_SWEEP_RUN, {"ok": {1: "x"}})

    def test_non_finite_floats_rejected(self):
        import pytest

        from repro.errors import CertificateError

        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(CertificateError):
                make_certificate(KIND_SWEEP_RUN, {"rate": bad})
