"""The untrusted-worker gate: ``run_campaign(verify_certificates=True)``.

With the gate on, every chunk report's certificates are re-checked by
the independent verifier before the merge fold accepts the chunk.  An
honest campaign is unchanged (same report, same repr); a lying job —
one whose chunks carry tampered certificates — has its chunks rejected,
retried, and ultimately surfaced as explicit failures, never silently
merged.  Resumed checkpoints get the same treatment.
"""

import dataclasses

import pytest

from repro.campaign import FakeClock, RetryPolicy, run_campaign
from repro.campaign.engine import fuzz_campaign
from repro.campaign.jobs import FuzzJob
from repro.errors import CampaignError
from repro.protocols import (
    KSetAgreementTask,
    RacingConsensus,
    TruncatedProtocol,
)
from tests.certify.gadgets import register_gadgets

register_gadgets()


def make_job(**overrides):
    options = dict(
        protocol=TruncatedProtocol(RacingConsensus(2), 1),
        inputs=(0, 1), task=KSetAgreementTask(1), runs=80,
        schedule_length=40, seed=7,
    )
    options.update(overrides)
    return FuzzJob(**options)


@dataclasses.dataclass(frozen=True)
class LyingFuzzJob(FuzzJob):
    """A worker that forges its evidence: every chunk's first
    certificate gets a corrupted checksum before it is handed back."""

    def run_range(self, start, stop):
        report = super().run_range(start, stop)
        if report.certificates:
            report.certificates = [
                dataclasses.replace(report.certificates[0], checksum="0" * 64)
            ] + report.certificates[1:]
        return report


class TestHonestCampaign:
    def test_verified_report_equals_plain_report(self):
        plain = run_campaign(make_job(), workers=1, chunk_size=20)
        verified = run_campaign(
            make_job(), workers=1, chunk_size=20,
            verify_certificates=True,
        )
        assert verified.report == plain.report
        assert repr(verified.report) == repr(plain.report)
        assert verified.telemetry.certificates_verified > 0
        assert plain.telemetry.certificates_verified == 0

    def test_gate_works_on_the_pooled_path(self):
        result = fuzz_campaign(
            TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
            KSetAgreementTask(1), runs=80, schedule_length=40, seed=7,
            workers=2, chunk_size=20, verify_certificates=True,
        )
        assert result.complete
        assert result.telemetry.certificates_verified > 0

    def test_job_flip_is_idempotent(self):
        job = make_job()
        flipped = job.with_certificates(True)
        assert flipped.certificates
        assert flipped.with_certificates(True) is flipped
        assert job.with_certificates(False) is job


class TestLyingWorker:
    def test_forged_chunks_fail_instead_of_merging(self):
        result = run_campaign(
            LyingFuzzJob(**dataclasses.asdict(make_job())),
            workers=1, chunk_size=20,
            retry=RetryPolicy(max_retries=1), clock=FakeClock(),
            verify_certificates=True,
        )
        assert not result.complete
        assert result.telemetry.failures
        for failure in result.telemetry.failures:
            assert "CertificateError" in failure.error
            assert "checksum-mismatch" in failure.error

    def test_strict_campaign_raises_on_forged_chunks(self):
        with pytest.raises(CampaignError):
            run_campaign(
                LyingFuzzJob(**dataclasses.asdict(make_job())),
                workers=1, chunk_size=20,
                retry=RetryPolicy(max_retries=0), clock=FakeClock(),
                strict=True, verify_certificates=True,
            )


class TestResumedCheckpoints:
    def test_honest_resume_reverifies_and_matches(self, tmp_path):
        path = str(tmp_path / "ckpt")
        plain = run_campaign(make_job(), workers=1, chunk_size=20)
        first = run_campaign(
            make_job(), workers=1, chunk_size=20, checkpoint=path,
            verify_certificates=True,
        )
        resumed = run_campaign(
            make_job(), workers=1, chunk_size=20, checkpoint=path,
            resume=True, verify_certificates=True,
        )
        assert first.report == plain.report
        assert resumed.report == plain.report
        # Every certificate came from the journal this time, and each
        # was re-verified rather than trusted.
        assert resumed.telemetry.skipped_chunks == 4
        assert resumed.telemetry.certificates_verified \
            == first.telemetry.certificates_verified

    def test_forged_journal_chunks_are_rerun_not_trusted(self, tmp_path):
        """A checkpoint written by a lying worker (gate off) fails
        re-verification on resume; its chunks are re-run, and if the
        re-run still lies the campaign reports explicit failures."""
        path = str(tmp_path / "ckpt")
        lying = LyingFuzzJob(
            **dataclasses.asdict(make_job(certificates=True))
        )
        ungated = run_campaign(
            lying, workers=1, chunk_size=20, checkpoint=path,
        )
        assert ungated.complete  # the forgery sailed through, unchecked
        resumed = run_campaign(
            lying, workers=1, chunk_size=20, checkpoint=path,
            resume=True, retry=RetryPolicy(max_retries=0),
            clock=FakeClock(), verify_certificates=True,
        )
        assert not resumed.complete
        assert resumed.telemetry.failures
        # The forged journal chunks were not skipped-and-trusted.
        assert resumed.telemetry.skipped_chunks < 4
