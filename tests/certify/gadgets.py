"""Shared gadgets for the certify test suite.

Registers the test-only protocols with the certificate registry so
their certificates are self-contained: the verifier rebuilds the
protocol from the ``diamond-trap`` family descriptor with its own
constructor call, exactly as it does for the built-in zoo.
"""

from repro.certify.registry import register_protocol
from tests.analysis.test_explore import DiamondTrap
from tests.analysis.test_reference_differential import SwapThenWrite


def register_gadgets() -> None:
    """Install descriptors for the test-only protocol families.

    Idempotent (re-registering replaces), so every certify test module
    can call it at import time.
    """
    register_protocol(
        "diamond-trap", DiamondTrap,
        lambda p: {},
        lambda d: DiamondTrap(),
    )
    register_protocol(
        "swap-then-write", SwapThenWrite,
        lambda p: {"n": p.n},
        lambda d: SwapThenWrite(d["n"]),
    )
