"""Certificate emission is byte-deterministic across processes.

The emit path was audited for latent nondeterminism — FuzzReport
violation ordering, ValenceReport witness-dict iteration, covering
dict iteration — and every ordering is pinned to canonical sorts.  The
regression: two fresh interpreter processes with *different* hash
randomization seeds must emit byte-identical certificate JSON for the
same workload, or content-addressed certificate stores and sharded
certificate-set comparisons silently fracture.
"""

import os
import subprocess
import sys

import repro

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Emits one certificate of each searcher-produced kind and prints the
#: canonical JSON lines.  String-keyed structures (valence witnesses,
#: decision values) are exercised on purpose: str hashing is what
#: PYTHONHASHSEED randomizes.
EMIT_SCRIPT = """
import sys

from repro.analysis.bivalence import classify_valence
from repro.analysis.covering import build_covering
from repro.analysis.fuzz import fuzz_protocol
from repro.analysis.linearizability import (
    CompletedOperation, SnapshotSpec, certified_linearization,
)
from repro.certify.certificates import to_json
from repro.core.sweep import sweep_protocol
from repro.protocols import (
    KSetAgreementTask, MinSeen, RacingConsensus, TruncatedProtocol,
)

certificates = []
fuzz = fuzz_protocol(
    TruncatedProtocol(RacingConsensus(2), 1), [0, 1],
    KSetAgreementTask(1), runs=80, schedule_length=40, seed=7,
    certificates=True,
)
certificates.extend(fuzz.certificates)
valence = classify_valence(RacingConsensus(2), [0, 1], certificates=True)
certificates.extend(valence.certificates)
covering = build_covering(RacingConsensus(3), [0, 1, 1], certificates=True)
certificates.extend(covering.certificates)
sweep = sweep_protocol(
    MinSeen(2), ["b", "a"], range(4), task=KSetAgreementTask(1),
    certificates=True,
)
certificates.extend(sweep.certificates)
history = [
    CompletedOperation("u0", 0, "update", (0, "x"), None, 0, 1),
    CompletedOperation("s1", 1, "scan", (), ("x", None), 2, 3),
]
ok, order, certificate = certified_linearization(history, SnapshotSpec(2))
assert ok
certificates.append(certificate)
for certificate in certificates:
    sys.stdout.write(to_json(certificate) + "\\n")
"""


def emit_output(hashseed: str) -> str:
    env = dict(
        os.environ, PYTHONPATH=SRC_ROOT, PYTHONHASHSEED=hashseed
    )
    completed = subprocess.run(
        [sys.executable, "-c", EMIT_SCRIPT],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "emit script produced nothing"
    return completed.stdout


def test_two_processes_emit_byte_identical_certificates():
    """Different hash seeds, identical bytes — emission is canonical."""
    assert emit_output("0") == emit_output("1")


def test_third_seed_for_good_measure():
    assert emit_output("1") == emit_output("31337")
