"""Round-trip + cross-producer certificate properties.

For a corpus of protocols (including the DiamondTrap regression
gadget), every violation found by the fuzz / explore / campaign paths
emits a certificate that serializes → deserializes → verifies, and
serial vs sharded runs emit certificate *sets* that are equal after
canonical sort — the property that lets a multi-host campaign's
certificates be audited without knowing how the work was sharded.
"""

import pytest

from repro.analysis.explore import explore_protocol
from repro.analysis.fuzz import fuzz_protocol
from repro.campaign import explore_campaign, fuzz_campaign
from repro.campaign.engine import sweep_protocol_campaign
from repro.certify.certificates import (
    from_json,
    sorted_certificates,
    to_json,
)
from repro.certify.verify import verify
from repro.core.sweep import sweep_protocol
from repro.protocols import (
    KSetAgreementTask,
    RacingConsensus,
    TruncatedProtocol,
)
from tests.analysis.test_explore import DiamondTrap
from tests.certify.gadgets import register_gadgets

register_gadgets()

#: (name, protocol factory, inputs, task, explore max_steps)
CORPUS = [
    (
        "truncated-2",
        lambda: TruncatedProtocol(RacingConsensus(2), 1),
        [0, 1], KSetAgreementTask(1), None,
    ),
    (
        "truncated-3",
        lambda: TruncatedProtocol(RacingConsensus(3), 1),
        [0, 1, 2], KSetAgreementTask(1), 12,
    ),
    (
        "diamond-trap",
        lambda: DiamondTrap(),
        [0, 1], KSetAgreementTask(1), 3,
    ),
]


def checksums(certificates):
    """The canonical identity of a certificate set."""
    return [
        (c.kind, c.checksum) for c in sorted_certificates(certificates)
    ]


@pytest.mark.parametrize(
    "name,factory,inputs,task,max_steps",
    CORPUS, ids=[entry[0] for entry in CORPUS],
)
class TestRoundTrip:
    def test_fuzz_certificates_roundtrip_and_verify(
        self, name, factory, inputs, task, max_steps
    ):
        report = fuzz_protocol(
            factory(), inputs, task, runs=120, schedule_length=30,
            seed=3, certificates=True,
        )
        assert report.violations, f"{name}: fuzz found no violation"
        assert report.certificates
        for certificate in report.certificates:
            restored = from_json(to_json(certificate))
            assert restored == certificate
            assert to_json(restored) == to_json(certificate)
            verdict = verify(restored)
            assert verdict.accepted, (name, verdict)

    def test_explore_certificates_roundtrip_and_verify(
        self, name, factory, inputs, task, max_steps
    ):
        report = explore_protocol(
            factory(), inputs, task, max_configs=50_000,
            max_steps=max_steps, certificates=True,
        )
        assert report.counterexample is not None
        (certificate,) = report.certificates
        restored = from_json(to_json(certificate))
        assert restored == certificate
        verdict = verify(restored)
        assert verdict.accepted, (name, verdict)
        assert certificate.payload["schedule"] == report.counterexample


class TestSerialVersusSharded:
    """Certificate sets are a deterministic function of the workload."""

    def test_fuzz_serial_and_campaign_certificates_match(self):
        protocol = TruncatedProtocol(RacingConsensus(2), 1)
        task = KSetAgreementTask(1)
        serial = fuzz_protocol(
            protocol, [0, 1], task, runs=80, schedule_length=40,
            seed=7, certificates=True,
        )
        for workers, chunk_size in ((1, 20), (2, 16), (3, 7)):
            result = fuzz_campaign(
                protocol, [0, 1], task, runs=80, schedule_length=40,
                seed=7, workers=workers, chunk_size=chunk_size,
                verify_certificates=True,
            )
            assert checksums(result.report.certificates) == checksums(
                serial.certificates
            ), (workers, chunk_size)

    def test_explore_serial_and_campaign_certificates_match(self):
        protocol = TruncatedProtocol(RacingConsensus(3), 1)
        task = KSetAgreementTask(1)
        serial = explore_protocol(
            protocol, [0, 1, 2], task, max_configs=50_000, max_steps=12,
            prefix_depth=2, certificates=True,
        )
        result = explore_campaign(
            protocol, [0, 1, 2], task, max_configs=50_000, max_steps=12,
            prefix_depth=2, workers=2, verify_certificates=True,
        )
        assert serial.certificates
        assert checksums(result.report.certificates) == checksums(
            serial.certificates
        )

    def test_sweep_serial_and_campaign_certificates_match(self):
        protocol = TruncatedProtocol(RacingConsensus(2), 1)
        task = KSetAgreementTask(1)
        serial = sweep_protocol(
            protocol, [0, 1], list(range(10)), task=task,
            max_steps=400_000, certificates=True,
        )
        result = sweep_protocol_campaign(
            protocol, [0, 1], range(10), task=task, max_steps=400_000,
            workers=2, chunk_size=3, verify_certificates=True,
        )
        assert serial.certificates
        assert checksums(result.report.certificates) == checksums(
            serial.certificates
        )

    def test_certificates_do_not_change_report_equality(self):
        """Carrying certificates must not perturb report comparisons
        (the differential suite asserts ``==`` and ``repr`` equality)."""
        protocol = TruncatedProtocol(RacingConsensus(2), 1)
        task = KSetAgreementTask(1)
        plain = fuzz_protocol(
            protocol, [0, 1], task, runs=40, schedule_length=40, seed=7,
        )
        certified = fuzz_protocol(
            protocol, [0, 1], task, runs=40, schedule_length=40, seed=7,
            certificates=True,
        )
        assert plain == certified
        assert repr(plain) == repr(certified)
