"""Shared helpers for the serve test suite.

The tests drive a real :class:`~repro.serve.service.ServeApp` bound to
an ephemeral port, with the scheduler's ``thread`` executor so chunk
bodies run in-process (no fork-from-test surprises, fast startup).
There is no pytest-asyncio in the toolchain, so each test owns its loop
via ``asyncio.run`` and the helpers here keep that terse:

* :func:`running_app` — async context manager yielding a started
  ``(app, client)`` pair and tearing both down;
* :func:`call` — run one *blocking* client method on a worker thread so
  it cannot deadlock against the server sharing the test's event loop.
"""

import asyncio
import contextlib
import functools

from repro.serve import (
    JobStore,
    Scheduler,
    ServeApp,
    ServeClient,
    TenantQuotas,
)


async def call(fn, *args, **kwargs):
    """Run a blocking client call without blocking the server's loop."""
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, functools.partial(fn, *args, **kwargs)
    )


@contextlib.asynccontextmanager
async def running_app(state_dir, *, workers=2, quotas=None,
                      api_key=None):
    """A started service over ``state_dir`` and a client pointed at it."""
    store = JobStore(str(state_dir))
    scheduler = Scheduler(
        store, workers=workers, executor="thread",
        quotas=quotas or TenantQuotas(),
    )
    app = ServeApp(store, scheduler)
    port = await app.start(port=0)
    client = ServeClient("127.0.0.1", port, api_key=api_key)
    try:
        yield app, client
    finally:
        await app.stop()


async def wait_state(client, job_id, states, timeout=120.0):
    """Poll (off-loop) until the job reaches one of ``states``."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        status = await call(client.status, job_id)
        if status["state"] in states:
            return status
        if loop.time() > deadline:
            raise AssertionError(
                f"job {job_id} stuck in {status['state']!r}; wanted "
                f"{states}"
            )
        await asyncio.sleep(0.02)
