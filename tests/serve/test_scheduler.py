"""Fair scheduling and tenant quotas over the shared pool."""

import asyncio

import pytest

from repro.serve import ServeClient, ServeClientError, TenantQuotas
from tests.serve.conftest import call, running_app, wait_state

#: A deliberately long campaign: 200 chunks of 2 seeds each.
SLOW_SPEC = {"experiment": "protocol", "seeds": 400, "chunk_size": 2}

#: A deliberately small campaign: 2 chunks.
SMALL_SPEC = {"experiment": "fuzz", "runs": 4, "chunk_size": 2}


class TestFairness:
    def test_small_job_finishes_while_slow_job_runs(self, tmp_path):
        """Round-robin interleaving: tenant B is never starved by A.

        Tenant A's 200-chunk sweep is submitted *first* and would, under
        FIFO draining, own every worker until it finished.  The fairness
        contract says tenant B's 2-chunk job completes while A is still
        mid-run.
        """
        async def scenario():
            async with running_app(tmp_path) as (_app, client):
                alice = ServeClient(client.host, client.port,
                                    api_key="tenant-a")
                bob = ServeClient(client.host, client.port,
                                  api_key="tenant-b")
                slow = (await call(alice.submit, SLOW_SPEC))["id"]
                small = (await call(bob.submit, SMALL_SPEC))["id"]

                final = await wait_state(bob, small, ("done", "failed"))
                assert final["state"] == "done"

                slow_status = await call(alice.status, slow)
                assert slow_status["state"] == "running", (
                    "the slow job monopolized the pool: it finished "
                    "before the 2-chunk job"
                )
                progress = slow_status["progress"]
                assert (
                    progress["completed_chunks"]
                    < progress["total_chunks"]
                )
                await call(alice.cancel, slow)

        asyncio.run(scenario())

    def test_inflight_quota_is_never_exceeded(self, tmp_path):
        """A tenant capped at 1 in-flight chunk never occupies 2 workers."""
        async def scenario():
            quotas = TenantQuotas(max_inflight_chunks=1,
                                  max_active_jobs=8)
            async with running_app(
                tmp_path, workers=4, quotas=quotas
            ) as (app, client):
                alice = ServeClient(client.host, client.port,
                                    api_key="tenant-a")
                job_id = (await call(alice.submit, {
                    "experiment": "fuzz", "runs": 60, "chunk_size": 3,
                }))["id"]
                peak = 0
                while True:
                    peak = max(
                        peak, app.scheduler.tenant_inflight("tenant-a")
                    )
                    status = app.scheduler.get(job_id)
                    if status is not None and status.job.terminal:
                        break
                    await asyncio.sleep(0.002)
                assert peak == 1

        asyncio.run(scenario())


class TestQuotas:
    def test_excess_job_gets_429_without_perturbing_running_jobs(
        self, tmp_path
    ):
        async def scenario():
            quotas = TenantQuotas(max_inflight_chunks=4,
                                  max_active_jobs=1)
            async with running_app(
                tmp_path, quotas=quotas
            ) as (_app, client):
                alice = ServeClient(client.host, client.port,
                                    api_key="tenant-a")
                bob = ServeClient(client.host, client.port,
                                  api_key="tenant-b")
                slow = (await call(alice.submit, SLOW_SPEC))["id"]

                with pytest.raises(ServeClientError) as exc:
                    await call(alice.submit, SMALL_SPEC)
                assert exc.value.status == 429

                # The rejection cost the running job nothing: it keeps
                # completing chunks afterwards ...
                before = (await call(alice.status, slow))[
                    "progress"]["completed_chunks"]
                deadline = asyncio.get_running_loop().time() + 60
                while True:
                    after = (await call(alice.status, slow))[
                        "progress"]["completed_chunks"]
                    if after > before:
                        break
                    assert (
                        asyncio.get_running_loop().time() < deadline
                    ), "running job stalled after a 429"
                    await asyncio.sleep(0.02)

                # ... and another tenant is unaffected by A's quota.
                small = (await call(bob.submit, SMALL_SPEC))["id"]
                final = await wait_state(bob, small, ("done",))
                assert final["state"] == "done"
                await call(alice.cancel, slow)

        asyncio.run(scenario())

    def test_quota_frees_when_jobs_finish(self, tmp_path):
        async def scenario():
            quotas = TenantQuotas(max_active_jobs=1)
            async with running_app(
                tmp_path, quotas=quotas
            ) as (_app, client):
                alice = ServeClient(client.host, client.port,
                                    api_key="tenant-a")
                first = (await call(alice.submit, SMALL_SPEC))["id"]
                await wait_state(alice, first, ("done",))
                second = (await call(alice.submit, SMALL_SPEC))["id"]
                await wait_state(alice, second, ("done",))

        asyncio.run(scenario())


class TestCancel:
    def test_cancel_stops_a_running_job(self, tmp_path):
        async def scenario():
            async with running_app(tmp_path) as (_app, client):
                job_id = (await call(client.submit, SLOW_SPEC))["id"]
                await wait_state(client, job_id, ("running",))
                cancelled = await call(client.cancel, job_id)
                assert cancelled["state"] == "cancelled"
                # Terminal states are sticky: cancelling again is a
                # no-op, and the job never becomes done.
                again = await call(client.cancel, job_id)
                assert again["state"] == "cancelled"
                await asyncio.sleep(0.1)
                status = await call(client.status, job_id)
                assert status["state"] == "cancelled"

        asyncio.run(scenario())
