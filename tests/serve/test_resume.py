"""The service durability contract: restarts lose nothing.

Two escalation levels:

* in-process — stop a running app mid-job (no drain, exactly the crash
  path), bring up a fresh scheduler over the same state directory, and
  demand the finished report be ``==``-identical to a batch baseline;
* subprocess — a real ``repro serve`` process SIGKILLed mid-job and
  restarted, driven entirely over HTTP (the miniature of
  ``tools/serve_drill.py`` that runs in tier-1).
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

from repro.campaign import run_campaign
from repro.serve import ServeClient
from repro.serve.client import read_server_address
from repro.serve.jobspec import JobSpec, build_job
from tests.serve.conftest import call, running_app, wait_state

SPEC = {"experiment": "protocol", "seeds": 40, "chunk_size": 2}


def baseline_report(spec_dict):
    """The uninterrupted batch-engine report for a spec."""
    spec = JobSpec.from_dict(spec_dict)
    return run_campaign(
        build_job(spec), workers=2, chunk_size=spec.chunk_size,
        verify_certificates=spec.verify_certificates,
    ).report


class TestInProcessRestart:
    def test_restarted_scheduler_resumes_to_identical_report(
        self, tmp_path
    ):
        async def scenario():
            async with running_app(tmp_path) as (_app, client):
                job_id = (await call(client.submit, SPEC))["id"]
                # Let it get some chunks done, then "crash" (stop
                # without drain).
                deadline = asyncio.get_running_loop().time() + 60
                while True:
                    status = await call(client.status, job_id)
                    done = status.get("progress", {}).get(
                        "completed_chunks", 0
                    )
                    if 1 <= done < 20:
                        break
                    assert status["state"] != "done", (
                        "job finished before the crash; enlarge SPEC"
                    )
                    assert (
                        asyncio.get_running_loop().time() < deadline
                    )
                    await asyncio.sleep(0.005)

            # The context exit stopped the app mid-job.  A fresh app
            # over the same state dir must recover and finish it.
            async with running_app(tmp_path) as (_app, client):
                status = await call(client.status, job_id)
                assert status["state"] in ("queued", "running", "done")
                final = await wait_state(client, job_id, ("done",))
                assert final["progress"]["completed_chunks"] == 20
                report = await call(client.report, job_id)
                return report

        report = asyncio.run(scenario())
        expected = baseline_report(SPEC)
        assert report == expected
        assert repr(report) == repr(expected)


def _start_server(state):
    """Start a real ``repro serve`` subprocess; wait for its address."""
    marker = os.path.join(state, "server.json")
    if os.path.exists(marker):
        os.unlink(marker)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.pathsep.join(filter(None, [
        os.path.abspath(src), env.get("PYTHONPATH"),
    ]))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state", state,
         "--port", "0", "--workers", "2"],
        env=env, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60
    while not os.path.exists(marker):
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited early: {process.returncode}"
            )
        assert time.monotonic() < deadline, "server never came up"
        time.sleep(0.05)
    address = read_server_address(state)
    client = ServeClient(address["host"], address["port"], timeout=30)
    while True:
        try:
            client.health()
            return process, client
        except Exception:
            assert time.monotonic() < deadline
            time.sleep(0.05)


class TestSigkillRestart:
    def test_sigkilled_server_resumes_to_identical_report(self, tmp_path):
        state = str(tmp_path)
        process, client = _start_server(state)
        try:
            job_id = client.submit(SPEC)["id"]
            deadline = time.monotonic() + 120
            while True:
                status = client.status(job_id)
                done = status.get("progress", {}).get(
                    "completed_chunks", 0
                )
                if 1 <= done < 20:
                    break
                assert status["state"] != "done", (
                    "job finished before the kill; enlarge SPEC"
                )
                assert time.monotonic() < deadline
                time.sleep(0.01)
        except BaseException:
            process.kill()
            raise
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=60)

        process, client = _start_server(state)
        try:
            final = client.wait(job_id, timeout=300)
            assert final["state"] == "done"
            report = client.report(job_id)
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
        expected = baseline_report(SPEC)
        assert report == expected
        assert repr(report) == repr(expected)
