"""JobSpec validation and the spec → campaign-job construction."""

import pytest

from repro.campaign import run_campaign
from repro.serve.jobspec import JobSpec, JobSpecError, build_job


class TestValidation:
    def test_defaults_match_cli(self):
        spec = JobSpec.from_dict({"experiment": "fuzz"})
        assert spec.runs == 200
        assert spec.schedule_length == 40
        assert spec.seeds == 50
        assert spec.packed is True
        assert spec.verify_certificates is False

    def test_round_trips_through_dict(self):
        spec = JobSpec.from_dict({
            "experiment": "explore", "scenario": "racing",
            "symmetry": True, "chunk_size": 7,
        })
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_unknown_experiment(self):
        with pytest.raises(JobSpecError, match="unknown experiment"):
            JobSpec.from_dict({"experiment": "mine-bitcoin"})

    def test_rejects_unknown_keys(self):
        with pytest.raises(JobSpecError, match="unknown job spec key"):
            JobSpec.from_dict({"experiment": "fuzz", "runz": 10})

    def test_rejects_missing_experiment(self):
        with pytest.raises(JobSpecError, match="experiment"):
            JobSpec.from_dict({"seeds": 10})

    def test_rejects_non_object(self):
        with pytest.raises(JobSpecError, match="JSON object"):
            JobSpec.from_dict(["fuzz"])

    def test_rejects_wrong_types(self):
        with pytest.raises(JobSpecError, match="must be an integer"):
            JobSpec.from_dict({"experiment": "fuzz", "runs": "many"})
        with pytest.raises(JobSpecError, match="must be a boolean"):
            JobSpec.from_dict({"experiment": "explore", "packed": 1})

    def test_rejects_out_of_range_sizes(self):
        with pytest.raises(JobSpecError, match="seeds"):
            JobSpec.from_dict({"experiment": "protocol", "seeds": 0})
        with pytest.raises(JobSpecError, match="runs"):
            JobSpec.from_dict({"experiment": "fuzz",
                               "runs": 100_000_000})

    def test_rejects_symmetry_without_packed(self):
        with pytest.raises(JobSpecError, match="symmetry"):
            JobSpec.from_dict({"experiment": "explore",
                               "symmetry": True, "packed": False})


class TestBuildJob:
    @pytest.mark.parametrize("spec_dict", [
        {"experiment": "falsify", "seeds": 4},
        {"experiment": "protocol", "protocol": "racing", "seeds": 4},
        {"experiment": "protocol", "protocol": "minseen", "seeds": 3},
        {"experiment": "fuzz", "runs": 8},
        {"experiment": "explore", "scenario": "racing",
         "max_configs": 500},
    ])
    def test_builds_runnable_jobs(self, spec_dict):
        job = build_job(JobSpec.from_dict(spec_dict))
        result = run_campaign(job, workers=1)
        assert result.complete
        assert result.report is not None

    def test_same_spec_builds_fingerprint_identical_jobs(self):
        # Checkpoint fingerprints must be stable across constructions —
        # that is what makes resume-after-restart accept the journal a
        # previous process wrote for the same persisted spec.
        from repro.campaign.checkpoint import job_fingerprint

        spec = JobSpec.from_dict({"experiment": "fuzz", "runs": 16})
        first = build_job(spec)
        second = build_job(spec)
        assert job_fingerprint(
            first, first.total_units(), 4
        ) == job_fingerprint(second, second.total_units(), 4)

    def test_verify_certificates_spec_runs_gated(self):
        spec = JobSpec.from_dict({
            "experiment": "falsify", "seeds": 4,
            "verify_certificates": True,
        })
        result = run_campaign(
            build_job(spec), workers=1,
            verify_certificates=spec.verify_certificates,
        )
        assert result.telemetry.certificates_verified > 0
