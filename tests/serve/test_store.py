"""The durable job store: atomic status files, event log, results."""

import json
import os

import pytest

from repro.campaign import run_campaign
from repro.serve.jobspec import JobSpec, build_job
from repro.serve.store import JobStore, ServeJob, StoreError

SPEC = JobSpec.from_dict({"experiment": "fuzz", "runs": 6})


class TestLifecycle:
    def test_create_save_load_round_trip(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        loaded = store.load(job.id)
        assert loaded.id == job.id
        assert loaded.tenant == "alice"
        assert loaded.spec == SPEC
        assert loaded.state == "queued"

    def test_transition_stamps_timestamps(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        assert job.started_at is None
        store.transition(job, "running")
        assert job.started_at is not None
        store.transition(job, "done")
        assert job.finished_at is not None
        assert store.load(job.id).state == "done"

    def test_terminal_jobs_refuse_transitions(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        store.transition(job, "cancelled")
        with pytest.raises(StoreError, match="already cancelled"):
            store.transition(job, "running")

    def test_unknown_state_rejected(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        with pytest.raises(StoreError, match="unknown job state"):
            store.transition(job, "paused")

    def test_recoverable_returns_only_non_terminal(self, tmp_path):
        store = JobStore(str(tmp_path))
        queued = store.create("a", SPEC)
        running = store.create("a", SPEC)
        store.transition(running, "running")
        finished = store.create("b", SPEC)
        store.transition(finished, "running")
        store.transition(finished, "done")
        recoverable = {job.id for job in store.recoverable()}
        assert recoverable == {queued.id, running.id}

    def test_list_skips_corrupt_job_dirs(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        bad = os.path.join(store.jobs_dir, "deadbeef")
        os.makedirs(bad)
        with open(os.path.join(bad, "job.json"), "w") as handle:
            handle.write("{not json")
        assert [j.id for j in store.list_jobs()] == [job.id]

    def test_rejects_foreign_schema_version(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        record = job.to_dict()
        record["schema_version"] = 99
        with pytest.raises(StoreError, match="schema_version"):
            ServeJob.from_dict(record)


class TestEvents:
    def test_append_and_read(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        store.append_event(job.id, {"event": "job-queued", "seq": 0})
        store.append_event(job.id, {"event": "chunk", "seq": 1})
        events = store.read_events(job.id)
        assert [event["event"] for event in events] == [
            "job-queued", "chunk",
        ]

    def test_truncated_last_line_is_skipped(self, tmp_path):
        # A crash can cut the final append short; replay must keep
        # every complete line and drop the torn one.
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        store.append_event(job.id, {"event": "job-queued", "seq": 0})
        with open(store.events_path(job.id), "a") as handle:
            handle.write('{"event": "chu')
        events = store.read_events(job.id)
        assert [event["event"] for event in events] == ["job-queued"]

    def test_missing_log_reads_empty(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert store.read_events("nothing") == []


class TestResults:
    def test_save_and_load_result(self, tmp_path):
        import pickle

        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        result = run_campaign(build_job(SPEC), workers=1)
        store.save_result(job, result)

        summary = store.load_result(job.id)
        assert summary["summary"] == result.report.summary()
        assert summary["complete"] is True
        assert summary["missing"] == []

        raw = store.load_report_pickle(job.id)
        assert pickle.loads(raw) == result.report

    def test_result_json_is_valid_json_on_disk(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.create("alice", SPEC)
        result = run_campaign(build_job(SPEC), workers=1)
        store.save_result(job, result)
        with open(store.result_path(job.id)) as handle:
            assert json.load(handle)["repr"] == repr(result.report)

    def test_absent_result_loads_none(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert store.load_result("nope") is None
        assert store.load_report_pickle("nope") is None
