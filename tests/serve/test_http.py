"""The stdlib HTTP layer: parsing, responses, and live routes."""

import asyncio
import http.client
import json

import pytest

from repro.serve.http import (
    HttpError,
    json_response,
    read_request,
    stream_head,
)
from tests.serve.conftest import call, running_app, wait_state


def parse(raw: bytes):
    """Feed raw bytes to the request parser on a private loop."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestParser:
    def test_parses_line_query_headers_body(self):
        request = parse(
            b"POST /jobs?tenant=a&x=1 HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 2\r\n"
            b"X-Api-Key: alice\r\n"
            b"\r\n{}"
        )
        assert request.method == "POST"
        assert request.path == "/jobs"
        assert request.query == {"tenant": "a", "x": "1"}
        assert request.headers["x-api-key"] == "alice"
        assert request.json() == {}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(b"BROKEN\r\n\r\n")
        assert exc.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as exc:
            parse(
                b"POST /jobs HTTP/1.1\r\n"
                b"Content-Length: 99999999\r\n\r\n"
            )
        assert exc.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as exc:
            parse(
                b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"
            )
        assert exc.value.status == 400

    def test_invalid_json_body_is_400(self):
        request = parse(
            b"POST /jobs HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
        )
        with pytest.raises(HttpError) as exc:
            request.json()
        assert exc.value.status == 400


class TestResponses:
    def test_json_response_shape(self):
        raw = json_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: close" in head
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_stream_head_has_no_length(self):
        head = stream_head()
        assert b"Content-Length" not in head
        assert b"application/x-ndjson" in head


class TestLiveRoutes:
    def test_health_unknown_routes_and_errors(self, tmp_path):
        async def scenario():
            async with running_app(tmp_path) as (_app, client):
                health = await call(client.health)
                assert health["ok"] is True
                assert health["executor"] == "thread"

                # Unknown path → 404; wrong method → 405; bad spec → 400.
                conn = http.client.HTTPConnection(
                    client.host, client.port, timeout=10
                )

                def raw(method, path, body=None):
                    conn.request(method, path, body=body)
                    response = conn.getresponse()
                    payload = json.loads(response.read() or b"{}")
                    return response.status, payload

                status, _ = await call(raw, "GET", "/nope")
                assert status == 404
                conn.close()

                status, _ = await call(raw, "DELETE", "/jobs")
                assert status == 405
                conn.close()

                status, payload = await call(
                    raw, "POST", "/jobs", b'{"experiment": "nope"}'
                )
                assert status == 400
                assert "unknown experiment" in payload["error"]
                conn.close()

                status, _ = await call(raw, "GET", "/jobs/zzz")
                assert status == 404
                conn.close()

        asyncio.run(scenario())

    def test_submit_status_events_report_round_trip(self, tmp_path):
        async def scenario():
            async with running_app(tmp_path) as (_app, client):
                submitted = await call(client.submit, {
                    "experiment": "fuzz", "runs": 12, "chunk_size": 4,
                })
                job_id = submitted["id"]
                assert submitted["state"] == "queued"

                final = await wait_state(client, job_id, ("done",))
                progress = final["progress"]
                assert progress["completed_chunks"] == 3
                assert progress["completed_units"] == 12

                events = await call(
                    lambda: list(client.events(job_id))
                )
                kinds = [event["event"] for event in events]
                assert kinds[0] == "job-queued"
                assert kinds[-1] == "job-done"
                assert kinds.count("chunk") == 3
                # seq is a stable cursor for ?since= pagination.
                assert [event["seq"] for event in events] == list(
                    range(len(events))
                )
                tail = await call(
                    lambda: list(client.events(job_id, since=2))
                )
                assert tail == events[2:]

                # The report round-trips through the pickle endpoint.
                report = await call(client.report, job_id)
                assert report.summary() in final["result"]["summary"]

                listed = await call(client.list_jobs)
                assert [job["id"] for job in listed] == [job_id]

        asyncio.run(scenario())

    def test_report_before_done_is_conflict(self, tmp_path):
        from repro.serve import ServeClientError

        async def scenario():
            async with running_app(tmp_path) as (_app, client):
                submitted = await call(client.submit, {
                    "experiment": "protocol", "seeds": 400,
                    "chunk_size": 2,
                })
                job_id = submitted["id"]
                try:
                    with pytest.raises(ServeClientError) as exc:
                        await call(client.result, job_id)
                    assert exc.value.status == 409
                finally:
                    await call(client.cancel, job_id)

        asyncio.run(scenario())
