"""Tests for the campaign service (:mod:`repro.serve`)."""
