"""Read-modify-write primitives: swap, test-and-set, compare-and-swap.

The paper proves its lower bound for read/write registers, but the
surrounding literature multiplies the question across base-object types:
Ovens (2023) proves an Ω(√n) consensus space bound *from swap objects*,
and the consensus hierarchy places test-and-set at level 2 and
compare-and-swap at level ∞.  These primitives let the same falsifier
machinery (exploration, covering, space measurement, certification) run
over those scenario families.

Each primitive applies one operation as a *single atomic step*, exactly
like :class:`~repro.memory.registers.Register`; :func:`apply_rmw` is the
shared pure semantics table, reused verbatim by the exploration core,
the solo-run simulator, and the protocol runtime so the three can never
disagree about what a swap returns.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.errors import ModelError
from repro.memory.snapshot import AtomicSnapshot

#: Operation names understood by :func:`apply_rmw` (and therefore by
#: every RMW-capable object and by the ``RMW`` poised kind of
#: :mod:`repro.protocols.base`).
RMW_OPS = ("swap", "test_and_set", "compare_and_swap")


def apply_rmw(op: str, current: Any, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
    """Pure semantics of one read-modify-write step.

    Returns ``(new_value, result)`` where ``new_value`` is what the
    component holds afterwards and ``result`` is what the invoking
    process observes.  All three operations return the *old* value, the
    standard convention:

    * ``swap(v)``: new value ``v``, returns the old value.
    * ``test_and_set()``: new value ``1``, returns the old value (a
      process "wins" iff it sees the unset value).
    * ``compare_and_swap(expected, new)``: new value ``new`` iff the old
      value equals ``expected`` (else unchanged), returns the old value
      (so success is ``result == expected``).
    """
    if op == "swap":
        (value,) = args
        return value, current
    if op == "test_and_set":
        if args:
            raise ModelError("test_and_set takes no arguments")
        return 1, current
    if op == "compare_and_swap":
        expected, new = args
        if current == expected:
            return new, current
        return current, current
    raise ModelError(f"unknown read-modify-write operation {op!r}")


class _RMWCell:
    """Shared machinery for one-word read-modify-write primitives.

    Subclasses fix which of the :data:`RMW_OPS` the object exposes; all
    of them also support ``read()`` (an RMW object is at least a
    register for reading purposes, which the conformance harness and the
    linearizability specs rely on).
    """

    #: Operations this object supports besides ``read``.
    ops: Tuple[str, ...] = ()

    def __init__(self, name: str, initial: Any = None) -> None:
        self.name = name
        self.initial = initial
        self.value = initial
        self.read_count = 0
        self.rmw_count = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, value={self.value!r})"

    def apply(self, pid: int, op: str, args: Tuple[Any, ...]) -> Any:
        """Atomically apply one supported operation as a single step."""
        if op == "read":
            self.read_count += 1
            return self.value
        if op in self.ops:
            self.value, result = apply_rmw(op, self.value, args)
            self.rmw_count += 1
            return result
        raise ModelError(
            f"{type(self).__name__} {self.name} has no operation {op!r}"
        )

    def register_count(self) -> int:
        """One base object occupies one cell of the space measure."""
        return 1


class Swap(_RMWCell):
    """An atomic swap object.

    Operations (via ``apply``):
        * ``swap(v)`` -> atomically writes ``v`` and returns the old value.
        * ``read()`` -> current contents.

    This is the base object of Ovens (2023)'s Ω(√n) consensus bound: a
    swap is a write that also tells the writer what it overwrote.
    """

    ops = ("swap",)


class TestAndSet(_RMWCell):
    """An atomic test-and-set bit.

    Operations (via ``apply``):
        * ``test_and_set()`` -> atomically sets the bit to 1 and returns
          the old value; the caller "wins" iff it saw the initial value.
        * ``read()`` -> current contents.
        * ``reset()`` -> restores the initial value (the standard
          resettable-TAS extension; returns the initial value).
    """

    ops = ("test_and_set",)

    def __init__(self, name: str, initial: Any = 0) -> None:
        super().__init__(name, initial)

    def apply(self, pid: int, op: str, args: Tuple[Any, ...]) -> Any:
        if op == "reset":
            if args:
                raise ModelError("reset takes no arguments")
            self.value = self.initial
            self.rmw_count += 1
            return self.initial
        return super().apply(pid, op, args)


class CompareAndSwap(_RMWCell):
    """An atomic compare-and-swap object.

    Operations (via ``apply``):
        * ``compare_and_swap(expected, new)`` -> atomically installs
          ``new`` iff the current value equals ``expected``; returns the
          old value either way (success iff the return equals
          ``expected``).
        * ``read()`` -> current contents.

    Consensus number ∞: n processes solve consensus by CAS-ing their
    input over the initial value and adopting whatever won.
    """

    ops = ("compare_and_swap",)


class RMWSnapshot(AtomicSnapshot):
    """An atomic snapshot whose components also support RMW steps.

    This is the shared memory ``M`` of a protocol that uses swap /
    test-and-set / compare-and-swap base objects: ``scan`` and ``update``
    behave exactly as on :class:`~repro.memory.snapshot.AtomicSnapshot`,
    and ``rmw(j, op, args)`` atomically applies one :func:`apply_rmw`
    step to component ``j`` and returns its result.  Protocols that
    never issue an ``rmw`` step see a plain snapshot, so this is a
    drop-in replacement in :func:`~repro.protocols.base.run_protocol`.
    """

    def __init__(self, name: str, components: int, initial: Any = None) -> None:
        super().__init__(name, components, initial)
        self.rmw_count = 0

    def __repr__(self) -> str:
        return f"RMWSnapshot({self.name!r}, m={self.m})"

    def apply(self, pid: int, op: str, args: Tuple[Any, ...]) -> Any:
        """Atomically apply scan()/update(j, v)/rmw(j, op, args)."""
        if op == "rmw":
            component, rmw_op, rmw_args = args
            self._check_index(component)
            new_value, result = apply_rmw(
                rmw_op, self.values[component], tuple(rmw_args)
            )
            self.values[component] = new_value
            self._view = None
            self.rmw_count += 1
            return result
        return super().apply(pid, op, args)
