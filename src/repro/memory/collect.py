"""The collect object — the paper's analogy for Block-Update.

Section 3 justifies the augmented snapshot's non-linearizable Block-Update
by analogy: "a collect operation [Bea86, ALS94] is not linearizable, but
the individual reads that comprise it are."  This module supplies that
object so the analogy is executable: a :class:`Collect` over one
single-writer register per process, whose

* ``store`` is a single atomic write, and
* ``collect`` is a plain read of every register, one step at a time, with
  **no** double-collect retry loop — so it admits the classic *new-old
  inversion*: a collect can observe a new value in one component and, in a
  later-read component, miss an older write that precedes it.

Tests demonstrate the inversion concretely and show the linearizability
checker rejecting collect-as-snapshot histories while accepting the
component reads individually — exactly the status Figure 1's Block-Update
has with respect to its Updates.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Sequence, Tuple

from repro.errors import ModelError
from repro.memory.registers import Register
from repro.runtime.events import Annotate, Invoke

COLLECT_OP_TAG = "object.op"


class Collect:
    """A store/collect object over one single-writer register per process."""

    def __init__(self, name: str, writers: Sequence[int], initial: Any = None):
        self.name = name
        self.writers = list(writers)
        if len(set(self.writers)) != len(self.writers):
            raise ModelError("duplicate writer pids")
        self.registers: Dict[int, Register] = {
            pid: Register(f"{name}.R[{pid}]", initial=initial, writer=pid)
            for pid in self.writers
        }
        self._op_counter = 0

    def register_count(self) -> int:
        """One register per writer."""
        return len(self.registers)

    def _next_op_id(self) -> str:
        self._op_counter += 1
        return f"{self.name}#{self._op_counter}"

    def _marker(self, phase: str, op: str, op_id: str, **extra) -> Annotate:
        payload = {"object": self.name, "phase": phase, "op": op,
                   "op_id": op_id}
        payload.update(extra)
        return Annotate(COLLECT_OP_TAG, payload)

    def store(self, pid: int, value: Any) -> Generator[Any, Any, None]:
        """Atomically write the caller's own register (one step)."""
        if pid not in self.registers:
            raise ModelError(f"pid {pid} is not a writer of {self.name}")
        slot = self.writers.index(pid)
        op_id = self._next_op_id()
        yield self._marker("begin", "update", op_id, args=(slot, value))
        yield Invoke(self.registers[pid], "write", (value,))
        yield self._marker("end", "update", op_id, result=None)
        return None

    def collect(self, pid: int) -> Generator[Any, Any, Tuple[Any, ...]]:
        """Read every register once, in writer order.  NOT atomic."""
        op_id = self._next_op_id()
        yield self._marker("begin", "scan", op_id)
        values: List[Any] = []
        for writer in self.writers:
            values.append((yield Invoke(self.registers[writer], "read")))
        view = tuple(values)
        yield self._marker("end", "scan", op_id, result=view)
        return view
