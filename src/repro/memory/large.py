"""A large register built from small ones (Wei 2018 style).

Wei (2018) analyzes the space complexity of implementing an ℓ-valued
register from binary registers; the classic unary construction (due to
Lamport, and the baseline Wei's bounds are measured against) builds a
single-writer ℓ-valued *regular* register from ℓ single-writer binary
registers:

* bit array ``A[0..ℓ-1]``, initially ``A[v0] = 1`` and all others 0;
* ``write(v)``: set ``A[v] := 1``, then clear ``A[v-1], ..., A[0]``
  downward;
* ``read()``: probe ``A[0], A[1], ...`` upward and return the index of
  the first set bit.

The opposite sweep directions are the whole trick: a reader climbing up
can never overtake the writer's downward clearing sweep without passing
the bit the writer set first, so every read returns the value of an
overlapping or immediately preceding write (*regularity*) — but two
sequential reads concurrent with one write may observe new-then-old
(no atomicity), which is why this object is checked by the regularity
harness rather than the linearizability checker.

Like :class:`~repro.memory.afek.AfekSnapshot`, this is a *composed*
object: ``read``/``write`` are generators yielding one primitive
register step at a time, so schedulers interleave them freely and the
regularity of the construction is a theorem the test suite checks, not
an assumption.  The bounded-exhaustive counterpart is
:class:`~repro.protocols.largereg.LargeRegisterEmulation`, which
expresses the same sweeps in scan/update normal form so the falsifier
can enumerate every interleaving.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from repro.errors import ModelError
from repro.memory.afek import OBJECT_OP_TAG  # noqa: F401  (re-exported)
from repro.memory.registers import Register
from repro.runtime.events import Annotate, Invoke


class LargeRegister:
    """Single-writer ℓ-valued regular register from ℓ binary registers.

    ``domain`` is ℓ (values are ``0..domain-1``); ``writer`` is the only
    pid allowed to write.  ``initial`` selects the pre-set bit.
    """

    def __init__(
        self, name: str, domain: int, writer: int, initial: int = 0
    ) -> None:
        if domain < 1:
            raise ModelError("large register needs a non-empty domain")
        if not 0 <= initial < domain:
            raise ModelError(
                f"initial value {initial} outside domain 0..{domain - 1}"
            )
        self.name = name
        self.domain = domain
        self.writer = writer
        self.initial = initial
        self.bits: List[Register] = [
            Register(
                f"{name}.A[{j}]",
                initial=1 if j == initial else 0,
                writer=writer,
            )
            for j in range(domain)
        ]
        self._op_counter = 0

    def __repr__(self) -> str:
        return f"LargeRegister({self.name!r}, domain={self.domain})"

    def register_count(self) -> int:
        """ℓ binary registers — the cost Wei (2018) charges this design."""
        return self.domain

    def _marker(self, phase: str, op: str, op_id: str, **extra) -> Annotate:
        payload = {"object": self.name, "phase": phase, "op": op,
                   "op_id": op_id}
        payload.update(extra)
        return Annotate(OBJECT_OP_TAG, payload)

    def _next_op_id(self) -> str:
        self._op_counter += 1
        return f"{self.name}#{self._op_counter}"

    # ------------------------------------------------------------------
    def write(self, pid: int, value: int) -> Generator[Any, Any, None]:
        """Set bit ``value``, then clear the bits below it, downward."""
        if pid != self.writer:
            raise ModelError(
                f"large register {self.name} is single-writer for pid "
                f"{self.writer}; pid {pid} tried to write"
            )
        if not 0 <= value < self.domain:
            raise ModelError(
                f"value {value} outside domain 0..{self.domain - 1} of "
                f"large register {self.name}"
            )
        op_id = self._next_op_id()
        yield self._marker("begin", "write", op_id, args=(value,))
        yield Invoke(self.bits[value], "write", (1,))
        for j in range(value - 1, -1, -1):
            yield Invoke(self.bits[j], "write", (0,))
        yield self._marker("end", "write", op_id, result=None)
        return None

    def read(self, pid: int) -> Generator[Any, Any, int]:
        """Probe bits upward; return the index of the first set bit."""
        op_id = self._next_op_id()
        yield self._marker("begin", "read", op_id)
        for j in range(self.domain):
            bit = yield Invoke(self.bits[j], "read")
            if bit:
                yield self._marker("end", "read", op_id, result=j)
                return j
        # Unreachable when used single-writer: the writer sets the new
        # bit before clearing lower ones, so the upward probe always
        # crosses a set bit.  Surface the impossible case loudly.
        raise ModelError(
            f"large register {self.name}: read found no set bit"
        )

    def view(self) -> Tuple[int, ...]:
        """Current raw bit contents (test/analysis helper, not a step)."""
        return tuple(bit.value for bit in self.bits)
