"""Atomic snapshot objects, used as single steps.

The paper assumes (Section 2, "Atomic Snapshots") that protocols may use an
m-component multi-writer atomic snapshot whose ``update`` and ``scan`` count
as single steps, because [AAD+93] shows such an object is implementable
wait-free from m registers.  :class:`AtomicSnapshot` is that assumed object;
:class:`~repro.memory.afek.AfekSnapshot` is the implementation that justifies
it (checked by the linearizability test suite).

:class:`SingleWriterSnapshot` restricts component ``i`` to writer ``i`` —
the flavour used for the history object ``H`` in Figure 1.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.errors import ModelError


class AtomicSnapshot:
    """An m-component multi-writer atomic snapshot.

    Operations:
        * ``update(j, v)`` — atomically set component ``j`` to ``v``.
        * ``scan()`` — atomically read all components; returns a tuple.

    Space: counts as ``m`` registers, per the [AAD+93] construction.
    """

    def __init__(self, name: str, components: int, initial: Any = None) -> None:
        if components < 1:
            raise ModelError("snapshot needs at least one component")
        self.name = name
        self.m = components
        self.values: List[Any] = [initial] * components
        # Scans of an unchanged snapshot return the *same* tuple object, so
        # downstream equality checks (the double collect in Figure 1) and
        # identity-keyed caches are cheap.  Invalidated on every update.
        self._view: Any = tuple(self.values)
        self.update_count = 0
        self.scan_count = 0

    def __repr__(self) -> str:
        return f"AtomicSnapshot({self.name!r}, m={self.m})"

    def apply(self, pid: int, op: str, args: Tuple[Any, ...]) -> Any:
        """Atomically apply scan()/update(j, v)."""
        if op == "scan":
            self.scan_count += 1
            view = self._view
            if view is None:
                view = self._view = tuple(self.values)
            return view
        if op == "update":
            index, value = args
            self._check_index(index)
            self.values[index] = value
            self._view = None
            self.update_count += 1
            return None
        raise ModelError(f"snapshot {self.name} has no operation {op!r}")

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.m:
            raise ModelError(
                f"component {index} out of range for {self.m}-component "
                f"snapshot {self.name}"
            )

    def register_count(self) -> int:
        """Counts as m registers, per the [AAD+93] construction."""
        return self.m

    def view(self) -> Tuple[Any, ...]:
        """Current contents (test/analysis helper, not a model step)."""
        return tuple(self.values)


class SingleWriterSnapshot(AtomicSnapshot):
    """An n-component snapshot where only process ``i`` updates component ``i``.

    Components are indexed by pid via an explicit ``writers`` sequence, so a
    subset of system pids can share the object (e.g. the k+1 simulators).
    """

    def __init__(
        self,
        name: str,
        writers: Sequence[int],
        initial: Any = None,
    ) -> None:
        super().__init__(name, components=len(writers), initial=initial)
        self.writers = list(writers)
        self._slot = {pid: i for i, pid in enumerate(self.writers)}
        if len(self._slot) != len(self.writers):
            raise ModelError("duplicate writer pids")

    def __repr__(self) -> str:
        return f"SingleWriterSnapshot({self.name!r}, writers={self.writers})"

    def slot_of(self, pid: int) -> int:
        """The component index owned by ``pid``."""
        try:
            return self._slot[pid]
        except KeyError:
            raise ModelError(
                f"pid {pid} has no component in snapshot {self.name}"
            ) from None

    def apply(self, pid: int, op: str, args: Tuple[Any, ...]) -> Any:
        """Like AtomicSnapshot.apply, enforcing the single-writer rule."""
        if op == "update":
            index, _value = args
            if self._slot.get(pid) != index:
                raise ModelError(
                    f"pid {pid} tried to update component {index} of "
                    f"single-writer snapshot {self.name}"
                )
        return super().apply(pid, op, args)
