"""Read/write registers, the base objects of the space-complexity model.

The paper's space measure is "number of registers used in any execution";
:meth:`Register.register_count` and :meth:`RegisterArray.register_count`
report exactly that, with arrays lazily allocating cells so that the
unbounded arrays ``L_{i,j}[b]`` of Figure 1 cost only what an execution
actually touches.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import ModelError


class Register:
    """A multi-writer multi-reader atomic register.

    Operations (via ``apply``):
        * ``read()`` -> current contents
        * ``write(v)`` -> writes ``v``; returns ``v`` (the paper's Appendix A
          convention that writes return the value written).

    Optional access control: ``writer`` restricts writes to one pid and
    ``reader`` restricts reads to one pid, modelling the single-writer /
    single-reader registers of Figure 1.
    """

    def __init__(
        self,
        name: str,
        initial: Any = None,
        writer: Optional[int] = None,
        reader: Optional[int] = None,
    ) -> None:
        self.name = name
        self.value = initial
        self.writer = writer
        self.reader = reader
        self.write_count = 0
        self.read_count = 0

    def __repr__(self) -> str:
        return f"Register({self.name!r}, value={self.value!r})"

    def apply(self, pid: int, op: str, args: Tuple[Any, ...]) -> Any:
        """Atomically apply read()/write(v); enforces access control."""
        if op == "read":
            if self.reader is not None and pid != self.reader:
                raise ModelError(
                    f"register {self.name} is single-reader for pid "
                    f"{self.reader}; pid {pid} tried to read"
                )
            self.read_count += 1
            return self.value
        if op == "write":
            if self.writer is not None and pid != self.writer:
                raise ModelError(
                    f"register {self.name} is single-writer for pid "
                    f"{self.writer}; pid {pid} tried to write"
                )
            (value,) = args
            self.value = value
            self.write_count += 1
            return value
        raise ModelError(f"register {self.name} has no operation {op!r}")

    def register_count(self) -> int:
        """A register is one register."""
        return 1


class RegisterArray:
    """An unbounded array of registers, allocated lazily on first access.

    Models objects like the helping arrays ``L_{i,j}[0..]`` of Figure 1:
    semantically unbounded, but an execution only pays for the cells it
    touches.  Cells may carry the same single-writer/single-reader
    restrictions as :class:`Register`.

    Operations:
        * ``read(index)``
        * ``write(index, value)``
    """

    def __init__(
        self,
        name: str,
        initial: Any = None,
        writer: Optional[int] = None,
        reader: Optional[int] = None,
    ) -> None:
        self.name = name
        self.initial = initial
        self.writer = writer
        self.reader = reader
        self.cells: Dict[Any, Any] = {}
        self.write_count = 0
        self.read_count = 0

    def __repr__(self) -> str:
        return f"RegisterArray({self.name!r}, {len(self.cells)} cells touched)"

    def apply(self, pid: int, op: str, args: Tuple[Any, ...]) -> Any:
        """Atomically apply read(i)/write(i, v) on a lazily allocated cell."""
        if op == "read":
            if self.reader is not None and pid != self.reader:
                raise ModelError(
                    f"array {self.name} is single-reader for pid "
                    f"{self.reader}; pid {pid} tried to read"
                )
            (index,) = args
            self.read_count += 1
            return self.cells.get(index, self.initial)
        if op == "write":
            if self.writer is not None and pid != self.writer:
                raise ModelError(
                    f"array {self.name} is single-writer for pid "
                    f"{self.writer}; pid {pid} tried to write"
                )
            index, value = args
            self.cells[index] = value
            self.write_count += 1
            return value
        raise ModelError(f"array {self.name} has no operation {op!r}")

    def register_count(self) -> int:
        """Registers actually materialized (written at least once)."""
        return len(self.cells)
