"""Shared-memory objects.

Primitive objects (:class:`~repro.memory.registers.Register`,
:class:`~repro.memory.snapshot.AtomicSnapshot`, ...) have atomic operations:
each operation is a single step in an execution.  Composed objects
(:class:`~repro.memory.afek.AfekSnapshot`) are *implementations* built from
primitive objects; their methods are generators that yield one primitive
step at a time, so a scheduler can interleave them arbitrarily — which is
what makes their linearizability a theorem to check rather than an
assumption.
"""

from repro.memory.afek import AfekSnapshot
from repro.memory.large import LargeRegister
from repro.memory.registers import Register, RegisterArray
from repro.memory.rmw import (
    RMW_OPS,
    CompareAndSwap,
    RMWSnapshot,
    Swap,
    TestAndSet,
    apply_rmw,
)
from repro.memory.snapshot import AtomicSnapshot, SingleWriterSnapshot

__all__ = [
    "Register",
    "RegisterArray",
    "AtomicSnapshot",
    "SingleWriterSnapshot",
    "AfekSnapshot",
    "Swap",
    "TestAndSet",
    "CompareAndSwap",
    "RMWSnapshot",
    "LargeRegister",
    "RMW_OPS",
    "apply_rmw",
]
