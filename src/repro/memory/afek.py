"""Wait-free atomic snapshot implementations from registers [AAD+93].

The paper assumes snapshots "without loss of generality" because Afek,
Attiya, Dolev, Gafni, Merritt, and Shavit showed an m-component multi-writer
atomic snapshot is implementable from m registers, wait-free and
linearizably.  This module supplies that justification as running code:

* :class:`AfekSnapshot` — the classic single-writer construction: one
  register per process holding ``(value, seq, embedded_view)``; a scanner
  either sees two identical collects (a *direct* scan, linearized between
  them) or sees some writer move twice and *borrows* that writer's embedded
  view (which was taken inside the scanner's interval).
* :class:`AfekMWSnapshot` — the multi-writer variant over m registers, with
  changes attributed to ``(writer, seq)`` tags; a scanner that observes the
  same writer install two new values borrows the second value's embedded
  view.

Both are *composed* objects: their methods are generators yielding one
primitive register step at a time, so schedulers interleave them freely and
the linearizability checker can validate them against the
:class:`~repro.memory.snapshot.AtomicSnapshot` specification.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Sequence, Tuple

from repro.errors import ModelError
from repro.memory.registers import Register
from repro.runtime.events import Annotate, Invoke

#: Annotation tag for begin/end markers of composed-object operations; the
#: linearizability checker extracts histories from these.
OBJECT_OP_TAG = "object.op"


class AfekSnapshot:
    """Single-writer atomic snapshot from one register per writer.

    Register ``i`` holds ``(seq, value, view)`` where ``view`` is the result
    of the scan embedded in the writer's update.  ``scan`` and ``update`` are
    generator methods: drive them with ``yield from`` inside a process body.
    """

    def __init__(
        self, name: str, writers: Sequence[int], initial: Any = None
    ) -> None:
        self.name = name
        self.writers = list(writers)
        if len(set(self.writers)) != len(self.writers):
            raise ModelError("duplicate writer pids")
        self.initial = initial
        self.registers: Dict[int, Register] = {
            pid: Register(f"{name}.R[{pid}]", initial=(0, initial, None), writer=pid)
            for pid in self.writers
        }
        self._local_seq: Dict[int, int] = {pid: 0 for pid in self.writers}
        self._op_counter = 0

    def register_count(self) -> int:
        """One register per writer."""
        return len(self.registers)

    def _marker(self, phase: str, op: str, op_id: str, **extra) -> Annotate:
        payload = {"object": self.name, "phase": phase, "op": op,
                   "op_id": op_id}
        payload.update(extra)
        return Annotate(OBJECT_OP_TAG, payload)

    def _next_op_id(self) -> str:
        self._op_counter += 1
        return f"{self.name}#{self._op_counter}"

    # ------------------------------------------------------------------
    def _collect(self) -> Generator[Invoke, Any, Dict[int, Tuple]]:
        """Read every register once, in pid order."""
        collected: Dict[int, Tuple] = {}
        for pid in self.writers:
            collected[pid] = yield Invoke(self.registers[pid], "read")
        return collected

    def scan(self, pid: int) -> Generator[Invoke, Any, Tuple[Any, ...]]:
        """Wait-free linearizable scan; returns a tuple indexed by writer order."""
        op_id = self._next_op_id()
        yield self._marker("begin", "scan", op_id)
        view = yield from self._scan_inner(pid)
        yield self._marker("end", "scan", op_id, result=view)
        return view

    def _scan_inner(self, pid: int) -> Generator[Invoke, Any, Tuple[Any, ...]]:
        moved: Dict[int, int] = {w: 0 for w in self.writers}
        previous = yield from self._collect()
        while True:
            current = yield from self._collect()
            if all(previous[w][0] == current[w][0] for w in self.writers):
                # Two identical collects: a direct scan, linearizable between
                # the end of the first and the start of the second.
                return tuple(current[w][1] for w in self.writers)
            for w in self.writers:
                if previous[w][0] != current[w][0]:
                    moved[w] += 1
                    if moved[w] >= 2 and current[w][2] is not None:
                        # w completed an entire update during our scan; its
                        # embedded view was taken inside our interval.
                        return current[w][2]
            previous = current

    def update(
        self, pid: int, value: Any
    ) -> Generator[Invoke, Any, None]:
        """Wait-free linearizable update of the caller's own component."""
        if pid not in self.registers:
            raise ModelError(f"pid {pid} is not a writer of {self.name}")
        op_id = self._next_op_id()
        slot = self.writers.index(pid)
        yield self._marker("begin", "update", op_id, args=(slot, value))
        view = yield from self._scan_inner(pid)
        self._local_seq[pid] += 1
        yield Invoke(
            self.registers[pid], "write", ((self._local_seq[pid], value, view),)
        )
        yield self._marker("end", "update", op_id, result=None)
        return None


class AfekMWSnapshot:
    """Multi-writer m-component atomic snapshot from m registers.

    Register ``j`` holds ``(tag, value, view)`` where ``tag = (writer, seq)``
    uniquely identifies the installing update and ``view`` is the embedded
    scan taken by that update.  A scan terminates either with two identical
    collects (direct) or by borrowing from a writer observed to install two
    new values (its second embedded view lies inside the scan interval).
    Termination is guaranteed because each differing collect attributes at
    least one change to a writer, and with ``n`` writers some writer repeats
    after at most ``n + 1`` changes.
    """

    def __init__(
        self, name: str, components: int, initial: Any = None
    ) -> None:
        if components < 1:
            raise ModelError("snapshot needs at least one component")
        self.name = name
        self.m = components
        self.initial = initial
        self.registers: List[Register] = [
            Register(f"{name}.R[{j}]", initial=((None, 0), initial, None))
            for j in range(components)
        ]
        self._local_seq: Dict[int, int] = {}
        self._op_counter = 0

    def register_count(self) -> int:
        """Exactly m registers, as [AAD+93] promises."""
        return self.m

    def _marker(self, phase: str, op: str, op_id: str, **extra) -> Annotate:
        payload = {"object": self.name, "phase": phase, "op": op,
                   "op_id": op_id}
        payload.update(extra)
        return Annotate(OBJECT_OP_TAG, payload)

    def _next_op_id(self) -> str:
        self._op_counter += 1
        return f"{self.name}#{self._op_counter}"

    # ------------------------------------------------------------------
    def _collect(self) -> Generator[Invoke, Any, List[Tuple]]:
        collected: List[Tuple] = []
        for reg in self.registers:
            cell = yield Invoke(reg, "read")
            collected.append(cell)
        return collected

    def scan(self, pid: int) -> Generator[Invoke, Any, Tuple[Any, ...]]:
        """Wait-free linearizable scan of all m components."""
        op_id = self._next_op_id()
        yield self._marker("begin", "scan", op_id)
        view = yield from self._scan_inner(pid)
        yield self._marker("end", "scan", op_id, result=view)
        return view

    def _scan_inner(self, pid: int) -> Generator[Invoke, Any, Tuple[Any, ...]]:
        seen_writers: Dict[Any, int] = {}
        previous = yield from self._collect()
        while True:
            current = yield from self._collect()
            if all(previous[j][0] == current[j][0] for j in range(self.m)):
                return tuple(current[j][1] for j in range(self.m))
            for j in range(self.m):
                if previous[j][0] != current[j][0]:
                    writer = current[j][0][0]
                    seen_writers[writer] = seen_writers.get(writer, 0) + 1
                    if seen_writers[writer] >= 2 and current[j][2] is not None:
                        return current[j][2]
            previous = current

    def update(
        self, pid: int, component: int, value: Any
    ) -> Generator[Invoke, Any, None]:
        """Wait-free linearizable update of any component."""
        if not 0 <= component < self.m:
            raise ModelError(
                f"component {component} out of range for {self.name}"
            )
        op_id = self._next_op_id()
        yield self._marker("begin", "update", op_id, args=(component, value))
        view = yield from self._scan_inner(pid)
        seq = self._local_seq.get(pid, 0) + 1
        self._local_seq[pid] = seq
        yield Invoke(
            self.registers[component],
            "write",
            (((pid, seq), value, view),),
        )
        yield self._marker("end", "update", op_id, result=None)
        return None
