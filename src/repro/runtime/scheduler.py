"""Schedulers: the adversary that owns interleaving.

In asynchronous shared memory, "the adversary" is simply the entity that
decides which process takes the next step.  Each scheduler below is one
adversary family used in the paper and its surrounding literature:

* :class:`RoundRobinScheduler` — the fair synchronous-ish baseline.
* :class:`RandomScheduler` — a seeded stochastic adversary; drives the
  randomized interleaving search used by the correctness experiments.
* :class:`SoloScheduler` — runs one process alone (solo executions, used for
  obstruction-freedom and the Appendix A construction).
* :class:`ObstructionScheduler` — after an arbitrary prefix, lets a set of at
  most *x* processes run alone forever: the schedules under which an
  x-obstruction-free protocol must terminate.
* :class:`AdversarialScheduler` — replays an explicit script of process ids
  (with optional crash directives); used to build the hand-crafted bad
  executions from covering arguments and FLP-style proofs.

A scheduler's :meth:`~Scheduler.next_pid` receives the set of schedulable
process ids and returns the id of the process that takes the next step.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchedulerError


class Scheduler:
    """Base scheduler interface."""

    def next_pid(self, active: Sequence[int]) -> int:
        """Return the pid (from ``active``) that takes the next step."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset any internal position; called when a run starts."""


class RoundRobinScheduler(Scheduler):
    """Cycle through active processes in increasing pid order."""

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def reset(self) -> None:
        self._last = None

    def next_pid(self, active: Sequence[int]) -> int:
        if not active:
            raise SchedulerError("no active processes to schedule")
        ordered = sorted(active)
        if self._last is None:
            chosen = ordered[0]
        else:
            later = [pid for pid in ordered if pid > self._last]
            chosen = later[0] if later else ordered[0]
        self._last = chosen
        return chosen


class RandomScheduler(Scheduler):
    """Uniformly random choice among active processes, from an explicit seed.

    Optionally biased: ``weights`` maps pid -> relative weight, letting
    experiments model slow/fast processes without changing the model.
    """

    def __init__(self, seed: int, weights: Optional[dict] = None) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self._weights = dict(weights) if weights else None
        self._sorted_cache: Optional[tuple] = None

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._sorted_cache = None

    def next_pid(self, active: Sequence[int]) -> int:
        if not active:
            raise SchedulerError("no active processes to schedule")
        # `System.run` hands the scheduler the *same* list object every turn
        # until the READY set changes, so re-sorting it is pure waste; a
        # one-entry cache keyed by identity + contents skips that.  The
        # equality check keeps this exact even for callers that mutate a
        # list in place between turns.
        cached = self._sorted_cache
        if cached is not None and cached[0] is active and cached[1] == active:
            pids = cached[2]
        else:
            pids = sorted(active)
            self._sorted_cache = (active, list(active), pids)
        if self._weights:
            weights = [self._weights.get(pid, 1.0) for pid in pids]
            return self._rng.choices(pids, weights=weights, k=1)[0]
        return self._rng.choice(pids)


class SoloScheduler(Scheduler):
    """Run a single process alone.

    If the designated process finishes, scheduling stops (callers typically
    run with that process as the only one of interest).  If ``fallback`` is
    True, remaining active processes are scheduled round-robin once the solo
    process is done — convenient for draining a system.
    """

    def __init__(self, pid: int, fallback: bool = False) -> None:
        self.pid = pid
        self.fallback = fallback
        self._rr = RoundRobinScheduler()

    def reset(self) -> None:
        self._rr.reset()

    def next_pid(self, active: Sequence[int]) -> int:
        if self.pid in active:
            return self.pid
        if self.fallback and active:
            return self._rr.next_pid(active)
        raise SchedulerError(
            f"solo process {self.pid} is not active and fallback is disabled"
        )


class ObstructionScheduler(Scheduler):
    """An x-obstruction-free compliant adversary.

    Runs an arbitrary (seeded random) prefix of ``prefix_steps`` steps over
    all processes, then forever schedules only the processes in ``group``
    (at most *x* of them), round-robin.  Any x-obstruction-free protocol must
    have every member of ``group`` terminate under this scheduler.
    """

    def __init__(self, group: Iterable[int], prefix_steps: int, seed: int) -> None:
        self.group = sorted(set(group))
        if not self.group:
            raise SchedulerError("obstruction group must be non-empty")
        self.prefix_steps = prefix_steps
        self._seed = seed
        self._rng = random.Random(seed)
        self._count = 0
        self._rr = RoundRobinScheduler()

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._count = 0
        self._rr.reset()

    def next_pid(self, active: Sequence[int]) -> int:
        if not active:
            raise SchedulerError("no active processes to schedule")
        self._count += 1
        if self._count <= self.prefix_steps:
            return self._rng.choice(sorted(active))
        members = [pid for pid in active if pid in self.group]
        if members:
            return self._rr.next_pid(members)
        # Whole group finished; let the rest run so the system can drain.
        return self._rr.next_pid(active)


class AdversarialScheduler(Scheduler):
    """Replay an explicit schedule script.

    ``script`` is a sequence of pids, or ``("crash", pid)`` tuples.  When the
    script is exhausted, behaviour is controlled by ``then``: ``"roundrobin"``
    continues fairly, ``"stop"`` raises (ending the run at the script
    boundary).  Crash directives are consumed without using a step.

    ``skip_inactive=True`` silently drops scripted pids that have already
    finished instead of raising — useful when enumerating schedule prefixes
    over processes whose lifetimes the caller cannot predict.
    """

    def __init__(
        self,
        script: Sequence,
        then: str = "roundrobin",
        skip_inactive: bool = False,
    ) -> None:
        if then not in ("roundrobin", "stop"):
            raise SchedulerError(f"unknown continuation {then!r}")
        self.script: List = list(script)
        self.then = then
        self.skip_inactive = skip_inactive
        self._pos = 0
        self._rr = RoundRobinScheduler()
        self.pending_crashes: List[int] = []

    def reset(self) -> None:
        self._pos = 0
        self._rr.reset()
        self.pending_crashes = []

    def next_pid(self, active: Sequence[int]) -> int:
        # Consume crash directives eagerly; the system polls pending_crashes.
        while self._pos < len(self.script):
            entry = self.script[self._pos]
            if isinstance(entry, tuple) and entry[0] == "crash":
                self.pending_crashes.append(entry[1])
                self._pos += 1
                continue
            break
        while self._pos < len(self.script):
            pid = self.script[self._pos]
            self._pos += 1
            if pid in active:
                return pid
            if not self.skip_inactive:
                raise SchedulerError(
                    f"scripted pid {pid} is not active (active={sorted(active)})"
                )
            # Skipped; also consume any crash directives that follow.
            while self._pos < len(self.script):
                entry = self.script[self._pos]
                if isinstance(entry, tuple) and entry[0] == "crash":
                    self.pending_crashes.append(entry[1])
                    self._pos += 1
                    continue
                break
        if self.then == "roundrobin":
            return self._rr.next_pid(active)
        raise SchedulerError("adversarial script exhausted")


def interleavings(
    pids: Sequence[int], length: int
) -> Iterable[Tuple[int, ...]]:
    """Enumerate all schedule scripts of ``length`` steps over ``pids``.

    Exhaustive-exploration helper for small model-checking experiments; the
    number of scripts is ``len(pids) ** length``, so keep both small.
    """
    if length == 0:
        yield ()
        return
    for rest in interleavings(pids, length - 1):
        for pid in pids:
            yield (pid,) + rest
