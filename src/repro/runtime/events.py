"""Step requests and trace events.

A *step* in the model (Section 2 of the paper) is a single atomic operation
on a shared object.  Process bodies request steps by yielding
:class:`Invoke`; the system applies the operation atomically and sends the
response back into the generator.  :class:`Annotate` is a zero-cost marker
(it does not consume a scheduling step) used by composed objects to record
the begin/end of high-level operations, which the Appendix B linearization
analysis needs in order to know execution intervals.

Every applied step is recorded as an :class:`Event` in the system trace with
a globally unique, monotonically increasing sequence number.  The trace is
the ground truth from which all post-hoc analyses work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

# Invoke/Annotate/Event are plain ``__slots__`` classes rather than frozen
# dataclasses: one is allocated per applied step (plus one per annotation),
# so they sit on the runtime's hot path, and frozen-dataclass construction
# costs an ``object.__setattr__`` per field.  They keep dataclass-style
# value equality and repr; treat instances as immutable.


class Invoke:
    """A request to atomically apply ``op(*args)`` on a shared object.

    Attributes:
        obj: the target shared object; must expose ``apply(pid, op, args)``.
        op: operation name, e.g. ``"read"``, ``"write"``, ``"scan"``.
        args: positional arguments for the operation.
    """

    __slots__ = ("obj", "op", "args")

    def __init__(self, obj: Any, op: str, args: Tuple[Any, ...] = ()) -> None:
        self.obj = obj
        self.op = op
        self.args = args

    def __repr__(self) -> str:
        return (
            f"Invoke(obj={self.obj!r}, op={self.op!r}, args={self.args!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is not Invoke:
            return NotImplemented
        return (
            self.obj == other.obj
            and self.op == other.op
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash((self.obj, self.op, self.args))


class Annotate:
    """A zero-cost trace marker.

    Yielding an :class:`Annotate` records an event but does not consume the
    process's scheduling turn: the system immediately resumes the process.
    Used to mark operation boundaries (``"begin"``/``"end"`` of a Scan or
    Block-Update) and decisions.
    """

    __slots__ = ("tag", "payload")

    def __init__(self, tag: str, payload: Any = None) -> None:
        self.tag = tag
        self.payload = payload

    def __repr__(self) -> str:
        return f"Annotate(tag={self.tag!r}, payload={self.payload!r})"

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is not Annotate:
            return NotImplemented
        return self.tag == other.tag and self.payload == other.payload

    def __hash__(self) -> int:
        return hash((self.tag, self.payload))


class Event:
    """One entry of an execution trace.

    Attributes:
        seq: global sequence number; atomic steps of the whole execution are
            totally ordered by ``seq``.
        pid: identifier of the process that took the step.
        kind: ``"step"`` for an applied :class:`Invoke`, ``"annotate"`` for a
            marker, ``"crash"``/``"done"`` for lifecycle events.
        obj_name: name of the shared object accessed (steps only).
        op: operation name (steps only).
        args: operation arguments (steps only).
        result: the operation's response (steps only).
        tag: annotation tag (annotations only).
        payload: annotation payload (annotations only).
    """

    __slots__ = (
        "seq", "pid", "kind", "obj_name", "op", "args", "result", "tag",
        "payload",
    )

    def __init__(
        self,
        seq: int,
        pid: int,
        kind: str,
        obj_name: Optional[str] = None,
        op: Optional[str] = None,
        args: Tuple[Any, ...] = (),
        result: Any = None,
        tag: Optional[str] = None,
        payload: Any = None,
    ) -> None:
        self.seq = seq
        self.pid = pid
        self.kind = kind
        self.obj_name = obj_name
        self.op = op
        self.args = args
        self.result = result
        self.tag = tag
        self.payload = payload

    def _key(self) -> Tuple:
        return (
            self.seq, self.pid, self.kind, self.obj_name, self.op,
            self.args, self.result, self.tag, self.payload,
        )

    def __repr__(self) -> str:
        return (
            f"Event(seq={self.seq!r}, pid={self.pid!r}, kind={self.kind!r}, "
            f"obj_name={self.obj_name!r}, op={self.op!r}, args={self.args!r}, "
            f"result={self.result!r}, tag={self.tag!r}, "
            f"payload={self.payload!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is not Event:
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def is_step(self) -> bool:
        """True for applied shared-memory steps."""
        return self.kind == "step"

    def is_annotation(self) -> bool:
        """True for zero-cost trace markers."""
        return self.kind == "annotate"


@dataclass
class Trace:
    """A mutable, append-only execution trace.

    The trace mixes atomic steps and annotations; helpers select subsets.
    """

    events: list = field(default_factory=list)

    def append(self, event: Event) -> None:
        """Append one event (the runtime's only mutation point)."""
        self.events.append(event)

    def steps(self) -> list:
        """All atomic steps, in execution order."""
        return [e for e in self.events if e.is_step()]

    def annotations(self, tag: Optional[str] = None) -> list:
        """All annotations, optionally filtered by tag."""
        return [
            e
            for e in self.events
            if e.is_annotation() and (tag is None or e.tag == tag)
        ]

    def by_process(self, pid: int) -> list:
        """All events of one process, in order."""
        return [e for e in self.events if e.pid == pid]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
