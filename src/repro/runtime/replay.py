"""Exact-replay support: every execution is a reproducible artifact.

The runtime's determinism contract — processes are deterministic, all
nondeterminism lives in the scheduler — means the *schedule* (the sequence
of pids that took steps, with crash points) fully determines an execution.
This module extracts that schedule from a finished system's trace and
rebuilds a scheduler that reproduces the execution step for step, which is
how counterexamples in this repository are shipped: as data.
"""

from __future__ import annotations

from typing import Callable, List

from repro.runtime.scheduler import AdversarialScheduler
from repro.runtime.system import System


def extract_schedule(system: System) -> List:
    """The replayable schedule of a finished run: step pids and crashes."""
    schedule: List = []
    for event in system.trace:
        if event.is_step():
            schedule.append(event.pid)
        elif event.kind == "crash":
            schedule.append(("crash", event.pid))
    return schedule


def replay_scheduler(schedule: List) -> AdversarialScheduler:
    """A scheduler that reproduces ``schedule`` exactly, then stops."""
    return AdversarialScheduler(schedule, then="stop")


def replay_run(build_system: Callable[[], System], schedule: List):
    """Rebuild a system via ``build_system`` and replay ``schedule`` on it.

    Returns ``(system, result)``.  The caller's builder must construct the
    system (processes and fresh shared objects) identically to the original
    run; determinism then guarantees an identical trace.  The run is capped
    at exactly the schedule's step count, so prefix schedules replay
    cleanly too.
    """
    system = build_system()
    steps_needed = sum(1 for entry in schedule if not isinstance(entry, tuple))
    result = system.run(
        replay_scheduler(schedule),
        max_steps=steps_needed,
        on_limit="return",
    )
    return system, result


def traces_equal(a: System, b: System) -> bool:
    """Step-for-step equality of two runs (object, op, args, result, pid)."""
    steps_a = [
        (e.pid, e.obj_name, e.op, e.args, e.result) for e in a.trace.steps()
    ]
    steps_b = [
        (e.pid, e.obj_name, e.op, e.args, e.result) for e in b.trace.steps()
    ]
    return steps_a == steps_b
