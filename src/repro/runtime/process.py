"""Process wrapper over generator-based protocol bodies.

A process in the model is a deterministic sequential program whose only
interaction with the world is through atomic steps on shared objects.  Here a
process *body* is a Python generator function: it receives the
:class:`Process` handle, yields :class:`~repro.runtime.events.Invoke`
requests (one per atomic step) or :class:`~repro.runtime.events.Annotate`
markers (free), and terminates by returning (its return value, if any, is
recorded as the process output).

The wrapper tracks lifecycle: READY (can be scheduled), DONE (returned),
CRASHED (explicitly crashed by the scheduler, modelling a faulty process).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SchedulerError

READY = "ready"
DONE = "done"
CRASHED = "crashed"


class Process:
    """One sequential process.

    Attributes:
        pid: unique non-negative identifier.
        name: human-readable label for traces.
        output: the value returned by the body once DONE, else ``None``.
        steps_taken: number of atomic steps this process has performed.
    """

    def __init__(
        self,
        pid: int,
        body: Callable[["Process"], Generator],
        name: Optional[str] = None,
    ):
        self.pid = pid
        self.name = name if name is not None else f"p{pid}"
        self.output: Any = None
        self.steps_taken = 0
        self.status = READY
        self._generator = body(self)
        self._started = False
        self._pending: Any = None  # next Invoke/Annotate awaiting the system

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, status={self.status})"

    @property
    def is_active(self) -> bool:
        """True while the process can still be scheduled."""
        return self.status == READY

    def advance(self, response: Any = None) -> Any:
        """Resume the body with ``response`` and return its next request.

        Returns the next yielded item (Invoke/Annotate) or ``None`` when the
        body returned; in that case the process becomes DONE and its return
        value is captured in :attr:`output`.
        """
        if self.status != READY:
            raise SchedulerError(
                f"cannot advance process {self.pid} with status {self.status}"
            )
        try:
            if not self._started:
                self._started = True
                request = next(self._generator)
            else:
                request = self._generator.send(response)
        except StopIteration as stop:
            self.status = DONE
            self.output = stop.value
            return None
        return request

    def crash(self) -> None:
        """Mark the process crashed; it will never take another step."""
        if self.status == READY:
            self.status = CRASHED
            self._generator.close()
