"""The shared-memory system executor.

:class:`System` owns a set of processes and a trace, and runs them under a
scheduler one atomic step at a time.  Per scheduled turn, exactly one shared
memory operation is applied:

1. the chosen process is resumed with the response of its previously applied
   operation (local computation is free in the model);
2. zero-cost :class:`~repro.runtime.events.Annotate` markers it yields are
   recorded without consuming the turn;
3. the next :class:`~repro.runtime.events.Invoke` it yields is applied
   atomically, recorded in the trace, and its response is buffered for the
   process's next turn.

Between turns each process is therefore *poised* to perform a specific
pending operation — exactly the notion of "poised" used throughout the paper
(e.g. a covering process poised to update a component of M).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import DivergenceError, ModelError, SchedulerError
from repro.runtime.events import Annotate, Event, Invoke, Trace
from repro.runtime.process import DONE, READY, Process
from repro.runtime.scheduler import Scheduler


@dataclass
class ExecutionResult:
    """Outcome of a :meth:`System.run` call.

    Attributes:
        completed: True if every process is DONE or CRASHED.
        steps: total atomic steps applied during this run call.
        outputs: pid -> return value, for processes that are DONE.
        diverged: True if the run stopped because it hit ``max_steps``.
    """

    completed: bool
    steps: int
    outputs: Dict[int, Any] = field(default_factory=dict)
    diverged: bool = False


class System:
    """A shared-memory system: processes + objects + trace.

    Shared objects are not pre-registered; they are discovered from the
    operations applied to them, and must expose ``apply(pid, op, args)``,
    ``name`` and ``register_count()``.
    """

    def __init__(self) -> None:
        self.processes: Dict[int, Process] = {}
        self.trace = Trace()
        self._events = self.trace.events
        self.objects: Dict[str, Any] = {}
        self._seq = 0
        self._responses: Dict[int, Any] = {}
        # READY processes, maintained incrementally (insertion-ordered, so
        # iteration matches registration order).  Processes only ever
        # *leave* READY; `active_pids` prunes defensively in case a
        # Process was crashed behind the System's back.  The version
        # counter bumps on every READY-set change so `run` can reuse its
        # active list across turns.
        self._ready: Dict[int, Process] = {}
        self._ready_version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_process(
        self,
        body: Callable[[Process], Generator],
        pid: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Process:
        """Create and register a process running ``body``; returns it."""
        if pid is None:
            pid = len(self.processes)
        if pid in self.processes:
            raise ModelError(f"duplicate pid {pid}")
        proc = Process(pid, body, name=name)
        self.processes[pid] = proc
        if proc.status == READY:
            self._ready[pid] = proc
            self._ready_version += 1
        return proc

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_pids(self) -> List[int]:
        """Pids of processes that can still be scheduled."""
        ready = self._ready
        for proc in ready.values():
            if proc.status != READY:
                # Rare: a Process was crashed behind the System's back.
                stale = [pid for pid, p in ready.items() if p.status != READY]
                for pid in stale:
                    del ready[pid]
                self._ready_version += 1
                break
        return list(ready)

    def outputs(self) -> Dict[int, Any]:
        """pid -> output for all DONE processes."""
        return {
            pid: p.output for pid, p in self.processes.items() if p.status == DONE
        }

    def total_registers(self) -> int:
        """Total registers used by all shared objects touched so far."""
        return sum(obj.register_count() for obj in self.objects.values())

    def pending_operation(self, pid: int) -> Optional[Invoke]:
        """The operation ``pid`` is poised to perform, if any."""
        proc = self.processes.get(pid)
        if proc is None or proc.status != READY:
            return None
        return proc._pending

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def _pending(self) -> Dict[int, Invoke]:
        pending = {}
        for pid, proc in self._ready.items():
            if proc.status == READY and proc._pending is not None:
                pending[pid] = proc._pending
        return pending

    def crash(self, pid: int) -> None:
        """Crash a process (it permanently stops taking steps)."""
        proc = self.processes.get(pid)
        if proc is None:
            raise ModelError(f"unknown pid {pid}")
        proc.crash()
        if self._ready.pop(pid, None) is not None:
            self._ready_version += 1
        self._record_lifecycle(pid, "crash")

    def step(self, pid: int) -> bool:
        """Apply one atomic step of process ``pid``.

        Returns True if a shared-memory operation was applied, False if the
        process finished (or had no further operations) during this turn.
        """
        proc = self.processes.get(pid)
        if proc is None:
            raise ModelError(f"unknown pid {pid}")
        if proc.status != READY:
            raise SchedulerError(f"process {pid} is {proc.status}, cannot step")
        return self._step_ready(proc)

    def _step_ready(self, proc: Process) -> bool:
        """:meth:`step` after validation (caller checked READY)."""
        request = proc._pending
        if request is None:
            # First turn (or body yielded only annotations so far): drive the
            # body until it produces its first Invoke.
            request = self._drive(proc, None)
            if request is None:
                if self._ready.pop(proc.pid, None) is not None:
                    self._ready_version += 1
                return False

        # Apply the pending operation atomically.
        result = self._apply(proc, request)
        # Resume local computation; buffer the next pending operation.
        proc._pending = self._drive(proc, result)
        if proc.status != READY:
            if self._ready.pop(proc.pid, None) is not None:
                self._ready_version += 1
        return True

    def run(
        self,
        scheduler: Scheduler,
        max_steps: int = 100_000,
        on_limit: str = "return",
        stop_when: Optional[Callable[["System"], bool]] = None,
    ) -> ExecutionResult:
        """Run under ``scheduler`` until completion, limit, or predicate.

        Args:
            scheduler: interleaving policy; ``reset()`` is called first.
            max_steps: scheduler-turn budget for this call.  Most turns
                apply one atomic step, but a turn can also be consumed
                without one (a body that finishes without invoking, or a
                scheduler that keeps naming a just-crashed pid) — counting
                turns rather than applied steps is what guarantees the
                budget is always reachable, so ``run`` terminates even
                against a scheduler that never names a READY process.
            on_limit: ``"return"`` yields a diverged result; ``"raise"``
                raises :class:`~repro.errors.DivergenceError`.
            stop_when: optional predicate checked after every step; a truthy
                return stops the run early (not treated as divergence).
        """
        if on_limit not in ("return", "raise"):
            raise ModelError(f"unknown on_limit {on_limit!r}")
        scheduler.reset()
        steps = 0
        turns = 0
        active: List[int] = []
        active_version = self._ready_version - 1
        # Hot loop: bind attribute lookups once.  `pending_crashes` is read
        # from the scheduler's instance dict rather than getattr so the
        # common no-crash-support case is one dict probe, not a raised and
        # swallowed AttributeError; every scheduler that supports crash
        # directives sets it as an instance attribute.
        processes = self.processes
        next_pid = scheduler.next_pid
        sched_state = scheduler.__dict__
        step_ready = self._step_ready
        while True:
            if active_version != self._ready_version:
                active = self.active_pids()
                active_version = self._ready_version
                if not active:
                    return ExecutionResult(True, steps, self.outputs())
            if turns >= max_steps:
                if on_limit == "raise":
                    raise DivergenceError(
                        f"execution exceeded {max_steps} steps", steps_taken=steps
                    )
                return ExecutionResult(False, steps, self.outputs(), diverged=True)
            turns += 1
            pid = next_pid(active)
            victims = sched_state.get("pending_crashes")
            if victims:
                for victim in victims:
                    if processes[victim].status == READY:
                        self.crash(victim)
                scheduler.pending_crashes = []
            proc = processes[pid]
            if proc.status != READY:
                continue
            if step_ready(proc):
                steps += 1
            if stop_when is not None and stop_when(self):
                return ExecutionResult(
                    not self.active_pids(), steps, self.outputs()
                )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drive(self, proc: Process, response: Any) -> Optional[Invoke]:
        """Resume ``proc`` until it yields an Invoke; record annotations."""
        request = proc.advance(response)
        while request is not None:
            if isinstance(request, Invoke):
                return request
            if isinstance(request, Annotate):
                self._record_annotation(proc.pid, request)
                request = proc.advance(None)
                continue
            raise ModelError(
                f"process {proc.pid} yielded {type(request).__name__}; "
                "expected Invoke or Annotate"
            )
        self._record_lifecycle(proc.pid, "done")
        return None

    def _apply(self, proc: Process, request: Invoke) -> Any:
        obj = request.obj
        name = getattr(obj, "name", None)
        if name is None:
            raise ModelError("shared object has no name")
        if self.objects.get(name) is not obj:
            known = self.objects.setdefault(name, obj)
            if known is not obj:
                raise ModelError(f"two distinct shared objects named {name!r}")
        result = obj.apply(proc.pid, request.op, request.args)
        proc.steps_taken += 1
        self._seq += 1
        self._events.append(
            Event(self._seq, proc.pid, "step", name, request.op,
                  request.args, result)
        )
        return result

    def _record_annotation(self, pid: int, marker: Annotate) -> None:
        self._seq += 1
        self._events.append(
            Event(self._seq, pid, "annotate", None, None, (), None,
                  marker.tag, marker.payload)
        )

    def _record_lifecycle(self, pid: int, kind: str) -> None:
        self._seq += 1
        self._events.append(Event(self._seq, pid, kind))
