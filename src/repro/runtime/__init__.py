"""Asynchronous shared-memory runtime.

This package realizes the computation model of Section 2 of the paper: a set
of sequential processes that communicate only through atomic operations on
shared objects, scheduled by an adversary.  Processes are Python generators
that ``yield`` operation requests; a :class:`~repro.runtime.system.System`
paired with a :class:`~repro.runtime.scheduler.Scheduler` drives them one
atomic step at a time.  Because every interleaving decision flows through the
scheduler, executions are deterministic given a scheduler seed/script and can
be replayed, which is what lets the analysis tools (linearizability checking,
the Lemma 28 correspondence checker) treat executions as data.
"""

from repro.runtime.events import Annotate, Event, Invoke
from repro.runtime.process import CRASHED, DONE, READY, Process
from repro.runtime.scheduler import (
    AdversarialScheduler,
    ObstructionScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SoloScheduler,
)
from repro.runtime.system import ExecutionResult, System

__all__ = [
    "Annotate",
    "Event",
    "Invoke",
    "Process",
    "READY",
    "DONE",
    "CRASHED",
    "Scheduler",
    "RoundRobinScheduler",
    "RandomScheduler",
    "SoloScheduler",
    "ObstructionScheduler",
    "AdversarialScheduler",
    "System",
    "ExecutionResult",
]
