"""Schema-versioned benchmark artifacts (``BENCH_<name>.json``).

One artifact records one experiment's measurement: timing statistics
(median / inter-quartile range over the repeats), throughput, the
experiment's scalar metrics, and an environment fingerprint (python,
platform, cpu count, git sha) so a number can always be traced back to
the machine that produced it.  Artifacts are plain JSON with an explicit
``schema_version``; :func:`load_artifact` refuses to parse versions it
does not understand, which is what lets the comparator fail loudly on a
baseline written by an incompatible harness instead of mis-reading it.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import statistics
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.errors import BenchSchemaError

#: Current artifact schema version.  Bump on any incompatible change to
#: the JSON layout; the comparator treats a version mismatch as an error.
SCHEMA_VERSION = 1

#: Artifact filename prefix: artifacts are ``BENCH_<name>.json``.
ARTIFACT_PREFIX = "BENCH_"


@dataclass(frozen=True)
class EnvironmentFingerprint:
    """Where a measurement came from: interpreter, host, and revision."""

    python: str
    implementation: str
    platform: str
    cpu_count: int
    git_sha: str

    @classmethod
    def capture(cls, repo_root: Optional[pathlib.Path] = None
                ) -> "EnvironmentFingerprint":
        """Fingerprint the current interpreter, host, and git revision."""
        return cls(
            python=platform.python_version(),
            implementation=platform.python_implementation(),
            platform=platform.platform(),
            cpu_count=os.cpu_count() or 1,
            git_sha=_git_sha(repo_root),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, for embedding in artifact JSON."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EnvironmentFingerprint":
        """Rebuild a fingerprint from its :meth:`to_dict` form."""
        return cls(
            python=str(data["python"]),
            implementation=str(data["implementation"]),
            platform=str(data["platform"]),
            cpu_count=int(data["cpu_count"]),
            git_sha=str(data["git_sha"]),
        )


def _git_sha(repo_root: Optional[pathlib.Path] = None) -> str:
    """Short git sha of the working tree, or ``"unknown"`` outside git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_root) if repo_root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


def median_iqr(samples: Sequence[float]) -> Tuple[float, float]:
    """Median and inter-quartile range of a non-empty sample list.

    With fewer than two samples the IQR is 0.0 (there is no spread to
    measure); with two or three the quartiles come from
    :func:`statistics.quantiles` with inclusive edges, which is defined
    down to n=2.
    """
    if not samples:
        raise BenchSchemaError("median_iqr() needs at least one sample")
    med = statistics.median(samples)
    if len(samples) < 2:
        return med, 0.0
    q1, _q2, q3 = statistics.quantiles(samples, n=4, method="inclusive")
    return med, q3 - q1


@dataclass(frozen=True)
class BenchArtifact:
    """One experiment's measurement, as written to ``BENCH_<name>.json``."""

    experiment: str            # e.g. "E13"
    name: str                  # e.g. "campaign"
    title: str                 # one-line description
    mode: str                  # "quick" | "full"
    units: int                 # work units one payload run performs
    repeats: int
    warmup: int
    samples_seconds: Tuple[float, ...]
    median_seconds: float
    iqr_seconds: float
    units_per_second: float
    metrics: Dict[str, Any] = field(default_factory=dict)
    environment: EnvironmentFingerprint = field(
        default_factory=EnvironmentFingerprint.capture
    )
    created_unix: float = field(default_factory=time.time)
    schema_version: int = SCHEMA_VERSION

    @property
    def artifact_name(self) -> str:
        """Canonical ``<eid>_<name>`` stem, e.g. ``E13_campaign``."""
        return f"{self.experiment}_{self.name}"

    def filename(self) -> str:
        """The ``BENCH_<name>.json`` filename for this artifact."""
        return f"{ARTIFACT_PREFIX}{self.artifact_name}.json"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict, with the schema version first."""
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "name": self.name,
            "title": self.title,
            "mode": self.mode,
            "environment": self.environment.to_dict(),
            "created_unix": self.created_unix,
            "timing": {
                "units": self.units,
                "repeats": self.repeats,
                "warmup": self.warmup,
                "samples_seconds": list(self.samples_seconds),
                "median_seconds": self.median_seconds,
                "iqr_seconds": self.iqr_seconds,
                "units_per_second": self.units_per_second,
            },
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchArtifact":
        """Validate and rebuild an artifact from parsed JSON.

        Raises :class:`~repro.errors.BenchSchemaError` on a missing or
        unsupported ``schema_version``, missing keys, or ill-typed
        timing fields — the comparator turns these into hard failures.
        """
        if not isinstance(data, dict):
            raise BenchSchemaError(
                f"artifact must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise BenchSchemaError(
                f"unsupported artifact schema_version {version!r} "
                f"(this harness reads version {SCHEMA_VERSION})"
            )
        try:
            timing = data["timing"]
            samples = tuple(float(s) for s in timing["samples_seconds"])
            artifact = cls(
                experiment=str(data["experiment"]),
                name=str(data["name"]),
                title=str(data["title"]),
                mode=str(data["mode"]),
                units=int(timing["units"]),
                repeats=int(timing["repeats"]),
                warmup=int(timing["warmup"]),
                samples_seconds=samples,
                median_seconds=float(timing["median_seconds"]),
                iqr_seconds=float(timing["iqr_seconds"]),
                units_per_second=float(timing["units_per_second"]),
                metrics=dict(data.get("metrics", {})),
                environment=EnvironmentFingerprint.from_dict(
                    data["environment"]
                ),
                created_unix=float(data.get("created_unix", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise BenchSchemaError(
                f"malformed benchmark artifact: {error!r}"
            ) from error
        if not artifact.samples_seconds:
            raise BenchSchemaError(
                "malformed benchmark artifact: empty samples_seconds"
            )
        return artifact

    @classmethod
    def from_samples(
        cls,
        experiment: str,
        name: str,
        title: str,
        mode: str,
        units: int,
        warmup: int,
        samples_seconds: Sequence[float],
        metrics: Optional[Dict[str, Any]] = None,
        environment: Optional[EnvironmentFingerprint] = None,
    ) -> "BenchArtifact":
        """Build an artifact from raw per-repeat wall-time samples."""
        med, iqr = median_iqr(samples_seconds)
        return cls(
            experiment=experiment,
            name=name,
            title=title,
            mode=mode,
            units=units,
            repeats=len(samples_seconds),
            warmup=warmup,
            samples_seconds=tuple(samples_seconds),
            median_seconds=med,
            iqr_seconds=iqr,
            units_per_second=(units / med) if med > 0 else 0.0,
            metrics=dict(metrics or {}),
            environment=environment or EnvironmentFingerprint.capture(),
        )


def write_artifact(
    artifact: BenchArtifact, out_dir: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / artifact.filename()
    path.write_text(json.dumps(artifact.to_dict(), indent=2) + "\n")
    return path


def load_artifact(path: Union[str, pathlib.Path]) -> BenchArtifact:
    """Parse and schema-validate one ``BENCH_*.json`` file."""
    text = pathlib.Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise BenchSchemaError(f"{path}: not valid JSON: {error}") from error
    try:
        return BenchArtifact.from_dict(data)
    except BenchSchemaError as error:
        raise BenchSchemaError(f"{path}: {error}") from error


def load_artifact_dir(
    directory: Union[str, pathlib.Path]
) -> Dict[str, BenchArtifact]:
    """Load every ``BENCH_*.json`` in a directory, keyed by artifact name.

    Raises :class:`~repro.errors.BenchSchemaError` if the directory does
    not exist or any artifact in it fails schema validation (a corrupt
    baseline must fail the gate, not silently shrink it).
    """
    root = pathlib.Path(directory)
    if not root.is_dir():
        raise BenchSchemaError(f"no such artifact directory: {root}")
    artifacts: Dict[str, BenchArtifact] = {}
    for path in sorted(root.glob(f"{ARTIFACT_PREFIX}*.json")):
        artifact = load_artifact(path)
        artifacts[artifact.artifact_name] = artifact
    return artifacts
