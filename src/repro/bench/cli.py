"""CLI plumbing for the ``repro bench`` subcommands.

``repro bench list`` prints the experiment registry; ``repro bench run``
measures experiments and writes ``BENCH_*.json`` artifacts; ``repro
bench compare`` diffs a run against a baseline directory and exits
nonzero on a regression or a missing experiment, which is what CI uses
as its perf gate.

Exit codes: 0 success / gate passed; 1 gate failed; 2 usage error
(bad arguments, unreadable or schema-incompatible artifacts).
"""

from __future__ import annotations

import sys

from repro.errors import BenchSchemaError, ValidationError


def _split_selectors(raw) -> list:
    """Parse a repeatable/comma-separated ``--experiments`` value."""
    selectors = []
    for entry in raw or []:
        selectors.extend(s for s in entry.split(",") if s.strip())
    return selectors


def cmd_bench_list(args) -> int:
    """``repro bench list``: print the discoverable experiments."""
    from repro.bench.experiments import discover

    for experiment in discover():
        tag = " [campaign]" if experiment.campaign_backed else ""
        print(f"{experiment.eid:>4}  {experiment.name:<16} "
              f"{experiment.title}{tag}")
    return 0


def cmd_bench_run(args) -> int:
    """``repro bench run``: measure experiments, write artifacts."""
    from repro.bench.runner import run_experiments

    try:
        report = run_experiments(
            selectors=_split_selectors(args.experiments),
            quick=args.quick,
            repeats=args.repeats,
            warmup=args.warmup,
            out_dir=args.out,
            progress=print,
        )
    except (ValidationError, BenchSchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"wrote {len(report.paths)} artifact(s) to {args.out}")
    return 0


def cmd_bench_compare(args) -> int:
    """``repro bench compare``: regression-gate a run against a baseline."""
    from repro.bench.compare import compare_runs, mode_mismatch_warnings

    try:
        report = compare_runs(
            baseline_dir=args.baseline,
            current_dir=args.current,
            threshold=args.threshold,
            iqr_factor=args.iqr_factor,
            slowdown=args.slowdown,
            require_faster=_split_selectors(args.require_faster),
        )
        warnings = mode_mismatch_warnings(args.baseline, args.current)
    except (ValidationError, BenchSchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for warning in warnings:
        print(warning, file=sys.stderr)
    if args.slowdown != 1.0:
        print(f"(injected slowdown x{args.slowdown} applied to the "
              f"current medians)")
    print(report.summary())
    return 0 if report.ok else 1


def add_bench_parser(subparsers) -> None:
    """Attach the ``bench`` subcommand tree to the main repro parser."""
    bench = subparsers.add_parser(
        "bench",
        help="measure experiments, write BENCH_*.json, gate regressions",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    listing = bench_sub.add_parser(
        "list", help="print the discoverable experiments"
    )
    listing.set_defaults(func=cmd_bench_list)

    run = bench_sub.add_parser(
        "run", help="measure experiments and write BENCH_*.json artifacts"
    )
    run.add_argument(
        "--experiments", action="append", default=None, metavar="SEL",
        help="experiments to run (E13, campaign, E13_campaign; "
             "comma-separated or repeated; default: all)",
    )
    run.add_argument(
        "--quick", action="store_true",
        help="CI-sized parameterisation of each workload",
    )
    run.add_argument("--repeats", type=int, default=3,
                     help="timed repeats per experiment (default 3)")
    run.add_argument("--warmup", type=int, default=1,
                     help="untimed warmup runs per experiment (default 1)")
    run.add_argument("--out", default=".",
                     help="directory for BENCH_*.json (default: cwd)")
    run.set_defaults(func=cmd_bench_run)

    compare = bench_sub.add_parser(
        "compare",
        help="diff current BENCH_*.json against a baseline directory",
    )
    compare.add_argument("--baseline", default="baselines",
                         help="baseline artifact directory "
                              "(default: baselines)")
    compare.add_argument("--current", default=".",
                         help="current artifact directory (default: cwd)")
    compare.add_argument(
        "--threshold", type=float, default=None,
        help="regression threshold ratio (default 1.5)",
    )
    compare.add_argument(
        "--iqr-factor", type=float, default=None,
        help="IQR multiplier in the noise allowance (default 2.0)",
    )
    compare.add_argument(
        "--slowdown", type=float, default=1.0,
        help="multiply current medians by this factor (CI self-test "
             "knob proving the gate trips)",
    )
    compare.add_argument(
        "--require-faster", action="append", default=None, metavar="SEL",
        help="experiments whose verdict must be 'faster' (E14, explore, "
             "E14_explore; comma-separated or repeated); anything weaker "
             "fails the gate",
    )
    compare.set_defaults(func=_cmd_bench_compare_defaults)


def _cmd_bench_compare_defaults(args) -> int:
    """Fill late-bound defaults, then run the comparator command."""
    from repro.bench.compare import DEFAULT_IQR_FACTOR, DEFAULT_THRESHOLD

    if args.threshold is None:
        args.threshold = DEFAULT_THRESHOLD
    if args.iqr_factor is None:
        args.iqr_factor = DEFAULT_IQR_FACTOR
    return cmd_bench_compare(args)
