"""The benchmark harness: measured experiments as first-class artifacts.

The experiments of EXPERIMENTS.md (E1–E17) back every empirical claim
in this reproduction, but as pytest-benchmark tests their numbers lived
only in transient stdout.  This package turns them into the repo's
perf-regression backbone:

* :mod:`repro.bench.workloads` — each experiment's core workload as a
  plain callable (shared with ``benchmarks/bench_*.py``);
* :mod:`repro.bench.experiments` — the discovery registry mapping
  experiment ids to payloads with quick/full parameterisations;
* :mod:`repro.bench.runner` — ``repro bench run``: warmup/repeat
  measurement, median/IQR/throughput, environment fingerprint, and one
  schema-versioned ``BENCH_<name>.json`` per experiment;
* :mod:`repro.bench.schema` — the artifact format and its validation;
* :mod:`repro.bench.compare` — ``repro bench compare``: the noise-aware
  baseline regression gate CI runs (see docs/BENCHMARKS.md).

Campaign-backed experiments (E4, E13, E14) execute through
:mod:`repro.campaign`, so their artifacts record the engine's own
telemetry (mode, workers, utilization) alongside the timing.
"""

from repro.bench.compare import (
    DEFAULT_IQR_FACTOR,
    DEFAULT_THRESHOLD,
    Comparison,
    CompareReport,
    compare_artifacts,
    compare_runs,
)
from repro.bench.experiments import (
    Experiment,
    PayloadResult,
    discover,
    resolve,
)
from repro.bench.runner import (
    BenchTelemetry,
    RunReport,
    measure_experiment,
    run_experiments,
)
from repro.bench.schema import (
    ARTIFACT_PREFIX,
    SCHEMA_VERSION,
    BenchArtifact,
    EnvironmentFingerprint,
    load_artifact,
    load_artifact_dir,
    median_iqr,
    write_artifact,
)

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_PREFIX",
    "BenchArtifact",
    "EnvironmentFingerprint",
    "load_artifact",
    "load_artifact_dir",
    "median_iqr",
    "write_artifact",
    "Experiment",
    "PayloadResult",
    "discover",
    "resolve",
    "BenchTelemetry",
    "RunReport",
    "measure_experiment",
    "run_experiments",
    "Comparison",
    "CompareReport",
    "compare_artifacts",
    "compare_runs",
    "DEFAULT_THRESHOLD",
    "DEFAULT_IQR_FACTOR",
]
