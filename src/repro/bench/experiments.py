"""Discovery registry for the measurable experiments (E1–E17).

Each :class:`Experiment` binds an experiment id to a *payload*: a
callable taking ``quick`` (bool) and returning a :class:`PayloadResult`
with the number of work units performed plus the experiment's scalar
metrics.  ``quick`` selects a CI-sized parameterisation of the same
workload; ``full`` matches the EXPERIMENTS.md tables.  The runner times
payload calls from the outside — payloads only do work.

Campaign-backed experiments (E4, E13–E17) run through
:mod:`repro.campaign` and surface the engine's telemetry (mode, worker
count, utilization) in their metrics, so a ``BENCH_*.json`` records not
just *how fast* but *which execution path* produced the number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ValidationError


@dataclass(frozen=True)
class PayloadResult:
    """What one payload execution did: work units plus scalar metrics."""

    units: int
    metrics: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Experiment:
    """One discoverable experiment: id, name, and its payload callable."""

    eid: str                    # "E13"
    name: str                   # "campaign"
    title: str                  # one line, shown by `repro bench list`
    payload: Callable[[bool], PayloadResult]
    campaign_backed: bool = False

    @property
    def artifact_name(self) -> str:
        """Canonical ``<eid>_<name>`` stem used in artifact filenames."""
        return f"{self.eid}_{self.name}"

    def run(self, quick: bool) -> PayloadResult:
        """Execute the payload once at the requested scale."""
        return self.payload(quick)


_REGISTRY: Dict[str, Experiment] = {}


def _register(eid: str, name: str, title: str, campaign_backed: bool = False):
    """Decorator factory: register a payload function as an experiment."""

    def decorate(payload: Callable[[bool], PayloadResult]):
        experiment = Experiment(
            eid=eid, name=name, title=title, payload=payload,
            campaign_backed=campaign_backed,
        )
        _REGISTRY[eid] = experiment
        return payload

    return decorate


def discover() -> List[Experiment]:
    """All registered experiments, in numeric id order (E1, E2, …)."""
    return sorted(_REGISTRY.values(), key=lambda e: int(e.eid[1:]))


def resolve(selectors: Optional[List[str]]) -> List[Experiment]:
    """Resolve user selectors to experiments.

    Accepts ids (``E13``), names (``campaign``), or ``<eid>_<name>``
    stems, case-insensitively; ``None`` or an empty list selects every
    experiment.  Unknown selectors raise
    :class:`~repro.errors.ValidationError` listing what exists.
    """
    experiments = discover()
    if not selectors:
        return experiments
    by_key = {}
    for experiment in experiments:
        by_key[experiment.eid.lower()] = experiment
        by_key[experiment.name.lower()] = experiment
        by_key[experiment.artifact_name.lower()] = experiment
    chosen: List[Experiment] = []
    for selector in selectors:
        experiment = by_key.get(selector.strip().lower())
        if experiment is None:
            known = ", ".join(e.eid for e in experiments)
            raise ValidationError(
                f"unknown experiment {selector!r} (known: {known})"
            )
        if experiment not in chosen:
            chosen.append(experiment)
    return sorted(chosen, key=lambda e: int(e.eid[1:]))


def _campaign_metrics(result) -> Dict[str, Any]:
    """Engine telemetry worth persisting next to a campaign-backed number."""
    telemetry = result.telemetry
    return {
        "engine_workers": telemetry.workers,
        "engine_mode": telemetry.mode,
        "engine_chunks": len(telemetry.chunks),
        "engine_utilization": round(telemetry.utilization, 4),
        "engine_runs_per_second": round(telemetry.runs_per_second, 2),
    }


@_register("E1", "augmented",
           "Augmented snapshot: Appendix B lemma battery over schedules")
def run_e1(quick: bool) -> PayloadResult:
    """E1 payload: lemma-checked Scan/Block-Update schedules."""
    from repro.bench.workloads import augmented_sweep

    seeds = 4 if quick else 12
    steps, clean = augmented_sweep(seeds)
    return PayloadResult(
        units=steps, metrics={"schedules": clean, "violations": 0}
    )


@_register("E2", "bounds", "Theorem 3 bound table across the (n, k, x) grid")
def run_e2(quick: bool) -> PayloadResult:
    """E2 payload: compute the lower/upper bound grid."""
    from repro.bench.workloads import bounds_grid

    rows = bounds_grid(n_max=32 if quick else 64)
    tight = sum(1 for row in rows if row.tight)
    return PayloadResult(units=len(rows), metrics={"tight_rows": tight})


@_register("E3", "simulation",
           "Revisionist simulation, verified positive runs")
def run_e3(quick: bool) -> PayloadResult:
    """E3 payload: positive simulation runs across seeds."""
    from repro.bench.workloads import positive_simulation

    seeds = (31,) if quick else (31, 32, 33)
    steps = 0
    revisions = 0
    for seed in seeds:
        outcome = positive_simulation(k=2, x=1, m=3, seed=seed)
        steps += len(outcome.system.trace.steps())
        revisions += outcome.revision_count()
    return PayloadResult(
        units=steps, metrics={"runs": len(seeds), "revisions": revisions}
    )


@_register("E4", "falsifier",
           "Theorem 3 falsifier sweep through the campaign engine",
           campaign_backed=True)
def run_e4(quick: bool) -> PayloadResult:
    """E4 payload: under-provisioned consensus must violate on every seed."""
    from repro.bench.workloads import falsifier_sweep

    seeds = range(8 if quick else 30)
    _n, result = falsifier_sweep(k=1, x=1, m=1, seeds=seeds, workers=1)
    report = result.report
    assert report.safety_violations == report.runs
    metrics = {"violations": report.safety_violations}
    metrics.update(_campaign_metrics(result))
    return PayloadResult(units=report.runs, metrics=metrics)


@_register("E5", "solo_conversion",
           "Appendix A conversion: solo termination from all contents")
def run_e5(quick: bool) -> PayloadResult:
    """E5 payload: probe the converted machine's solo termination."""
    from repro.bench.workloads import solo_termination_probe

    repeats = 2 if quick else 8
    configurations = 0
    worst = 0
    for _ in range(repeats):
        probed, steps = solo_termination_probe()
        configurations += probed
        worst = max(worst, steps)
    return PayloadResult(
        units=configurations, metrics={"worst_solo_steps": worst}
    )


@_register("E6", "approx_steps",
           "Approximate agreement steps vs the Hoest–Shavit bound")
def run_e6(quick: bool) -> PayloadResult:
    """E6 payload: protocol step counts as ε shrinks."""
    from repro.bench.workloads import approx_steps_sweep

    exponents = (4, 8, 16) if quick else (4, 8, 16, 24)
    results = approx_steps_sweep(exponents)
    total = sum(b + a for b, a in results.values())
    worst = max(b for b, _a in results.values())
    return PayloadResult(
        units=total,
        metrics={"epsilons": len(results), "worst_bisection_steps": worst},
    )


@_register("E7", "approx_reduction",
           "Appendix D reduction: ε-independent simulator steps")
def run_e7(quick: bool) -> PayloadResult:
    """E7 payload: the two-simulator reduction across (m, ε)."""
    from repro.bench.workloads import approx_reduction_outcome

    ms = (1, 2) if quick else (1, 2, 3)
    total = 0
    for m in ms:
        counts = set()
        for exponent in (8, 16, 32):
            outcome = approx_reduction_outcome(m, 2.0 ** -exponent)
            counts.add(outcome.max_steps_taken)
            total += outcome.max_steps_taken
        # Lemma 33: from modest ε down the count depends on m alone.
        assert len(counts) == 1
    return PayloadResult(units=total, metrics={"m_values": len(ms)})


@_register("E8", "invariant", "Lemma 28 correspondence checker cost")
def run_e8(quick: bool) -> PayloadResult:
    """E8 payload: correspondence-check simulation traces."""
    from repro.bench.workloads import invariant_sweep

    seeds = 3 if quick else 10
    sigma, hidden = invariant_sweep(seeds)
    return PayloadResult(
        units=sigma, metrics={"runs": seeds, "hidden_steps": hidden}
    )


@_register("E9", "snapshot", "AADGMS snapshot-from-registers cost")
def run_e9(quick: bool) -> PayloadResult:
    """E9 payload: single-writer snapshot workload register steps."""
    from repro.bench.workloads import snapshot_single_writer

    n = 6 if quick else 10
    rounds = 3
    system = snapshot_single_writer(n, rounds, seed=99)
    steps = len(system.trace.steps())
    ops = n * rounds * 2
    return PayloadResult(
        units=ops, metrics={"register_steps": steps,
                            "steps_per_op": round(steps / ops, 2)}
    )


@_register("E10", "classical",
           "Classical baselines: FLP valence, covering, exhaustive check")
def run_e10(quick: bool) -> PayloadResult:
    """E10 payload: bivalence + covering + exhaustive falsification."""
    from repro.analysis import build_covering, classify_valence
    from repro.bench.workloads import classical_falsification
    from repro.protocols import RacingConsensus

    valence = classify_valence(RacingConsensus(2), [0, 1])
    assert valence.bivalent
    covering = build_covering(RacingConsensus(3), [0, 1, 0])
    assert covering.size == 3
    report = classical_falsification(
        max_configs=50_000 if quick else 300_000,
        max_steps=30 if quick else 40,
    )
    return PayloadResult(
        units=report.configurations,
        metrics={"covering_steps": covering.steps_used,
                 "counterexample_length": len(report.counterexample)},
    )


@_register("E11", "bg", "Cooperative BG simulation baseline")
def run_e11(quick: bool) -> PayloadResult:
    """E11 payload: BG completion across simulator counts."""
    from repro.bench.workloads import bg_outcome

    counts = (3,) if quick else (1, 2, 3, 4)
    steps = 0
    for simulators in counts:
        outcome = bg_outcome(simulators)
        steps += outcome.result.steps
    return PayloadResult(
        units=steps, metrics={"simulator_counts": len(counts)}
    )


@_register("E12", "registers", "The stack lowered to raw registers")
def run_e12(quick: bool) -> PayloadResult:
    """E12 payload: protocol runs over the register-level lowering."""
    from repro.bench.workloads import registers_lowering

    ns = (3,) if quick else (2, 3, 4)
    steps = 0
    registers = 0
    for n in ns:
        _system, result, snapshot = registers_lowering(n)
        steps += result.steps
        registers += snapshot.register_count()
    return PayloadResult(
        units=steps, metrics={"protocols": len(ns),
                              "registers_used": registers}
    )


@_register("E13", "campaign",
           "Parallel campaign engine: verified seed sweep throughput",
           campaign_backed=True)
def run_e13(quick: bool) -> PayloadResult:
    """E13 payload: the Lemma-28-verified sweep through the engine."""
    from repro.bench.workloads import campaign_sweep

    result = campaign_sweep(workers=None, seeds=40 if quick else 240)
    metrics = _campaign_metrics(result)
    return PayloadResult(units=result.report.runs, metrics=metrics)


@_register("E14", "explore",
           "Sharded bounded-exhaustive exploration throughput",
           campaign_backed=True)
def run_e14(quick: bool) -> PayloadResult:
    """E14 payload: prefix-sharded exploration through the engine."""
    from repro.bench.workloads import explore_sharded

    result = explore_sharded(workers=None, max_steps=13 if quick else 17)
    metrics = _campaign_metrics(result)
    metrics["violations"] = len(result.report.violations)
    return PayloadResult(
        units=result.report.configurations, metrics=metrics
    )


@_register("E15", "chaos",
           "Fault-tolerance overhead: retry, checkpoint, and resume",
           campaign_backed=True)
def run_e15(quick: bool) -> PayloadResult:
    """E15 payload: a checkpointed sweep under flaky faults, then resume."""
    from repro.bench.workloads import chaos_campaign

    faulted, resumed = chaos_campaign(seeds=48 if quick else 240)
    metrics = _campaign_metrics(faulted)
    metrics["retried_attempts"] = faulted.telemetry.retries
    metrics["resumed_chunks"] = resumed.telemetry.skipped_chunks
    return PayloadResult(units=faulted.report.runs, metrics=metrics)


@_register("E16", "symmetry",
           "Symmetry-reduced exploration of an anonymous protocol",
           campaign_backed=True)
def run_e16(quick: bool) -> PayloadResult:
    """E16 payload: symmetry-reduced anonymous-sweep exploration.

    Units are *visited* (canonical) configurations, so units/second is
    not comparable to E14 — the win shows up in wall time against the
    unreduced ``baselines/pre_symmetry`` artifact, which explored the
    same protocol instance without the reduction.
    """
    from repro.bench.workloads import explore_symmetry

    result = explore_symmetry(
        symmetry=True, workers=None, max_steps=10 if quick else 12
    )
    metrics = _campaign_metrics(result)
    metrics["symmetry"] = True
    return PayloadResult(
        units=result.report.configurations, metrics=metrics
    )


@_register("E17", "base_objects",
           "Multi-primitive exploration: swap/TAS/CAS and large-register",
           campaign_backed=True)
def run_e17(quick: bool) -> PayloadResult:
    """E17 payload: certified full enumeration of the base-object zoo.

    Units are reachable configurations summed over the four families
    (swap / test-and-set / compare-and-swap consensus and the safe
    large-register emulation), explored with the untrusted-worker
    certificate gate on — so the number prices the certified path, not
    the trusting one.
    """
    from repro.bench.workloads import explore_base_objects

    results = explore_base_objects(
        workers=None, n=3 if quick else 4, domain=3 if quick else 5,
    )
    metrics = _campaign_metrics(results[-1])
    metrics["families"] = len(results)
    metrics["certificates_verified"] = sum(
        r.telemetry.certificates_verified for r in results
    )
    metrics["violating_families"] = sum(
        1 for r in results if not r.report.safe
    )
    return PayloadResult(
        units=sum(r.report.configurations for r in results),
        metrics=metrics,
    )
