"""The baseline comparator: diff a benchmark run against a baseline.

:func:`compare_runs` matches current ``BENCH_*.json`` artifacts against
a committed baseline directory and classifies each experiment:

* ``ok`` — current median within the allowance;
* ``faster`` — current median beat the baseline by the threshold
  (informational — unless the experiment is named by
  ``require_faster``, which turns any weaker verdict into a failure);
* ``regression`` — current median exceeded the allowance;
* ``missing`` — the baseline has an experiment the current run lacks
  (a silently-dropped benchmark must fail the gate);
* ``new`` — the current run has an experiment the baseline lacks
  (informational: commit a refreshed baseline to start tracking it).

The allowance is noise-aware: a regression requires

    current_median > baseline_median * threshold + iqr_factor * IQR

where IQR is the larger of the two runs' inter-quartile ranges, so a
jittery experiment needs a genuinely larger slowdown to trip the gate
than a rock-steady one.  Schema-version mismatches surface as
:class:`~repro.errors.BenchSchemaError` from artifact loading — they
abort the comparison rather than producing a verdict.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.bench.schema import BenchArtifact, load_artifact_dir
from repro.errors import ValidationError

#: Default regression threshold: fail when the current median is more
#: than 1.5x the baseline median (plus the IQR allowance).
DEFAULT_THRESHOLD = 1.5

#: Default IQR multiplier in the noise allowance.
DEFAULT_IQR_FACTOR = 2.0


@dataclass(frozen=True)
class Comparison:
    """Verdict for one experiment: baseline vs current medians."""

    artifact_name: str           # "E13_campaign"
    status: str                  # ok | faster | regression | missing | new
    baseline_median: Optional[float]
    current_median: Optional[float]
    allowance_seconds: Optional[float]
    ratio: Optional[float]
    #: ``--require-faster`` marked this experiment: any verdict other
    #: than ``faster`` fails the gate.
    must_be_faster: bool = False

    @property
    def failed(self) -> bool:
        """True when this verdict must fail the gate."""
        if self.status in ("regression", "missing"):
            return True
        return self.must_be_faster and self.status != "faster"

    def summary(self) -> str:
        """One aligned line for the comparison report."""
        if self.status == "missing":
            detail = "baseline experiment absent from the current run"
        elif self.status == "new":
            detail = "no baseline yet (commit one to start tracking)"
        else:
            detail = (
                f"{self.baseline_median:.3f}s -> {self.current_median:.3f}s "
                f"({self.ratio:.2f}x, allowed <= "
                f"{self.allowance_seconds:.3f}s)"
            )
        if self.must_be_faster and self.status != "faster":
            detail += "  [required: faster]"
        return f"{self.status:>10}  {self.artifact_name:<24} {detail}"


@dataclass(frozen=True)
class CompareReport:
    """All per-experiment verdicts of one comparator invocation."""

    comparisons: List[Comparison]
    threshold: float
    iqr_factor: float

    @property
    def failures(self) -> List[Comparison]:
        """The verdicts that fail the gate (regressions and missing)."""
        return [c for c in self.comparisons if c.failed]

    @property
    def ok(self) -> bool:
        """True when the gate passes."""
        return not self.failures

    def summary(self) -> str:
        """Multi-line report: one verdict per line plus a tail line."""
        lines = [c.summary() for c in self.comparisons]
        verdict = (
            "PASS: no regressions"
            if self.ok
            else f"FAIL: {len(self.failures)} gate failure(s)"
        )
        lines.append(
            f"{verdict} (threshold {self.threshold:.2f}x, "
            f"iqr factor {self.iqr_factor:.1f})"
        )
        return "\n".join(lines)


def compare_artifacts(
    baseline: BenchArtifact,
    current: BenchArtifact,
    threshold: float = DEFAULT_THRESHOLD,
    iqr_factor: float = DEFAULT_IQR_FACTOR,
    slowdown: float = 1.0,
    must_be_faster: bool = False,
) -> Comparison:
    """Compare one experiment's current artifact against its baseline.

    ``slowdown`` multiplies the current median before the check — an
    injected handicap used by CI to prove the gate actually trips (a
    comparator that passes everything is worse than none).
    ``must_be_faster`` marks the verdict as gate-failing unless it comes
    out ``faster``.
    """
    current_median = current.median_seconds * slowdown
    noise = iqr_factor * max(baseline.iqr_seconds, current.iqr_seconds)
    allowance = baseline.median_seconds * threshold + noise
    ratio = (
        current_median / baseline.median_seconds
        if baseline.median_seconds > 0
        else float("inf")
    )
    if current_median > allowance:
        status = "regression"
    elif current_median * threshold < baseline.median_seconds:
        status = "faster"
    else:
        status = "ok"
    return Comparison(
        artifact_name=baseline.artifact_name,
        status=status,
        baseline_median=baseline.median_seconds,
        current_median=current_median,
        allowance_seconds=allowance,
        ratio=ratio,
        must_be_faster=must_be_faster,
    )


def _matches_selector(artifact_name: str, selector: str) -> bool:
    """True when ``selector`` names this artifact (eid, name, or stem)."""
    eid, _, name = artifact_name.partition("_")
    return selector in (artifact_name, eid, name)


def compare_runs(
    baseline_dir: Union[str, pathlib.Path],
    current_dir: Union[str, pathlib.Path],
    threshold: float = DEFAULT_THRESHOLD,
    iqr_factor: float = DEFAULT_IQR_FACTOR,
    slowdown: float = 1.0,
    require_faster: Optional[List[str]] = None,
) -> CompareReport:
    """Compare every baseline experiment against the current run.

    ``require_faster`` selects experiments (by eid like ``E14``, payload
    name like ``explore``, or artifact stem like ``E14_explore``) whose
    verdict must be ``faster`` — anything weaker fails the gate.  This
    is how a PR that claims a speedup makes the claim enforceable
    against the pre-change baselines.  A selector that matches no
    baseline experiment is an error: a required speedup must not be
    satisfiable by deleting the benchmark.

    Raises :class:`~repro.errors.ValidationError` when either directory
    holds no artifacts (an empty gate would vacuously pass), and
    :class:`~repro.errors.BenchSchemaError` when any artifact is
    malformed or carries an unsupported schema version.
    """
    if threshold <= 0:
        raise ValidationError(f"threshold must be > 0, got {threshold}")
    if iqr_factor < 0:
        raise ValidationError(f"iqr-factor must be >= 0, got {iqr_factor}")
    if slowdown <= 0:
        raise ValidationError(f"slowdown must be > 0, got {slowdown}")
    baselines = load_artifact_dir(baseline_dir)
    currents = load_artifact_dir(current_dir)
    if not baselines:
        raise ValidationError(
            f"no BENCH_*.json artifacts in baseline dir {baseline_dir}"
        )
    if not currents:
        raise ValidationError(
            f"no BENCH_*.json artifacts in current dir {current_dir}"
        )
    required = list(require_faster or [])
    for selector in required:
        if not any(_matches_selector(name, selector) for name in baselines):
            raise ValidationError(
                f"--require-faster selector {selector!r} matches no "
                f"baseline experiment"
            )
    comparisons: List[Comparison] = []
    for name in sorted(baselines, key=_artifact_sort_key):
        baseline = baselines[name]
        must_be_faster = any(
            _matches_selector(name, selector) for selector in required
        )
        current = currents.get(name)
        if current is None:
            comparisons.append(Comparison(
                artifact_name=name, status="missing",
                baseline_median=baseline.median_seconds,
                current_median=None, allowance_seconds=None, ratio=None,
                must_be_faster=must_be_faster,
            ))
            continue
        comparisons.append(compare_artifacts(
            baseline, current, threshold=threshold,
            iqr_factor=iqr_factor, slowdown=slowdown,
            must_be_faster=must_be_faster,
        ))
    for name in sorted(set(currents) - set(baselines),
                       key=_artifact_sort_key):
        comparisons.append(Comparison(
            artifact_name=name, status="new", baseline_median=None,
            current_median=currents[name].median_seconds,
            allowance_seconds=None, ratio=None,
        ))
    return CompareReport(
        comparisons=comparisons, threshold=threshold, iqr_factor=iqr_factor,
    )


def _artifact_sort_key(name: str):
    """Sort ``E<num>_<name>`` stems numerically, odd names last."""
    eid = name.split("_", 1)[0]
    if eid.startswith("E") and eid[1:].isdigit():
        return (0, int(eid[1:]), name)
    return (1, 0, name)


def _mode_mismatches(
    baselines: Dict[str, BenchArtifact], currents: Dict[str, BenchArtifact]
) -> List[str]:
    """Artifact names measured in different modes (quick vs full)."""
    return sorted(
        name
        for name in set(baselines) & set(currents)
        if baselines[name].mode != currents[name].mode
    )


def mode_mismatch_warnings(
    baseline_dir: Union[str, pathlib.Path],
    current_dir: Union[str, pathlib.Path],
) -> List[str]:
    """Warnings for baseline/current pairs measured at different scales.

    A quick-mode run compared against a full-mode baseline is not a
    regression signal; the comparator still runs, but ``repro bench
    compare`` prints these so the mismatch is visible.
    """
    return [
        f"warning: {name} baseline and current were measured in "
        f"different modes (quick vs full); the timing comparison is "
        f"not meaningful"
        for name in _mode_mismatches(
            load_artifact_dir(baseline_dir), load_artifact_dir(current_dir)
        )
    ]
