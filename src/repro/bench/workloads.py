"""The experiment workloads, as plain callables.

Every experiment of EXPERIMENTS.md (E1–E17) used to live only inside a
pytest-benchmark test; this module lifts each one's core workload into a
library function so the same code path serves three callers:

* the ``benchmarks/bench_*.py`` modules (thin pytest adapters that time
  the workload and print the EXPERIMENTS.md tables),
* the :mod:`repro.bench.runner` (``repro bench run``), which measures the
  workloads and writes ``BENCH_*.json`` artifacts, and
* anything else that wants a known-good experiment configuration.

Functions here *run work and return data*; they never print, never time
themselves, and raise :class:`AssertionError` if the experiment's
correctness expectations fail (a benchmark number for a broken run is
worse than no number).  Campaign-backed workloads (E4, E13–E17) route
through :mod:`repro.campaign` so their numbers exercise the same engine
and telemetry as ``repro campaign`` / ``repro explore``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


def augmented_workload(k_plus_1: int, m: int, rounds: int, seed: int):
    """E1 core: run a mixed Scan/Block-Update workload to completion.

    Returns ``(system, aug)`` for lemma-checking and step accounting.
    """
    from repro.augmented import AugmentedSnapshot
    from repro.runtime import RandomScheduler, System

    system = System()
    aug = AugmentedSnapshot("M", components=m, pids=list(range(k_plus_1)))

    def body(proc):
        for r in range(rounds):
            comps = [(proc.pid + r) % m]
            yield from aug.block_update(proc.pid, comps, [f"{proc.pid}.{r}"])
            yield from aug.scan(proc.pid)

    for _ in range(k_plus_1):
        system.add_process(body)
    result = system.run(RandomScheduler(seed), max_steps=1_000_000)
    assert result.completed
    return system, aug


def augmented_sweep(seeds: int, k_plus_1: int = 3, m: int = 3,
                    rounds: int = 3) -> Tuple[int, int]:
    """E1 sweep: Appendix B lemma battery over ``seeds`` random schedules.

    Returns ``(total_steps, clean_schedules)``; every schedule must pass.
    """
    from repro.augmented.linearization import check_all

    total_steps = 0
    clean = 0
    for seed in range(seeds):
        system, aug = augmented_workload(k_plus_1, m, rounds, seed)
        assert check_all(system.trace, aug) == []
        clean += 1
        total_steps += len(system.trace.steps())
    return total_steps, clean


def bounds_grid(n_max: int, k_max: int = 8, x_max: int = 8) -> List[Any]:
    """E2 core: the Theorem 3 lower/upper bound rows across (n, k, x)."""
    from repro.core import bound_table

    rows = bound_table(
        ns=range(2, n_max + 1), ks=range(1, k_max + 1),
        xs=range(1, x_max + 1),
    )
    assert rows
    return rows


def positive_simulation(k: int, x: int, m: int, seed: int,
                        rounds: int = 4, max_steps: int = 600_000):
    """E3 core: one verified positive run of the revisionist simulation.

    The simulated-process count n is derived from (k, x, m) via the
    paper's pivot; every simulator must decide a valid value.
    """
    from repro.core import run_simulation
    from repro.protocols import RotatingWrites
    from repro.runtime import RandomScheduler

    n = (k + 1 - x) * m + x
    protocol = RotatingWrites(n, m, rounds=rounds)
    inputs = list(range(10, 10 + k + 1))
    outcome = run_simulation(
        protocol, k=k, x=x, inputs=inputs,
        scheduler=RandomScheduler(seed), max_steps=max_steps,
    )
    assert outcome.result.completed
    assert outcome.all_decided
    return outcome


def falsifier_sweep(k: int, x: int, m: int, seeds, workers: int = 1):
    """E4 core: Theorem 3 as a falsifier, through the campaign engine.

    Truncates consensus below the bound and sweeps seeds; returns
    ``(n, CampaignResult)``.  Every seed must exhibit a violation.
    """
    from repro.campaign import sweep_simulation_campaign
    from repro.core import simulated_process_count
    from repro.protocols import (
        KSetAgreementTask,
        RacingConsensus,
        TruncatedProtocol,
    )

    n = simulated_process_count(m, k, x)
    result = sweep_simulation_campaign(
        TruncatedProtocol(RacingConsensus(n), m), k=k, x=x,
        inputs=list(range(k + 1)), seeds=seeds,
        task=KSetAgreementTask(k), max_steps=400_000, workers=workers,
    )
    return n, result


def solo_termination_probe() -> Tuple[int, int]:
    """E5 core: converted TokenRace terminates solo from any contents.

    Probes all 9 initial register contents; returns ``(configurations,
    worst_solo_steps)``.
    """
    from repro.solo import ConvertedMachine, TokenRace
    from repro.solo.conversion import solo_run_machine

    machine = TokenRace()
    converted = ConvertedMachine(machine)
    assert converted.registers == machine.registers
    configurations = 0
    worst = 0
    for a in (None, 0, 1):
        for b in (None, 0, 1):
            output, measures, _covered = solo_run_machine(
                converted, 1, initial_contents={0: a, 1: b}
            )
            assert output is not None
            configurations += 1
            worst = max(worst, len(measures))
    return configurations, worst


def approx_protocol_steps(protocol, inputs, scheduler) -> int:
    """E6 core: max per-process step count of one approx-agreement run."""
    from repro.protocols import run_protocol

    system, result = run_protocol(
        protocol, inputs, scheduler, max_steps=200_000
    )
    assert result.completed
    return max(proc.steps_taken for proc in system.processes.values())


def approx_steps_sweep(exponents) -> Dict[int, Tuple[int, int]]:
    """E6 sweep: bisection and averaging step counts per ε = 2^-exp.

    Returns ``{exponent: (bisection_steps, averaging_steps)}``; both must
    respect the Theorem 2 lower bound log₃(1/ε).
    """
    import math

    from repro.protocols import AveragingApprox, BisectionApprox
    from repro.runtime import RoundRobinScheduler

    results: Dict[int, Tuple[int, int]] = {}
    for exponent in exponents:
        eps = 2.0 ** -exponent
        lower = math.log(1 / eps, 3)
        bisection = approx_protocol_steps(
            BisectionApprox(eps), [0, 1], RoundRobinScheduler()
        )
        averaging = approx_protocol_steps(
            AveragingApprox(2, eps), [0, 1], RoundRobinScheduler()
        )
        assert bisection >= lower and averaging >= lower
        results[exponent] = (bisection, averaging)
    return results


def approx_reduction_outcome(m: int, eps: float):
    """E7 core: the Appendix D two-simulator reduction, one run."""
    from repro.core import run_approx_simulation
    from repro.protocols import AveragingApprox, TruncatedProtocol
    from repro.runtime import RoundRobinScheduler

    protocol = TruncatedProtocol(AveragingApprox(2 * m, eps), m)
    outcome = run_approx_simulation(protocol, [0, 1], RoundRobinScheduler())
    assert outcome.all_decided
    return outcome


def invariant_outcome(seed: int, rounds: int = 8):
    """E8 core: a simulation run sized for correspondence checking."""
    from repro.core import run_simulation
    from repro.protocols import RotatingWrites
    from repro.runtime import RandomScheduler

    protocol = RotatingWrites(7, 3, rounds=rounds)
    return run_simulation(
        protocol, k=2, x=1, inputs=[5, 2, 8],
        scheduler=RandomScheduler(seed), max_steps=600_000,
    )


def invariant_sweep(seeds: int, rounds: int = 6) -> Tuple[int, int]:
    """E8 sweep: Lemma 28 correspondence across ``seeds`` schedules.

    Returns ``(total_sigma_length, total_hidden_steps)``; every run must
    pass the checker.
    """
    from repro.core import check_correspondence

    sigma = 0
    hidden = 0
    for seed in range(seeds):
        correspondence = check_correspondence(
            invariant_outcome(seed, rounds=rounds)
        )
        assert correspondence.ok, correspondence.violations
        sigma += len(correspondence.entries)
        hidden += correspondence.hidden_steps
    return sigma, hidden


def snapshot_single_writer(n: int, rounds: int, seed: int):
    """E9 core: AADGMS single-writer snapshot workload to completion."""
    from repro.memory import AfekSnapshot
    from repro.runtime import RandomScheduler, System

    writers = list(range(n))
    snapshot = AfekSnapshot("S", writers=writers, initial=None)
    system = System()

    def body(proc):
        for r in range(rounds):
            yield from snapshot.update(proc.pid, (proc.pid, r))
            yield from snapshot.scan(proc.pid)

    for _ in writers:
        system.add_process(body)
    result = system.run(RandomScheduler(seed), max_steps=2_000_000)
    assert result.completed
    return system


def classical_falsification(max_configs: int = 300_000,
                            max_steps: int = 40):
    """E10 core: exhaustively falsify 3-process consensus on 1 register."""
    from repro.analysis import explore_protocol
    from repro.protocols import (
        KSetAgreementTask,
        RacingConsensus,
        TruncatedProtocol,
    )

    broken = TruncatedProtocol(RacingConsensus(3), 1)
    report = explore_protocol(
        broken, [0, 1, 2], KSetAgreementTask(1),
        max_configs=max_configs, max_steps=max_steps,
    )
    assert not report.safe
    return report


def bg_outcome(simulators: int, seed: int = 13):
    """E11 core: the cooperative BG simulation completes all processes."""
    from repro.core import run_bg_simulation
    from repro.protocols import RotatingWrites
    from repro.runtime import RandomScheduler

    inputs = [5, 2, 8, 1]
    outcome = run_bg_simulation(
        RotatingWrites(4, 3, rounds=3), inputs, simulators=simulators,
        scheduler=RandomScheduler(seed), max_steps=500_000,
    )
    assert outcome.completed_processes == len(inputs)
    return outcome


def registers_lowering(n: int, seed: int = 5):
    """E12 core: run min-seen over the register-level snapshot lowering.

    Returns ``(system, result, snapshot)`` from
    :func:`~repro.protocols.registers_runtime.run_protocol_on_registers`.
    """
    from repro.protocols import MinSeen
    from repro.protocols.registers_runtime import run_protocol_on_registers
    from repro.runtime import RandomScheduler

    protocol = MinSeen(n, rounds=2)
    system, result, snapshot = run_protocol_on_registers(
        protocol, list(range(n)), RandomScheduler(seed),
        max_steps=1_000_000,
    )
    assert result.completed
    assert snapshot.register_count() == protocol.m
    return system, result, snapshot


def campaign_sweep(workers: Optional[int], seeds: int = 240):
    """E13 core: a Lemma-28-verified seed sweep through the engine.

    Returns the :class:`~repro.campaign.engine.CampaignResult`; the
    report must be clean (no violations, every seed decided).
    """
    from repro.campaign import sweep_simulation_campaign
    from repro.protocols import RotatingWrites

    result = sweep_simulation_campaign(
        RotatingWrites(7, 3, rounds=6), k=2, x=1, inputs=[5, 2, 8],
        seeds=range(seeds), verify_correspondence=True, workers=workers,
    )
    assert result.report.clean and result.report.runs == seeds
    return result


def explore_sharded(workers: Optional[int], max_steps: int = 17,
                    max_configs: int = 400_000, prefix_depth: int = 3):
    """E14 core: sharded bounded-exhaustive exploration of consensus.

    Explores racing consensus (n=3, safe at full provisioning) through
    the campaign engine; returns the
    :class:`~repro.campaign.engine.CampaignResult`.
    """
    from repro.campaign import explore_campaign
    from repro.protocols import KSetAgreementTask, RacingConsensus

    result = explore_campaign(
        RacingConsensus(3), [0, 1, 2], KSetAgreementTask(1),
        max_configs=max_configs, max_steps=max_steps,
        prefix_depth=prefix_depth, workers=workers,
    )
    assert result.report.safe
    return result


def chaos_campaign(seeds: int = 120, chunk_size: int = 8,
                   flaky_every: int = 3):
    """E15 core: a checkpointed sweep under injected flaky faults.

    Runs the E13-style protocol sweep with every ``flaky_every``-th
    chunk failing once (retried through the backoff machinery on a fake
    clock, so no real sleeping), journaling each chunk to a checkpoint,
    then resumes from that checkpoint and asserts the resumed report is
    identical.  Returns ``(faulted_result, resumed_result)`` — the
    measured cost is the full fault-tolerance stack: injection, retry,
    journal flushes, and resume replay.
    """
    import shutil
    import tempfile

    from repro.campaign import (
        FakeClock,
        FaultPlan,
        RetryPolicy,
        SweepProtocolJob,
        plan_chunks,
        run_campaign,
    )
    from repro.protocols import KSetAgreementTask, MinSeen

    job = SweepProtocolJob(
        protocol=MinSeen(3, rounds=2), inputs=(4, 1, 9),
        seeds=tuple(range(seeds)), task=KSetAgreementTask(3),
    )
    chunks = len(plan_chunks(job.total_units(), chunk_size))
    faults = FaultPlan.flaky(*range(0, chunks, flaky_every), failures=1)
    retry = RetryPolicy(max_retries=2, base_delay=0.01)
    directory = tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        path = f"{directory}/chaos.ckpt"
        faulted = run_campaign(
            job, workers=1, chunk_size=chunk_size, retry=retry,
            faults=faults, checkpoint=path, clock=FakeClock(),
        )
        resumed = run_campaign(
            job, workers=1, chunk_size=chunk_size, retry=retry,
            checkpoint=path, resume=True, clock=FakeClock(),
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    assert faulted.complete and resumed.complete
    assert faulted.report == resumed.report
    assert repr(faulted.report) == repr(resumed.report)
    return faulted, resumed


def explore_symmetry(symmetry: bool, workers: Optional[int] = None,
                     n: int = 5, max_steps: int = 12,
                     max_configs: int = 10_000_000,
                     prefix_depth: int = 2):
    """E16 core: anonymous-sweep exploration under process symmetry.

    Explores :class:`~repro.protocols.AnonymousSweepConsensus` (fully
    symmetric by construction) with one dissenting input through the
    campaign engine.  With ``symmetry=True`` configurations are
    canonicalized under process permutation — the measured claim is
    that this collapses the state space superlinearly in ``n`` (toward
    ``n!``), so the reduced run beats an unreduced run of the *same*
    workload by far more than a constant factor.  ``symmetry=False``
    is exactly that unreduced run (what every build before the
    reduction had to do) and is how ``baselines/pre_symmetry`` was
    measured.  Returns the :class:`~repro.campaign.engine.CampaignResult`.
    """
    from repro.campaign import explore_campaign
    from repro.protocols import AnonymousSweepConsensus, KSetAgreementTask

    result = explore_campaign(
        AnonymousSweepConsensus(n, m=2), [0] + [1] * (n - 1),
        KSetAgreementTask(1), max_configs=max_configs,
        max_steps=max_steps, prefix_depth=prefix_depth,
        workers=workers, symmetry=symmetry,
    )
    assert result.report.safe
    return result


def explore_base_objects(workers: Optional[int] = None, n: int = 3,
                         domain: int = 3,
                         verify_certificates: bool = True):
    """E17 core: full-enumeration sweep over the base-object families.

    Explores each multi-primitive scenario — swap / test-and-set /
    compare-and-swap consensus plus the safe large-register emulation —
    through the campaign engine with ``stop_at_first_violation=False``
    (units are *all* reachable configurations, not configurations until
    the first counterexample) and, by default, the untrusted-worker
    certificate gate enabled, so the measured path is the certified one.
    Asserts each family's known verdict (swap and test-and-set solve
    consensus only for two processes; compare-and-swap for any number;
    the set-then-clear sweep order never invents a value).  Returns the
    list of :class:`~repro.campaign.engine.CampaignResult`.
    """
    from repro.campaign import explore_campaign
    from repro.protocols import (
        CASConsensus,
        KSetAgreementTask,
        LargeRegisterEmulation,
        RegularRegisterTask,
        SwapConsensus,
        TASConsensus,
    )

    inputs = list(range(n))
    consensus = KSetAgreementTask(1)
    writes = (domain - 1, 0)
    scenarios = (
        (SwapConsensus(n), inputs, consensus, n <= 2),
        (TASConsensus(n), inputs, consensus, n <= 2),
        (CASConsensus(n), inputs, consensus, True),
        (
            LargeRegisterEmulation(domain, writes, safe=True), [0, 0],
            RegularRegisterTask(domain, writes), True,
        ),
    )
    results = []
    for protocol, protocol_inputs, task, expect_safe in scenarios:
        result = explore_campaign(
            protocol, protocol_inputs, task,
            stop_at_first_violation=False, workers=workers,
            verify_certificates=verify_certificates,
        )
        assert result.complete
        assert result.report.safe == expect_safe
        results.append(result)
    return results
