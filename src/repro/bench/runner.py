"""The benchmark runner: measure experiments, write ``BENCH_*.json``.

:func:`run_experiments` executes each selected experiment payload
``warmup`` times untimed, then ``repeats`` times under
``time.perf_counter``, folds the samples into median/IQR/throughput, and
writes one schema-versioned artifact per experiment
(:mod:`repro.bench.schema`).  Per-experiment timing telemetry is
reported in the same one-line style as
:class:`~repro.campaign.telemetry.CampaignTelemetry.summary`.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.bench.experiments import Experiment, PayloadResult, resolve
from repro.bench.schema import (
    BenchArtifact,
    EnvironmentFingerprint,
    write_artifact,
)
from repro.errors import ValidationError


@dataclass(frozen=True)
class BenchTelemetry:
    """Timing telemetry for one measured experiment."""

    experiment: str
    name: str
    units: int
    samples_seconds: Sequence[float]
    median_seconds: float
    iqr_seconds: float
    warmup: int
    mode: str

    @property
    def units_per_second(self) -> float:
        """Throughput at the median sample."""
        if self.median_seconds <= 0:
            return 0.0
        return self.units / self.median_seconds

    def summary(self) -> str:
        """One line in the :class:`CampaignTelemetry` house style."""
        return (
            f"{self.experiment} {self.name}: {self.units} units in "
            f"{self.median_seconds:.3f}s median "
            f"(iqr {self.iqr_seconds:.3f}s, "
            f"{self.units_per_second:,.1f} units/sec) — "
            f"{len(self.samples_seconds)} repeat"
            f"{'s' if len(self.samples_seconds) != 1 else ''} + "
            f"{self.warmup} warmup [{self.mode}]"
        )


@dataclass(frozen=True)
class RunReport:
    """What one ``repro bench run`` produced: artifacts and their paths."""

    artifacts: List[BenchArtifact]
    paths: List[pathlib.Path]
    telemetry: List[BenchTelemetry]

    def summary(self) -> str:
        """Multi-line human summary: one telemetry line per experiment."""
        return "\n".join(t.summary() for t in self.telemetry)


def measure_experiment(
    experiment: Experiment,
    quick: bool,
    repeats: int,
    warmup: int,
    environment: Optional[EnvironmentFingerprint] = None,
) -> BenchArtifact:
    """Measure one experiment and return its (unwritten) artifact.

    The payload runs ``warmup + repeats`` times; only the last
    ``repeats`` executions are timed.  The payload's work units and
    metrics are taken from the final repeat (payloads are deterministic
    at a given scale, so any repeat would do).
    """
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValidationError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        experiment.run(quick)
    samples: List[float] = []
    result: Optional[PayloadResult] = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = experiment.run(quick)
        samples.append(time.perf_counter() - start)
    assert result is not None
    return BenchArtifact.from_samples(
        experiment=experiment.eid,
        name=experiment.name,
        title=experiment.title,
        mode="quick" if quick else "full",
        units=result.units,
        warmup=warmup,
        samples_seconds=samples,
        metrics=result.metrics,
        environment=environment,
    )


def run_experiments(
    selectors: Optional[List[str]] = None,
    quick: bool = False,
    repeats: int = 3,
    warmup: int = 1,
    out_dir: Union[str, pathlib.Path] = ".",
    experiments: Optional[Sequence[Experiment]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> RunReport:
    """Measure experiments and write one ``BENCH_*.json`` each.

    ``selectors`` picks experiments from the registry (``None`` = all);
    tests can instead inject an explicit ``experiments`` sequence.
    ``progress`` (e.g. ``print``) receives one telemetry line per
    finished experiment.
    """
    chosen = list(experiments) if experiments is not None else resolve(
        selectors
    )
    environment = EnvironmentFingerprint.capture()
    artifacts: List[BenchArtifact] = []
    paths: List[pathlib.Path] = []
    telemetry: List[BenchTelemetry] = []
    for experiment in chosen:
        artifact = measure_experiment(
            experiment, quick=quick, repeats=repeats, warmup=warmup,
            environment=environment,
        )
        path = write_artifact(artifact, out_dir)
        line = BenchTelemetry(
            experiment=artifact.experiment,
            name=artifact.name,
            units=artifact.units,
            samples_seconds=artifact.samples_seconds,
            median_seconds=artifact.median_seconds,
            iqr_seconds=artifact.iqr_seconds,
            warmup=artifact.warmup,
            mode=artifact.mode,
        )
        if progress is not None:
            progress(f"{line.summary()} -> {path}")
        artifacts.append(artifact)
        paths.append(path)
        telemetry.append(line)
    return RunReport(artifacts=artifacts, paths=paths, telemetry=telemetry)
