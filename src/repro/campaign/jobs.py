"""Campaign job types: picklable descriptions of sharded experiments.

A job captures everything a worker process needs to run one chunk of a
campaign — protocol, task, parameters, and the full unit range — as a
frozen (hence picklable) dataclass.  The engine ships the job to workers
with ``(start, stop)`` chunk bounds; :meth:`run_range` executes the
chunk through the ordinary serial harness (:mod:`repro.core.sweep`,
:mod:`repro.analysis.fuzz`) and returns a partial report for merging.

Because workers call the *same* serial functions over sub-ranges, the
parallel path cannot drift from the serial one: the differential suite
(tests/campaign/test_differential.py) holds them byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.analysis.explore import (
    ExplorationReport,
    effective_prefix_depth,
    explore_prefix_range,
    schedule_prefixes,
)
from repro.analysis.fuzz import (
    DEFAULT_MAX_SAVED_VIOLATIONS,
    FuzzReport,
    fuzz_protocol,
)
from repro.analysis.shrink import shrink_schedule
from repro.core.sweep import (
    SweepReport,
    _attach_sweep_certificate,
    sweep_protocol,
    sweep_simulation,
)
from repro.protocols.base import Protocol


class _CertifiableJob:
    """Shared mixin: flip a job into certificate-emitting mode.

    ``certificates`` is a regular job field (it changes what workers
    compute, hence the job fingerprint); :meth:`with_certificates`
    is how :func:`~repro.campaign.engine.run_campaign` turns the flag
    on when the caller asks for ``verify_certificates=True``.
    """

    def with_certificates(self, certificates: bool = True):
        """A copy of this job with certificate emission toggled."""
        if getattr(self, "certificates", None) == certificates:
            return self
        return replace(self, certificates=certificates)


def _describe_seed_range(seeds: Tuple[int, ...], start: int, stop: int) -> str:
    """Human name for a seed sub-range, quoting the actual seed values."""
    values = seeds[start:stop]
    if not values:
        return "no seeds"
    if len(values) == 1:
        return f"seed {values[0]}"
    return f"seeds {values[0]}..{values[-1]} ({len(values)} seeds)"


@dataclass(frozen=True)
class SweepSimulationJob(_CertifiableJob):
    """A :func:`~repro.core.sweep.sweep_simulation` campaign over seeds."""

    protocol: Protocol
    k: int
    x: int
    inputs: Tuple[Any, ...]
    seeds: Tuple[int, ...]
    task: Any = None
    verify_correspondence: bool = False
    max_steps: int = 500_000
    run_kwargs: Dict[str, Any] = field(default_factory=dict)
    certificates: bool = False

    def total_units(self) -> int:
        """Number of schedulable units: one per seed."""
        return len(self.seeds)

    def empty_report(self) -> SweepReport:
        """The merge identity for this job's report type."""
        return SweepReport()

    def run_range(self, start: int, stop: int) -> SweepReport:
        """Execute seeds ``start..stop-1`` through the serial harness.

        Chunks never mint certificates themselves (the raw witness
        rides along as ``report.best_violation``); :meth:`finalize`
        mints once from the merged minimum, so a sharded sweep pays
        one canonicalization instead of one per chunk.
        """
        return sweep_simulation(
            self.protocol, k=self.k, x=self.x, inputs=list(self.inputs),
            seeds=list(self.seeds[start:stop]), task=self.task,
            verify_correspondence=self.verify_correspondence,
            max_steps=self.max_steps,
            **self.run_kwargs,
        )

    def describe_range(self, start: int, stop: int) -> str:
        """Name units ``start..stop-1`` for partial-result reports."""
        return _describe_seed_range(self.seeds, start, stop)

    def finalize(self, report: SweepReport) -> SweepReport:
        """Mint the merged minimum-seed witness certificate, if asked."""
        if self.certificates:
            _attach_sweep_certificate(
                report, report.best_violation, self.protocol,
                list(self.inputs), self.task, "simulation",
                self.max_steps, k=self.k, x=self.x,
            )
        return report


@dataclass(frozen=True)
class SweepProtocolJob(_CertifiableJob):
    """A :func:`~repro.core.sweep.sweep_protocol` campaign over seeds."""

    protocol: Protocol
    inputs: Tuple[Any, ...]
    seeds: Tuple[int, ...]
    task: Any = None
    max_steps: int = 100_000
    certificates: bool = False

    def total_units(self) -> int:
        """Number of schedulable units: one per seed."""
        return len(self.seeds)

    def empty_report(self) -> SweepReport:
        """The merge identity for this job's report type."""
        return SweepReport()

    def run_range(self, start: int, stop: int) -> SweepReport:
        """Execute seeds ``start..stop-1`` through the serial harness.

        Certificates are minted once in :meth:`finalize`, not per
        chunk; the chunk report carries the raw ``best_violation``
        witness instead.
        """
        return sweep_protocol(
            self.protocol, list(self.inputs),
            list(self.seeds[start:stop]), task=self.task,
            max_steps=self.max_steps,
        )

    def describe_range(self, start: int, stop: int) -> str:
        """Name units ``start..stop-1`` for partial-result reports."""
        return _describe_seed_range(self.seeds, start, stop)

    def finalize(self, report: SweepReport) -> SweepReport:
        """Mint the merged minimum-seed witness certificate, if asked."""
        if self.certificates:
            _attach_sweep_certificate(
                report, report.best_violation, self.protocol,
                list(self.inputs), self.task, "protocol",
                self.max_steps,
            )
        return report


@dataclass(frozen=True)
class FuzzJob(_CertifiableJob):
    """A :func:`~repro.analysis.fuzz.fuzz_protocol` campaign over runs.

    Workers fuzz their run range with shrinking disabled (shrinking
    mid-chunk would duplicate work and is not merge-stable); if
    ``shrink`` is requested, :meth:`finalize` shrinks the overall first
    violation once, in the parent — exactly what a serial
    ``fuzz_protocol`` call would have shrunk.
    """

    protocol: Protocol
    inputs: Tuple[Any, ...]
    task: Any
    runs: int = 200
    schedule_length: int = 60
    seed: int = 0
    shrink: bool = True
    max_saved_violations: int = DEFAULT_MAX_SAVED_VIOLATIONS
    certificates: bool = False

    def total_units(self) -> int:
        """Number of schedulable units: one per fuzz run."""
        return self.runs

    def empty_report(self) -> FuzzReport:
        """The merge identity, carrying this job's retention cap."""
        return FuzzReport(max_saved_violations=self.max_saved_violations)

    def run_range(self, start: int, stop: int) -> FuzzReport:
        """Fuzz runs ``start..stop-1`` (no shrinking inside workers)."""
        return fuzz_protocol(
            self.protocol, list(self.inputs), self.task,
            runs=stop - start, schedule_length=self.schedule_length,
            seed=self.seed, shrink=False, run_offset=start,
            max_saved_violations=self.max_saved_violations,
            certificates=self.certificates,
        )

    def describe_range(self, start: int, stop: int) -> str:
        """Name units ``start..stop-1`` for partial-result reports."""
        return f"fuzz runs {start}..{stop - 1} (seed {self.seed})"

    def finalize(self, report: FuzzReport) -> FuzzReport:
        """Shrink the merged report's first violation, if requested.

        When certificates are on, the merge fold dropped any per-chunk
        shrink certificates (the first violation can change across
        merges); re-derive the one for the final shrink here, so the
        campaign's certificate set matches a serial ``fuzz_protocol``
        call exactly.
        """
        if self.shrink and report.violations and report.minimized is None:
            report.minimized = shrink_schedule(
                self.protocol, list(self.inputs), self.task,
                report.first_violation_schedule,
            )
        if self.certificates and report.violations:
            from repro.certify.emit import fuzz_certificates

            report.certificates = fuzz_certificates(
                self.protocol, list(self.inputs), self.task, report
            )
        return report


@dataclass(frozen=True)
class ExploreJob(_CertifiableJob):
    """A sharded :func:`~repro.analysis.explore.explore_protocol` campaign.

    The schedulable units are the viable schedule prefixes of length
    ``prefix_depth`` (:func:`~repro.analysis.explore.schedule_prefixes`):
    each unit is the interleaving subtree below one prefix, explored with
    a fresh memo table and a per-unit budget derived from ``max_configs``
    over the whole decomposition.  Workers run disjoint prefix ranges
    through the same serial function
    (:func:`~repro.analysis.explore.explore_prefix_range`), so the merged
    :class:`~repro.analysis.explore.ExplorationReport` is identical to a
    serial ``explore_protocol`` call with the same ``prefix_depth``.

    ``packed`` and ``symmetry`` select the configuration encoding and
    symmetry reduction exactly as on ``explore_protocol``; both are part
    of the job (and therefore of checkpoint fingerprints), and serial ==
    sharded holds in every mode because each worker builds its context
    from the same flags.
    """

    protocol: Protocol
    inputs: Tuple[Any, ...]
    task: Any
    max_configs: int = 200_000
    max_steps: Optional[int] = None
    stop_at_first_violation: bool = True
    prefix_depth: int = 2
    certificates: bool = False
    packed: bool = True
    symmetry: bool = False

    def _prefixes(self) -> Tuple[Tuple[int, ...], ...]:
        """The canonical unit decomposition (pure, cheap to recompute)."""
        depth = effective_prefix_depth(self.prefix_depth, self.max_steps)
        return schedule_prefixes(self.protocol, list(self.inputs), depth)

    def total_units(self) -> int:
        """Number of schedulable units: one per schedule prefix."""
        return len(self._prefixes())

    def empty_report(self) -> ExplorationReport:
        """The merge identity for this job's report type."""
        return ExplorationReport()

    def run_range(self, start: int, stop: int) -> ExplorationReport:
        """Explore prefix subtrees ``start..stop-1`` serially and merge."""
        return explore_prefix_range(
            self.protocol, list(self.inputs), self.task, self._prefixes(),
            start, stop, max_configs=self.max_configs,
            max_steps=self.max_steps,
            stop_at_first_violation=self.stop_at_first_violation,
            certificates=self.certificates,
            packed=self.packed, symmetry=self.symmetry,
        )

    def describe_range(self, start: int, stop: int) -> str:
        """Name units ``start..stop-1`` for partial-result reports."""
        return (
            f"schedule-prefix subtrees {start}..{stop - 1} "
            f"(prefix depth {self.prefix_depth})"
        )

    def finalize(self, report: ExplorationReport) -> ExplorationReport:
        """Post-merge hook; exploration needs no finalization."""
        return report
