"""Per-chunk timing, retry, and failure telemetry for campaigns.

Telemetry answers "was the parallelism worth it?" — and, since the
fault-tolerance layer, "what did surviving cost?" — without ever
touching the scientific result: :class:`CampaignTelemetry` lives *next
to* the merged report inside a
:class:`~repro.campaign.engine.CampaignResult`, never inside it, so
reports stay byte-identical across worker counts, retries, and resumes
while the timing story varies freely with the hardware.

Failure accounting is part of the same contract: a chunk that exhausts
its retries is recorded here as a :class:`ChunkFailure` (and named in
the result's partial-report summary), never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class ChunkStats:
    """Timing for one successfully executed chunk.

    ``wall_seconds``/``cpu_seconds`` are measured inside the worker
    around the chunk body; ``worker`` identifies the executing process
    (a pid for pool workers, ``"in-process"`` for the serial path);
    ``attempts`` counts how many tries the chunk needed (1 = first
    try succeeded).
    """

    index: int
    start: int
    stop: int
    wall_seconds: float
    cpu_seconds: float
    worker: str
    attempts: int = 1

    @property
    def units(self) -> int:
        """Number of units (seeds / fuzz runs) this chunk covered."""
        return self.stop - self.start


@dataclass(frozen=True)
class ChunkFailure:
    """A chunk that exhausted its retry budget and was abandoned.

    ``error`` is the final attempt's failure rendered as
    ``TypeName: message``; ``kind`` distinguishes timeouts (real or
    injected hangs) from exceptions raised by the chunk body.  The
    engine folds these into the partial-result summary so missing unit
    ranges are named, never silently truncated.
    """

    index: int
    start: int
    stop: int
    attempts: int
    error: str
    kind: str = "error"

    @property
    def units(self) -> int:
        """Number of units this failed chunk should have covered."""
        return self.stop - self.start


@dataclass
class CampaignTelemetry:
    """Aggregated timing/throughput/fault accounting for one campaign run.

    ``chunks`` holds only chunks executed *this* run; on a resumed
    campaign the chunks replayed from the checkpoint are counted in
    ``skipped_chunks``/``skipped_units`` instead.  ``retries`` counts
    re-dispatched attempts across all chunks; ``failures`` lists the
    chunks that never succeeded.
    """

    workers: int
    chunk_size: int
    mode: str
    wall_seconds: float = 0.0
    chunks: List[ChunkStats] = field(default_factory=list)
    failures: List[ChunkFailure] = field(default_factory=list)
    retries: int = 0
    skipped_chunks: int = 0
    skipped_units: int = 0
    #: Witness certificates checked by the untrusted-worker gate
    #: (``run_campaign(verify_certificates=True)``); 0 when the gate
    #: is off or no chunk carried certificates.
    certificates_verified: int = 0

    @property
    def total_units(self) -> int:
        """Total units executed across all chunks (this run only)."""
        return sum(chunk.units for chunk in self.chunks)

    @property
    def failed_units(self) -> int:
        """Units lost to chunks that exhausted their retries."""
        return sum(failure.units for failure in self.failures)

    @property
    def runs_per_second(self) -> float:
        """End-to-end throughput: units over campaign wall time."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_units / self.wall_seconds

    @property
    def cpu_seconds(self) -> float:
        """Total CPU time burned inside chunk bodies, all workers."""
        return sum(chunk.cpu_seconds for chunk in self.chunks)

    @property
    def busy_seconds(self) -> float:
        """Total wall time spent inside chunk bodies, all workers."""
        return sum(chunk.wall_seconds for chunk in self.chunks)

    @property
    def utilization(self) -> float:
        """Fraction of the worker pool's wall-clock capacity spent busy.

        1.0 means every worker was inside a chunk body for the whole
        campaign; low values mean workers idled (too few chunks, skewed
        chunk costs, or pool startup dominating).
        """
        capacity = self.workers * self.wall_seconds
        if capacity <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def summary(self) -> str:
        """One-line human summary of the execution telemetry."""
        text = (
            f"{self.total_units} units in {self.wall_seconds:.2f}s wall "
            f"({self.runs_per_second:.1f} runs/sec, "
            f"cpu {self.cpu_seconds:.2f}s) — "
            f"{len(self.chunks)} chunks of ≤{self.chunk_size} on "
            f"{self.workers} worker{'s' if self.workers != 1 else ''} "
            f"[{self.mode}], utilization {self.utilization:.0%}"
        )
        if self.skipped_chunks:
            text += (
                f", resumed past {self.skipped_chunks} checkpointed "
                f"chunk{'s' if self.skipped_chunks != 1 else ''} "
                f"({self.skipped_units} units)"
            )
        if self.retries:
            text += f", {self.retries} retried attempt" + (
                "s" if self.retries != 1 else ""
            )
        if self.certificates_verified:
            text += (
                f", {self.certificates_verified} certificate"
                f"{'s' if self.certificates_verified != 1 else ''} verified"
            )
        if self.failures:
            text += (
                f", {len(self.failures)} chunk"
                f"{'s' if len(self.failures) != 1 else ''} FAILED "
                f"({self.failed_units} units lost)"
            )
        return text
