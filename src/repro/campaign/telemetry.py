"""Per-chunk timing and throughput telemetry for campaigns.

Telemetry answers "was the parallelism worth it?" without ever touching
the scientific result: :class:`CampaignTelemetry` lives *next to* the
merged report inside a :class:`~repro.campaign.engine.CampaignResult`,
never inside it, so reports stay byte-identical across worker counts
while the timing story varies freely with the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class ChunkStats:
    """Timing for one executed chunk.

    ``wall_seconds``/``cpu_seconds`` are measured inside the worker
    around the chunk body; ``worker`` identifies the executing process
    (a pid for pool workers, ``"in-process"`` for the serial path).
    """

    index: int
    start: int
    stop: int
    wall_seconds: float
    cpu_seconds: float
    worker: str

    @property
    def units(self) -> int:
        """Number of units (seeds / fuzz runs) this chunk covered."""
        return self.stop - self.start


@dataclass
class CampaignTelemetry:
    """Aggregated timing/throughput for one campaign execution."""

    workers: int
    chunk_size: int
    mode: str
    wall_seconds: float = 0.0
    chunks: List[ChunkStats] = field(default_factory=list)

    @property
    def total_units(self) -> int:
        """Total units executed across all chunks."""
        return sum(chunk.units for chunk in self.chunks)

    @property
    def runs_per_second(self) -> float:
        """End-to-end throughput: units over campaign wall time."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_units / self.wall_seconds

    @property
    def cpu_seconds(self) -> float:
        """Total CPU time burned inside chunk bodies, all workers."""
        return sum(chunk.cpu_seconds for chunk in self.chunks)

    @property
    def busy_seconds(self) -> float:
        """Total wall time spent inside chunk bodies, all workers."""
        return sum(chunk.wall_seconds for chunk in self.chunks)

    @property
    def utilization(self) -> float:
        """Fraction of the worker pool's wall-clock capacity spent busy.

        1.0 means every worker was inside a chunk body for the whole
        campaign; low values mean workers idled (too few chunks, skewed
        chunk costs, or pool startup dominating).
        """
        capacity = self.workers * self.wall_seconds
        if capacity <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / capacity)

    def summary(self) -> str:
        """One-line human summary of the execution telemetry."""
        return (
            f"{self.total_units} units in {self.wall_seconds:.2f}s wall "
            f"({self.runs_per_second:.1f} runs/sec, "
            f"cpu {self.cpu_seconds:.2f}s) — "
            f"{len(self.chunks)} chunks of ≤{self.chunk_size} on "
            f"{self.workers} worker{'s' if self.workers != 1 else ''} "
            f"[{self.mode}], utilization {self.utilization:.0%}"
        )
