"""Crash-safe campaign checkpoints: an append-only chunk-report journal.

A campaign interrupted at chunk *k* has already paid for chunks
``0..k-1``; because chunk reports are pure functions of their unit
ranges and merge through an associative monoid (docs/CAMPAIGNS.md), the
finished prefix can be replayed from disk and the resumed run's merged
report is *identical* to an uninterrupted one.  This module is that
disk format:

* **Journal layout** — line-oriented JSON: a header record carrying
  ``schema_version``, a campaign fingerprint, and the chunk geometry,
  followed by one record per completed chunk whose report travels as a
  checksummed, base64-encoded pickle.  Records are only ever appended.
* **Atomicity** — every flush writes the whole journal to
  ``<path>.tmp``, fsyncs, then ``os.replace``-renames over ``<path>``.
  A crash mid-write leaves at worst a stale tmp file, which loading
  ignores and the next flush overwrites; the journal itself is always
  a complete, self-consistent snapshot.
* **Validation** — a missing header, unparseable line, checksum
  mismatch, unknown ``schema_version``, or geometry/fingerprint drift
  raises a clear :class:`~repro.errors.CheckpointError` instead of
  silently skipping or repeating work.

The engine (:func:`~repro.campaign.engine.run_campaign`) journals each
chunk as it completes and, on ``resume=True``, feeds the loaded reports
straight into the merge fold, skipping finished chunks.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
import pickle
import re
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import CheckpointError

#: Version stamp written into every journal header; bump on layout changes.
CHECKPOINT_SCHEMA_VERSION = 1

_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def job_fingerprint(job: Any, total_units: int, chunk_size: int) -> str:
    """A stable identity for one campaign: job state plus chunk geometry.

    The job's full parameterization is captured by pickling it at a
    pinned protocol (deterministic for the frozen dataclasses jobs are
    made of); jobs that cannot be pickled — e.g. a locally defined task
    — fall back to an address-stripped repr, which survives process
    restarts.  Resuming validates the stored fingerprint against the
    live job: a mismatch means the checkpoint describes a *different*
    campaign and must be rejected rather than merged into.
    """
    try:
        blob = pickle.dumps(job, protocol=4)
    except Exception:
        blob = _ADDRESS.sub("0x?", repr(job)).encode("utf-8")
    digest = hashlib.sha256()
    digest.update(blob)
    digest.update(f"|total={total_units}|chunk_size={chunk_size}".encode())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ChunkRecord:
    """One journaled chunk: its range and its decoded partial report."""

    index: int
    start: int
    stop: int
    report: Any


@dataclass(frozen=True)
class CheckpointState:
    """A parsed, validated journal: header fields plus chunk records."""

    schema_version: int
    fingerprint: str
    total_units: int
    chunk_size: int
    records: Dict[int, ChunkRecord]

    @property
    def completed_indices(self) -> List[int]:
        """Journaled chunk indices, ascending."""
        return sorted(self.records)


def _encode_report(report: Any) -> Dict[str, str]:
    """Encode a chunk report as checksummed base64 pickle fields."""
    payload = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
    return {
        "payload": base64.b64encode(payload).decode("ascii"),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }


def _decode_report(record: Dict[str, Any], line_no: int) -> Any:
    """Decode and checksum-verify a journaled report payload."""
    try:
        payload = base64.b64decode(
            record["payload"].encode("ascii"), validate=True
        )
    except (KeyError, AttributeError, binascii.Error) as error:
        raise CheckpointError(
            f"checkpoint line {line_no}: unreadable payload ({error})"
        ) from error
    digest = hashlib.sha256(payload).hexdigest()
    if digest != record.get("sha256"):
        raise CheckpointError(
            f"checkpoint line {line_no}: payload checksum mismatch "
            f"(journal corrupted or truncated mid-record)"
        )
    try:
        return pickle.loads(payload)
    except Exception as error:  # pickle raises many concrete types
        raise CheckpointError(
            f"checkpoint line {line_no}: payload failed to unpickle "
            f"({type(error).__name__}: {error})"
        ) from error


def load_checkpoint(path: str) -> CheckpointState:
    """Parse and validate a checkpoint journal.

    Raises :class:`~repro.errors.CheckpointError` on a missing or empty
    file, a malformed or truncated line, a checksum mismatch, a
    ``schema_version`` this code does not understand, or a duplicate
    chunk index.  A leftover ``<path>.tmp`` from a crashed flush is
    ignored entirely — only the atomically-renamed journal counts.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {error}"
        ) from error
    if not lines:
        raise CheckpointError(f"checkpoint {path!r} is empty")

    def parse(line: str, line_no: int) -> Dict[str, Any]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise CheckpointError(
                f"checkpoint line {line_no}: not valid JSON "
                f"(journal truncated or corrupted): {error}"
            ) from error
        if not isinstance(record, dict):
            raise CheckpointError(
                f"checkpoint line {line_no}: expected an object, "
                f"got {type(record).__name__}"
            )
        return record

    header = parse(lines[0], 1)
    if header.get("kind") != "campaign-checkpoint":
        raise CheckpointError(
            f"checkpoint {path!r} has no header record "
            f"(first line kind={header.get('kind')!r})"
        )
    version = header.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has schema_version {version!r}; "
            f"this build reads version {CHECKPOINT_SCHEMA_VERSION}"
        )
    try:
        fingerprint = header["fingerprint"]
        total_units = int(header["total_units"])
        chunk_size = int(header["chunk_size"])
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint {path!r}: malformed header ({error})"
        ) from error

    records: Dict[int, ChunkRecord] = {}
    for line_no, line in enumerate(lines[1:], start=2):
        record = parse(line, line_no)
        if record.get("kind") != "chunk":
            raise CheckpointError(
                f"checkpoint line {line_no}: unknown record kind "
                f"{record.get('kind')!r}"
            )
        try:
            index = int(record["index"])
            start = int(record["start"])
            stop = int(record["stop"])
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint line {line_no}: malformed chunk record "
                f"({error})"
            ) from error
        if index in records:
            raise CheckpointError(
                f"checkpoint line {line_no}: duplicate chunk index {index}"
            )
        records[index] = ChunkRecord(
            index=index, start=start, stop=stop,
            report=_decode_report(record, line_no),
        )
    return CheckpointState(
        schema_version=version, fingerprint=fingerprint,
        total_units=total_units, chunk_size=chunk_size, records=records,
    )


class CheckpointWriter:
    """Journals completed chunks with atomic write-rename flushes.

    Every :meth:`record_chunk` rewrites the full journal to a sibling
    tmp file, fsyncs it, and renames it over the target — so the
    on-disk journal is always a complete snapshot and a kill at any
    instant loses at most the chunk in flight.  Recording is idempotent
    per chunk index (replays after a pool fallback are no-ops).
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        total_units: int,
        chunk_size: int,
        state: Optional[CheckpointState] = None,
    ):
        self.path = path
        self.fingerprint = fingerprint
        self.total_units = total_units
        self.chunk_size = chunk_size
        self._lines: List[str] = [json.dumps({
            "kind": "campaign-checkpoint",
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "total_units": total_units,
            "chunk_size": chunk_size,
        }, sort_keys=True)]
        self._recorded = set()
        if state is not None:
            for index in state.completed_indices:
                record = state.records[index]
                self._append(
                    record.index, record.start, record.stop, record.report
                )
        self._flush()

    def _append(self, index: int, start: int, stop: int, report: Any):
        """Add one chunk line to the in-memory journal image."""
        body = {"kind": "chunk", "index": index, "start": start,
                "stop": stop}
        body.update(_encode_report(report))
        self._lines.append(json.dumps(body, sort_keys=True))
        self._recorded.add(index)

    def _flush(self) -> None:
        """Write the journal image to tmp, fsync, and rename into place.

        Creates missing parent directories on the way: a first-boot
        ``--resume state/run.ckpt`` (the natural service path) starts
        fresh and creates the journal instead of failing.
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".tmp",
            dir=directory,
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write("\n".join(self._lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def record_chunk(
        self, index: int, start: int, stop: int, report: Any
    ) -> None:
        """Journal one completed chunk's report (idempotent, crash-safe)."""
        if index in self._recorded:
            return
        self._append(index, start, stop, report)
        self._flush()
