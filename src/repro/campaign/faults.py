"""Fault tolerance primitives: retry policy, clocks, and fault injection.

A production campaign must survive the failures the happy path never
sees — a worker that raises, hangs, or dies, an operator Ctrl-C mid
sweep.  This module supplies the three seams the engine uses to both
*tolerate* and *test* those failures:

* :class:`RetryPolicy` — how many times a failed/hung chunk is
  re-dispatched and how long to back off between attempts (exponential
  with deterministic, bounded jitter);
* :class:`Clock` / :class:`SystemClock` / :class:`FakeClock` — the time
  source behind backoff sleeps, so tier-1 tests assert exact backoff
  sequences without ever sleeping for real;
* :class:`FaultPlan` / :class:`FaultSpec` — deterministic fault
  injection at named chunk indices (crash, hang, slow,
  flaky-then-succeed, kill), active on both the pooled and in-process
  execution paths, which is what the chaos suite
  (tests/campaign/test_chaos.py) drives.

Injection is deterministic by construction: whether a given ``(chunk
index, attempt)`` pair faults depends only on the plan, never on timing
or which worker picked the chunk up — so a chaos run either equals the
fault-free run (when every chunk eventually succeeds) or degrades to a
partial report naming exactly the ranges that failed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError, ValidationError


class InjectedFault(ReproError):
    """Base class for failures raised by a :class:`FaultPlan`."""


class InjectedCrash(InjectedFault):
    """A simulated worker crash: the chunk body raised before running."""


class ChunkTimeout(ReproError):
    """A chunk attempt exceeded its per-attempt timeout.

    Raised synthetically by an injected ``hang`` fault (both execution
    modes) and by the pooled engine loop when a real worker blows past
    :attr:`RetryPolicy.timeout`.  Routed through the retry policy like
    any other chunk failure.
    """


class CampaignKilled(ReproError):
    """A simulated operator kill (the deterministic Ctrl-C seam).

    Unlike every other injected fault this is **never retried**: it
    propagates straight out of ``run_campaign``, exactly like a real
    interrupt would, leaving the checkpoint journal (if any) holding
    every chunk completed so far.  The kill-and-resume chaos tests
    raise it at chunk *k*, then resume from the journal and assert the
    merged report is identical to an uninterrupted run.
    """


class Clock:
    """Time-source seam for retry scheduling and injected slowness.

    The engine only ever calls :meth:`now` and :meth:`sleep`, so a test
    can swap in a :class:`FakeClock` and observe the exact backoff
    sequence with zero real waiting.  Scientific results never depend
    on the clock — it only paces retries.
    """

    def now(self) -> float:
        """Current monotonic time in seconds."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (or pretend to, for fake clocks)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real wall clock: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        """Really sleep (only ever called between retry attempts)."""
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A deterministic virtual clock for tier-1 tests.

    ``sleep`` advances virtual time instantly and records the requested
    duration in :attr:`sleeps`, so a test asserts the whole backoff
    sequence (including jitter bounds) in microseconds of real time.
    """

    def __init__(self, start: float = 0.0):
        self.current = float(start)
        self.sleeps: List[float] = []

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.current

    def sleep(self, seconds: float) -> None:
        """Advance virtual time and record the sleep, without blocking."""
        self.sleeps.append(seconds)
        self.current += max(0.0, seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """How failed or hung chunks are retried.

    A chunk gets ``1 + max_retries`` attempts.  The delay before retry
    attempt *a* (``a >= 1``) is exponential —
    ``min(max_delay, base_delay * backoff_factor**(a-1))`` — widened by
    a deterministic jitter of at most ``±jitter`` (a fraction), derived
    from the chunk index and attempt number so two runs of the same
    campaign back off identically.  ``timeout`` (seconds, pooled path
    only) bounds each attempt's wall time; a breach counts as a failed
    attempt (:class:`ChunkTimeout`) and is retried like a crash.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    timeout: Optional[float] = None

    def __post_init__(self):
        """Reject nonsensical policies at construction time."""
        if self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError(
                f"timeout must be positive, got {self.timeout}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a chunk gets: the first try plus the retries."""
        return 1 + self.max_retries

    def delay_before(self, chunk_index: int, attempt: int) -> float:
        """Backoff delay (seconds) before retry ``attempt`` of a chunk.

        ``attempt`` counts from 1 (the first *retry*).  Deterministic:
        the jitter is drawn from an RNG seeded by ``(chunk_index,
        attempt)``, so the same campaign always backs off identically
        and tests can pin the exact sequence.  The result is always in
        ``[base * (1 - jitter), base * (1 + jitter)]`` where ``base`` is
        the capped exponential term.
        """
        if attempt < 1:
            raise ValidationError(
                f"retry attempt numbers start at 1, got {attempt}"
            )
        base = min(
            self.max_delay,
            self.base_delay * self.backoff_factor ** (attempt - 1),
        )
        if not self.jitter or not base:
            return base
        rng = random.Random(
            (chunk_index + 1) * 0x9E3779B97F4A7C15 + attempt
        )
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


#: Fault kinds a :class:`FaultSpec` may inject.
FAULT_KINDS = ("crash", "hang", "slow", "flaky", "kill")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault at a single chunk index.

    ``kind`` selects the behavior; ``attempts`` limits how many of the
    chunk's attempts (counted from 0) are affected — ``None`` means
    every attempt, so the chunk can never succeed:

    * ``crash`` — raise :class:`InjectedCrash` on affected attempts;
    * ``flaky`` — same as ``crash`` but ``attempts`` defaults to 1:
      fail, then succeed on retry;
    * ``hang`` — raise :class:`ChunkTimeout` on affected attempts (a
      deterministic stand-in for a worker stuck past its timeout);
    * ``slow`` — sleep ``delay`` seconds on affected attempts, then run
      the chunk normally;
    * ``kill`` — raise :class:`CampaignKilled`, which is never retried
      and aborts the whole campaign (the checkpoint keeps what
      finished).
    """

    kind: str
    attempts: Optional[int] = None
    delay: float = 0.05

    def __post_init__(self):
        """Validate the kind and normalize flaky's attempt default."""
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.kind == "flaky" and self.attempts is None:
            object.__setattr__(self, "attempts", 1)
        if self.attempts is not None and self.attempts < 1:
            raise ValidationError(
                f"attempts must be >= 1 or None, got {self.attempts}"
            )
        if self.delay < 0:
            raise ValidationError(f"delay must be >= 0, got {self.delay}")

    def affects(self, attempt: int) -> bool:
        """True when this spec fires on (0-based) ``attempt``."""
        return self.attempts is None or attempt < self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault-injection schedule, keyed by chunk index.

    Picklable (so it ships to pool workers unchanged) and purely a
    function of ``(chunk_index, attempt)`` — the same plan injects the
    same faults whether chunks run pooled, in-process, or resumed.  An
    empty plan is a no-op; the engine skips injection entirely when no
    plan is supplied, keeping the fault machinery off the hot path.
    """

    faults: Dict[int, FaultSpec] = field(default_factory=dict)

    @staticmethod
    def flaky(*chunk_indices: int, failures: int = 1) -> "FaultPlan":
        """A plan where each named chunk fails ``failures`` times, then succeeds."""
        return FaultPlan({
            index: FaultSpec("flaky", attempts=failures)
            for index in chunk_indices
        })

    @staticmethod
    def crash(*chunk_indices: int) -> "FaultPlan":
        """A plan where each named chunk crashes on every attempt."""
        return FaultPlan({
            index: FaultSpec("crash") for index in chunk_indices
        })

    @staticmethod
    def kill_at(chunk_index: int) -> "FaultPlan":
        """A plan that kills the whole campaign at one chunk (Ctrl-C seam)."""
        return FaultPlan({chunk_index: FaultSpec("kill")})

    def spec_for(self, chunk_index: int) -> Optional[FaultSpec]:
        """The fault configured at ``chunk_index``, if any."""
        return self.faults.get(chunk_index)

    def apply(
        self, chunk_index: int, attempt: int, clock: Optional[Clock] = None
    ) -> None:
        """Inject the configured fault for ``(chunk_index, attempt)``.

        Called by the engine just before a chunk body runs — in the
        worker process on the pooled path, on the calling thread
        in-process — so both modes observe identical faults.  Raises
        the fault's exception, sleeps (``slow``), or does nothing.
        """
        spec = self.faults.get(chunk_index)
        if spec is None or not spec.affects(attempt):
            return
        if spec.kind == "kill":
            raise CampaignKilled(
                f"injected kill at chunk {chunk_index} "
                f"(attempt {attempt})"
            )
        if spec.kind in ("crash", "flaky"):
            raise InjectedCrash(
                f"injected {spec.kind} at chunk {chunk_index} "
                f"(attempt {attempt})"
            )
        if spec.kind == "hang":
            raise ChunkTimeout(
                f"injected hang at chunk {chunk_index} "
                f"(attempt {attempt})"
            )
        # slow: delay, then let the chunk body run normally.
        (clock or SystemClock()).sleep(spec.delay)
