"""The fault-tolerant parallel campaign executor.

:func:`run_campaign` shards a job's unit range into chunks
(:mod:`repro.campaign.partition`), executes the chunks on a
``multiprocessing`` worker pool, and folds the partial reports back into
one with the report class's associative ``merge()`` — always in ascending
chunk order, so even dictionary insertion order in the merged report
matches a serial run and the result is byte-identical regardless of
which worker finished first.

The engine survives the failures a long campaign actually meets:

* **Retry with backoff.**  A chunk whose attempt raises or times out is
  re-dispatched under a :class:`~repro.campaign.faults.RetryPolicy`
  (bounded retries, exponential backoff with deterministic jitter) —
  a worker exception is a *chunk* problem, never campaign-fatal.
* **Crash-safe checkpoints.**  With ``checkpoint=<path>``, every
  completed chunk report is journaled atomically
  (:mod:`repro.campaign.checkpoint`); ``resume=True`` replays the
  journal, skips finished chunks, and merges to a report identical to
  an uninterrupted run (the monoid merge makes this exact, not
  approximate).
* **Graceful degradation.**  A chunk that exhausts its retries is
  recorded as a :class:`~repro.campaign.telemetry.ChunkFailure`; the
  campaign still completes, and the result's summary names exactly
  which unit ranges are missing.  ``strict=True`` upgrades that to a
  :class:`~repro.errors.CampaignError`.
* **Deterministic fault injection.**  A
  :class:`~repro.campaign.faults.FaultPlan` injects crash/hang/slow/
  flaky faults at named chunk indices on both execution paths — the
  seam the chaos suite (tests/campaign/test_chaos.py) drives.

Execution still degrades gracefully at the platform level: ``workers=1``,
an empty campaign, an unpicklable job, or a platform without usable
process pools all take the in-process path, which runs the identical
chunk/retry/merge pipeline on the calling thread.  Timing telemetry for
either path is collected in a
:class:`~repro.campaign.telemetry.CampaignTelemetry` alongside — never
inside — the merged report.
"""

from __future__ import annotations

import heapq
import multiprocessing
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.campaign.faults import (
    CampaignKilled,
    ChunkTimeout,
    Clock,
    FaultPlan,
    RetryPolicy,
    SystemClock,
)
from repro.campaign.jobs import (
    ExploreJob,
    FuzzJob,
    SweepProtocolJob,
    SweepSimulationJob,
)
from repro.campaign.pump import (
    _ChunkOutcomes,
    _tag_mode,
    execute_chunk,
    merge_campaign,
    prepare_campaign,
)
from repro.campaign.telemetry import (
    CampaignTelemetry,
    ChunkFailure,
)
from repro.errors import CampaignError


@dataclass
class CampaignResult:
    """A merged report plus the telemetry of producing it.

    ``missing`` names the unit ranges lost to permanently failed chunks
    (empty on a complete campaign) — partial results are explicit,
    never silent.
    """

    report: Any
    telemetry: CampaignTelemetry
    missing: Tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        """True when every chunk succeeded (no units are missing)."""
        return not self.telemetry.failures

    @property
    def failed_chunks(self) -> List[ChunkFailure]:
        """Chunks that exhausted their retry budget, ascending by index."""
        return list(self.telemetry.failures)

    def missing_ranges(self) -> List[Tuple[int, int]]:
        """``(start, stop)`` unit ranges absent from the merged report."""
        return [(f.start, f.stop) for f in self.telemetry.failures]

    def summary(self) -> str:
        """The scientific summary, the throughput line, and — for a
        partial result — the exact missing ranges."""
        lines = [self.report.summary(), self.telemetry.summary()]
        if not self.complete:
            lines.append(
                "PARTIAL RESULT — missing " + "; ".join(self.missing)
            )
        return "\n".join(lines)


def _pool_context() -> "multiprocessing.context.BaseContext":
    """The multiprocessing context to use: fork when the platform has it.

    Fork keeps worker startup cheap (no re-import of the library); on
    platforms without it the default start method is used, and failures
    at pool-construction time fall back to in-process execution.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_chunks_pooled(
    job: Any,
    chunks: Sequence[Tuple[int, int]],
    remaining: Sequence[int],
    workers: int,
    outcomes: _ChunkOutcomes,
    faults: Optional[FaultPlan],
) -> str:
    """Execute ``remaining`` chunks on a process pool with retry/timeout.

    Failed or timed-out attempts are re-dispatched after their backoff
    delay (real wall clock — fake clocks only pace the in-process
    path); attempts that exhaust the budget land in
    ``outcomes.failures``.  Raises only on infrastructure failures
    (pool construction, a broken executor) or an injected
    :class:`CampaignKilled` — the caller handles both.  Returns the
    mode tag.
    """
    context = _pool_context()
    retry = outcomes.retry
    clock = SystemClock()
    pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    abandoned = 0
    try:
        inflight: Dict[Any, Tuple[int, int, Optional[float]]] = {}
        ready: List[Tuple[float, int, int]] = []

        def submit(index: int, attempt: int) -> None:
            start, stop = chunks[index]
            future = pool.submit(
                execute_chunk, job, index, start, stop, attempt, faults
            )
            deadline = (
                clock.now() + retry.timeout
                if retry.timeout is not None else None
            )
            inflight[future] = (index, attempt, deadline)

        for index in remaining:
            submit(index, 0)

        while inflight or ready:
            now = clock.now()
            while ready and ready[0][0] <= now:
                _, index, attempt = heapq.heappop(ready)
                submit(index, attempt)
            if not inflight:
                clock.sleep(max(0.0, ready[0][0] - clock.now()))
                continue

            timeout = max(0.0, ready[0][0] - now) if ready else None
            deadlines = [
                deadline for (_, _, deadline) in inflight.values()
                if deadline is not None
            ]
            if deadlines:
                until_deadline = max(0.0, min(deadlines) - now)
                timeout = (
                    until_deadline if timeout is None
                    else min(timeout, until_deadline)
                )
            done, _ = wait(
                set(inflight), timeout=timeout,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                index, attempt, _deadline = inflight.pop(future)
                try:
                    _index, report, stats = future.result()
                    outcomes.verify_chunk(report)
                except CampaignKilled:
                    raise
                except BrokenExecutor:
                    raise
                except Exception as error:
                    if outcomes.fail(index, attempt, error):
                        heapq.heappush(ready, (
                            clock.now()
                            + retry.delay_before(index, attempt + 1),
                            index, attempt + 1,
                        ))
                else:
                    outcomes.succeed(index, report, stats)
            now = clock.now()
            for future, (index, attempt, deadline) in list(
                inflight.items()
            ):
                if deadline is not None and now >= deadline:
                    del inflight[future]
                    if not future.cancel():
                        # Still running: the result (if it ever comes)
                        # is discarded; the worker slot is lost until
                        # the attempt finishes or the pool shuts down.
                        abandoned += 1
                    error = ChunkTimeout(
                        f"chunk {index} attempt {attempt} exceeded "
                        f"the {retry.timeout}s per-attempt timeout"
                    )
                    if outcomes.fail(index, attempt, error):
                        heapq.heappush(ready, (
                            clock.now()
                            + retry.delay_before(index, attempt + 1),
                            index, attempt + 1,
                        ))
    finally:
        # Don't block campaign completion on genuinely hung workers.
        pool.shutdown(wait=abandoned == 0, cancel_futures=True)
    return f"pool:{context.get_start_method()}"


def _run_chunks_inprocess(
    job: Any,
    chunks: Sequence[Tuple[int, int]],
    remaining: Sequence[int],
    outcomes: _ChunkOutcomes,
    faults: Optional[FaultPlan],
    clock: Clock,
) -> None:
    """Execute ``remaining`` chunks serially with the same retry pipeline.

    Backoff sleeps go through ``clock``, so tier-1 tests drive retries
    with a :class:`~repro.campaign.faults.FakeClock` and never block.
    Per-attempt timeouts cannot preempt a single-threaded chunk body;
    injected ``hang`` faults still exercise the timeout handling
    deterministically.
    """
    retry = outcomes.retry
    for index in remaining:
        start, stop = chunks[index]
        attempt = 0
        while True:
            try:
                _index, report, stats = execute_chunk(
                    job, index, start, stop, attempt, faults, clock
                )
                outcomes.verify_chunk(report)
            except CampaignKilled:
                raise
            except Exception as error:
                if not outcomes.fail(index, attempt, error):
                    break
                attempt += 1
                clock.sleep(retry.delay_before(index, attempt))
            else:
                outcomes.succeed(index, report, stats)
                break


#: Exception types that mean "the pool itself is unusable" — the
#: campaign continues in-process.  Worker exceptions never surface here
#: anymore; they are retried per chunk inside the pooled loop.
_POOL_INFRA_ERRORS = (
    OSError,
    ValueError,
    RuntimeError,        # includes BrokenExecutor / BrokenProcessPool
    ImportError,
    AttributeError,
    TypeError,
    pickle.PicklingError,
)


def run_campaign(
    job: Any,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    *,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    strict: bool = False,
    clock: Optional[Clock] = None,
    verify_certificates: bool = False,
) -> CampaignResult:
    """Execute a campaign job, in parallel when possible, surviving faults.

    ``workers``/``chunk_size`` default to the auto policy
    (:meth:`~repro.campaign.partition.ShardingPolicy.resolve`).  The
    merged report is identical — including summaries — for every choice
    of ``workers`` and ``chunk_size``, and across checkpoint/resume
    boundaries; only the telemetry differs.

    Keyword options:

    * ``retry`` — the :class:`~repro.campaign.faults.RetryPolicy` for
      failed/hung chunks (default: 2 retries, exponential backoff);
    * ``faults`` — a :class:`~repro.campaign.faults.FaultPlan` for
      deterministic fault injection (chaos testing);
    * ``checkpoint`` — journal completed chunk reports to this path
      (atomic write-rename, fsync'd) as they finish;
    * ``resume`` — when the checkpoint file exists, validate it against
      this job and skip its completed chunks (a missing file starts
      fresh, so the same command line works for first runs and
      retries);
    * ``strict`` — raise :class:`~repro.errors.CampaignError` instead
      of returning a partial result when chunks failed permanently;
    * ``clock`` — time source for backoff pacing on the in-process
      path (tests inject a FakeClock; the pooled scheduler always uses
      real time);
    * ``verify_certificates`` — treat workers as untrusted: flip the
      job into certificate-emitting mode (via its
      ``with_certificates`` hook, when it has one) and re-check every
      chunk report's certificates with the independent verifier
      (:mod:`repro.certify.verify`) before the merge fold accepts the
      chunk.  A rejected certificate is a retryable chunk failure;
      resumed checkpoint chunks are re-verified too, and failing ones
      are re-run instead of merged.  Note the flag changes the job —
      and therefore the checkpoint fingerprint — so a campaign must be
      resumed with the same setting it started with.
    """
    retry = RetryPolicy() if retry is None else retry
    clock = SystemClock() if clock is None else clock
    prepared = prepare_campaign(
        job, workers, chunk_size, checkpoint=checkpoint, resume=resume,
        verify_certificates=verify_certificates,
    )
    job = prepared.job
    policy = prepared.policy
    chunks = prepared.chunks
    completed = prepared.completed
    remaining = prepared.remaining
    outcomes = _ChunkOutcomes(
        chunks, retry, prepared.record,
        verify_certificates=verify_certificates,
    )

    wall_start = time.perf_counter()
    mode = "in-process"
    if policy.workers > 1 and len(remaining) > 1:
        # Pre-flight: a job (or plan) that cannot cross a process
        # boundary — e.g. a lambda task — takes the documented
        # in-process fallback immediately, cleanly separated from
        # worker exceptions (which are retried per chunk, never fatal).
        try:
            pickle.dumps(job)
            if faults is not None:
                pickle.dumps(faults)
        except Exception as error:
            _run_chunks_inprocess(
                job, chunks, remaining, outcomes, faults, clock
            )
            mode = f"in-process (pool unavailable: {type(error).__name__})"
        else:
            try:
                mode = _run_chunks_pooled(
                    job, chunks, remaining, policy.workers, outcomes,
                    faults,
                )
            except CampaignKilled:
                raise
            except _POOL_INFRA_ERRORS as error:
                # The pool died (or never came up).  Chunks already
                # completed and journaled stay; everything else reruns
                # in-process with the same retry pipeline.
                still_remaining = [
                    i for i in remaining
                    if i not in outcomes.results
                    and i not in outcomes.failures
                ]
                _run_chunks_inprocess(
                    job, chunks, still_remaining, outcomes, faults, clock
                )
                mode = (
                    f"in-process (pool unavailable: "
                    f"{type(error).__name__})"
                )
    else:
        _run_chunks_inprocess(
            job, chunks, remaining, outcomes, faults, clock
        )
    wall_seconds = time.perf_counter() - wall_start

    # The ascending merge fold (and the coordinator-level certificate
    # audit) is shared with the chunk-granular pump, so the service
    # path and this blocking path cannot drift.
    report, stats_in_order, missing = merge_campaign(
        job, chunks, completed, outcomes
    )

    telemetry = CampaignTelemetry(
        workers=policy.workers,
        chunk_size=policy.chunk_size,
        mode=_tag_mode(
            mode, outcomes.retries, len(outcomes.failures),
            outcomes.causes,
        ),
        wall_seconds=wall_seconds,
        chunks=stats_in_order,
        failures=[
            outcomes.failures[i] for i in sorted(outcomes.failures)
        ],
        retries=outcomes.retries,
        skipped_chunks=len(completed),
        skipped_units=sum(
            chunks[i][1] - chunks[i][0] for i in completed
        ),
        certificates_verified=(
            outcomes.certificates_verified
            + prepared.resumed_certificates
        ),
    )
    result = CampaignResult(
        report=report, telemetry=telemetry, missing=tuple(missing)
    )
    if strict and not result.complete:
        raise CampaignError(
            "strict campaign incomplete — missing "
            + "; ".join(missing),
            result=result,
        )
    return result


def sweep_simulation_campaign(
    protocol,
    k: int,
    x: int,
    inputs,
    seeds,
    task=None,
    verify_correspondence: bool = False,
    max_steps: int = 500_000,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    strict: bool = False,
    verify_certificates: bool = False,
    **run_kwargs,
) -> CampaignResult:
    """Sharded :func:`~repro.core.sweep.sweep_simulation` over seeds."""
    job = SweepSimulationJob(
        protocol=protocol, k=k, x=x, inputs=tuple(inputs),
        seeds=tuple(seeds), task=task,
        verify_correspondence=verify_correspondence, max_steps=max_steps,
        run_kwargs=dict(run_kwargs),
    )
    return run_campaign(
        job, workers=workers, chunk_size=chunk_size, retry=retry,
        faults=faults, checkpoint=checkpoint, resume=resume,
        strict=strict, verify_certificates=verify_certificates,
    )


def sweep_protocol_campaign(
    protocol,
    inputs,
    seeds,
    task=None,
    max_steps: int = 100_000,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    strict: bool = False,
    verify_certificates: bool = False,
) -> CampaignResult:
    """Sharded :func:`~repro.core.sweep.sweep_protocol` over seeds."""
    job = SweepProtocolJob(
        protocol=protocol, inputs=tuple(inputs), seeds=tuple(seeds),
        task=task, max_steps=max_steps,
    )
    return run_campaign(
        job, workers=workers, chunk_size=chunk_size, retry=retry,
        faults=faults, checkpoint=checkpoint, resume=resume,
        strict=strict, verify_certificates=verify_certificates,
    )


def explore_campaign(
    protocol,
    inputs,
    task,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
    prefix_depth: int = 2,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    strict: bool = False,
    verify_certificates: bool = False,
    packed: bool = True,
    symmetry: bool = False,
) -> CampaignResult:
    """Sharded bounded-exhaustive exploration over schedule-prefix subtrees.

    Equivalent to :func:`~repro.analysis.explore.explore_protocol` with
    the same ``prefix_depth`` (and the same ``packed``/``symmetry``
    modes): the merged
    :class:`~repro.analysis.explore.ExplorationReport` is field-for-field
    identical for every ``workers``/``chunk_size`` choice.
    """
    job = ExploreJob(
        protocol=protocol, inputs=tuple(inputs), task=task,
        max_configs=max_configs, max_steps=max_steps,
        stop_at_first_violation=stop_at_first_violation,
        prefix_depth=prefix_depth, packed=packed, symmetry=symmetry,
    )
    return run_campaign(
        job, workers=workers, chunk_size=chunk_size, retry=retry,
        faults=faults, checkpoint=checkpoint, resume=resume,
        strict=strict, verify_certificates=verify_certificates,
    )


def fuzz_campaign(
    protocol,
    inputs,
    task,
    runs: int = 200,
    schedule_length: int = 60,
    seed: int = 0,
    shrink: bool = True,
    max_saved_violations: Optional[int] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    strict: bool = False,
    verify_certificates: bool = False,
) -> CampaignResult:
    """Sharded :func:`~repro.analysis.fuzz.fuzz_protocol` over runs."""
    from repro.analysis.fuzz import DEFAULT_MAX_SAVED_VIOLATIONS

    job = FuzzJob(
        protocol=protocol, inputs=tuple(inputs), task=task, runs=runs,
        schedule_length=schedule_length, seed=seed, shrink=shrink,
        max_saved_violations=(
            DEFAULT_MAX_SAVED_VIOLATIONS
            if max_saved_violations is None
            else max_saved_violations
        ),
    )
    return run_campaign(
        job, workers=workers, chunk_size=chunk_size, retry=retry,
        faults=faults, checkpoint=checkpoint, resume=resume,
        strict=strict, verify_certificates=verify_certificates,
    )
