"""The parallel campaign executor.

:func:`run_campaign` shards a job's unit range into chunks
(:mod:`repro.campaign.partition`), executes the chunks on a
``multiprocessing`` worker pool, and folds the partial reports back into
one with the report class's associative ``merge()`` — always in ascending
chunk order, so even dictionary insertion order in the merged report
matches a serial run and the result is byte-identical regardless of
which worker finished first.

Execution degrades gracefully: ``workers=1``, an empty campaign, or a
platform without usable process pools all take the in-process path, which
runs the identical chunk/merge pipeline on the calling thread (same
report, no processes).  Timing telemetry for either path is collected in
a :class:`~repro.campaign.telemetry.CampaignTelemetry` alongside — never
inside — the merged report.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign.jobs import (
    ExploreJob,
    FuzzJob,
    SweepProtocolJob,
    SweepSimulationJob,
)
from repro.campaign.partition import ShardingPolicy, plan_chunks
from repro.campaign.telemetry import CampaignTelemetry, ChunkStats


@dataclass
class CampaignResult:
    """A merged report plus the telemetry of producing it."""

    report: Any
    telemetry: CampaignTelemetry

    def summary(self) -> str:
        """Two lines: the scientific summary, then the throughput one."""
        return f"{self.report.summary()}\n{self.telemetry.summary()}"


def _execute_chunk(
    job: Any, index: int, start: int, stop: int
) -> Tuple[int, Any, ChunkStats]:
    """Run one chunk, timing its body; executes in worker or parent."""
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    report = job.run_range(start, stop)
    stats = ChunkStats(
        index=index,
        start=start,
        stop=stop,
        wall_seconds=time.perf_counter() - wall_start,
        cpu_seconds=time.process_time() - cpu_start,
        worker=f"pid:{os.getpid()}",
    )
    return index, report, stats


def _pool_context() -> "multiprocessing.context.BaseContext":
    """The multiprocessing context to use: fork when the platform has it.

    Fork keeps worker startup cheap (no re-import of the library); on
    platforms without it the default start method is used, and failures
    at pool-construction time fall back to in-process execution.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_chunks_pooled(
    job: Any, chunks: List[Tuple[int, int]], workers: int
) -> Tuple[Dict[int, Tuple[Any, ChunkStats]], str]:
    """Execute chunks on a process pool; returns results and mode tag.

    Raises whatever the platform raises if pools are unusable — the
    caller catches and falls back to in-process execution.
    """
    context = _pool_context()
    results: Dict[int, Tuple[Any, ChunkStats]] = {}
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=context
    ) as pool:
        futures = [
            pool.submit(_execute_chunk, job, index, start, stop)
            for index, (start, stop) in enumerate(chunks)
        ]
        for future in futures:
            index, report, stats = future.result()
            results[index] = (report, stats)
    return results, f"pool:{context.get_start_method()}"


def _run_chunks_inprocess(
    job: Any, chunks: List[Tuple[int, int]]
) -> Dict[int, Tuple[Any, ChunkStats]]:
    """Execute chunks serially on the calling thread (same pipeline)."""
    results: Dict[int, Tuple[Any, ChunkStats]] = {}
    for index, (start, stop) in enumerate(chunks):
        chunk_index, report, stats = _execute_chunk(job, index, start, stop)
        results[chunk_index] = (report, stats)
    return results


def run_campaign(
    job: Any,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Execute a campaign job, in parallel when possible.

    ``workers``/``chunk_size`` default to the auto policy
    (:meth:`~repro.campaign.partition.ShardingPolicy.resolve`).  The
    merged report is identical — including summaries — for every choice
    of ``workers`` and ``chunk_size``; only the telemetry differs.
    """
    total = job.total_units()
    policy = ShardingPolicy.resolve(total, workers, chunk_size)
    chunks = plan_chunks(total, policy.chunk_size)

    wall_start = time.perf_counter()
    mode = "in-process"
    if policy.workers > 1 and len(chunks) > 1:
        # Besides platform failures (no semaphores, fork unavailable), an
        # unpicklable job — e.g. a lambda task — surfaces from
        # future.result() as PicklingError, AttributeError, or TypeError
        # depending on interpreter and payload; all of them take the same
        # documented in-process fallback, tagged with the cause.
        try:
            results, mode = _run_chunks_pooled(job, chunks, policy.workers)
        except (
            OSError,
            ValueError,
            RuntimeError,
            ImportError,
            AttributeError,
            TypeError,
            pickle.PicklingError,
        ) as error:
            results = _run_chunks_inprocess(job, chunks)
            mode = f"in-process (pool unavailable: {type(error).__name__})"
    else:
        results = _run_chunks_inprocess(job, chunks)
    wall_seconds = time.perf_counter() - wall_start

    report = job.empty_report()
    stats_in_order: List[ChunkStats] = []
    for index in range(len(chunks)):
        chunk_report, stats = results[index]
        report = report.merge(chunk_report)
        stats_in_order.append(stats)
    report = job.finalize(report)

    telemetry = CampaignTelemetry(
        workers=policy.workers,
        chunk_size=policy.chunk_size,
        mode=mode,
        wall_seconds=wall_seconds,
        chunks=stats_in_order,
    )
    return CampaignResult(report=report, telemetry=telemetry)


def sweep_simulation_campaign(
    protocol,
    k: int,
    x: int,
    inputs,
    seeds,
    task=None,
    verify_correspondence: bool = False,
    max_steps: int = 500_000,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    **run_kwargs,
) -> CampaignResult:
    """Sharded :func:`~repro.core.sweep.sweep_simulation` over seeds."""
    job = SweepSimulationJob(
        protocol=protocol, k=k, x=x, inputs=tuple(inputs),
        seeds=tuple(seeds), task=task,
        verify_correspondence=verify_correspondence, max_steps=max_steps,
        run_kwargs=dict(run_kwargs),
    )
    return run_campaign(job, workers=workers, chunk_size=chunk_size)


def sweep_protocol_campaign(
    protocol,
    inputs,
    seeds,
    task=None,
    max_steps: int = 100_000,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Sharded :func:`~repro.core.sweep.sweep_protocol` over seeds."""
    job = SweepProtocolJob(
        protocol=protocol, inputs=tuple(inputs), seeds=tuple(seeds),
        task=task, max_steps=max_steps,
    )
    return run_campaign(job, workers=workers, chunk_size=chunk_size)


def explore_campaign(
    protocol,
    inputs,
    task,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
    prefix_depth: int = 2,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Sharded bounded-exhaustive exploration over schedule-prefix subtrees.

    Equivalent to :func:`~repro.analysis.explore.explore_protocol` with
    the same ``prefix_depth``: the merged
    :class:`~repro.analysis.explore.ExplorationReport` is field-for-field
    identical for every ``workers``/``chunk_size`` choice.
    """
    job = ExploreJob(
        protocol=protocol, inputs=tuple(inputs), task=task,
        max_configs=max_configs, max_steps=max_steps,
        stop_at_first_violation=stop_at_first_violation,
        prefix_depth=prefix_depth,
    )
    return run_campaign(job, workers=workers, chunk_size=chunk_size)


def fuzz_campaign(
    protocol,
    inputs,
    task,
    runs: int = 200,
    schedule_length: int = 60,
    seed: int = 0,
    shrink: bool = True,
    max_saved_violations: Optional[int] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> CampaignResult:
    """Sharded :func:`~repro.analysis.fuzz.fuzz_protocol` over runs."""
    from repro.analysis.fuzz import DEFAULT_MAX_SAVED_VIOLATIONS

    job = FuzzJob(
        protocol=protocol, inputs=tuple(inputs), task=task, runs=runs,
        schedule_length=schedule_length, seed=seed, shrink=shrink,
        max_saved_violations=(
            DEFAULT_MAX_SAVED_VIOLATIONS
            if max_saved_violations is None
            else max_saved_violations
        ),
    )
    return run_campaign(job, workers=workers, chunk_size=chunk_size)
