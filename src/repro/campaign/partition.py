"""Sharding policy: how a campaign's unit range is cut into chunks.

A campaign is a range of *units* (seed indices for sweeps, run indices
for fuzzing).  The engine cuts ``[0, total)`` into contiguous chunks and
hands each chunk to a worker.  Chunking only affects scheduling — the
merged report is identical for every chunking (docs/CAMPAIGNS.md) — so
the policy here is purely about throughput: enough chunks per worker to
even out load imbalance, few enough that per-chunk overhead stays noise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Tuple

#: Target number of chunks handed to each worker (load-balancing slack).
CHUNKS_PER_WORKER = 4


def _available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine's CPUs even when the process
    is pinned to fewer by a CPU affinity mask or a container cgroup
    quota (the normal situation in CI), which would oversubscribe the
    pool.  ``os.sched_getaffinity(0)`` reflects the mask where the
    platform has it (Linux); elsewhere fall back to ``os.cpu_count()``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:
            pass
    return os.cpu_count() or 1


def auto_workers(total_units: int) -> int:
    """Default worker count: one per available CPU, never more than
    units."""
    return max(1, min(_available_cpus(), total_units))


def auto_chunk_size(total_units: int, workers: int) -> int:
    """Default chunk size: ~``CHUNKS_PER_WORKER`` chunks per worker."""
    if total_units <= 0:
        return 1
    target_chunks = max(1, workers) * CHUNKS_PER_WORKER
    return max(1, -(-total_units // target_chunks))


def plan_chunks(total_units: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Cut ``[0, total_units)`` into ``(start, stop)`` chunks, in order.

    Chunks are contiguous, disjoint, cover the whole range, and all but
    the last have exactly ``chunk_size`` units.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, min(start + chunk_size, total_units))
        for start in range(0, total_units, chunk_size)
    ]


@dataclass(frozen=True)
class ShardingPolicy:
    """Resolved execution parameters for one campaign.

    ``workers`` and ``chunk_size`` are the values actually used after
    applying the auto defaults to the user's (possibly ``None``)
    requests.
    """

    workers: int
    chunk_size: int

    @staticmethod
    def resolve(
        total_units: int,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
    ) -> "ShardingPolicy":
        """Fill in auto defaults for any parameter left as ``None``."""
        resolved_workers = (
            auto_workers(total_units) if workers is None else workers
        )
        if resolved_workers < 1:
            raise ValueError(f"workers must be >= 1, got {resolved_workers}")
        resolved_chunk = (
            auto_chunk_size(total_units, resolved_workers)
            if chunk_size is None
            else chunk_size
        )
        if resolved_chunk < 1:
            raise ValueError(f"chunk_size must be >= 1, got {resolved_chunk}")
        return ShardingPolicy(
            workers=resolved_workers, chunk_size=resolved_chunk
        )
