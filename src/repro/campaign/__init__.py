"""Parallel experiment campaigns with deterministic report merging.

The safety oracles of this reproduction — seed sweeps
(:mod:`repro.core.sweep`), schedule fuzzing
(:mod:`repro.analysis.fuzz`), and bounded-exhaustive exploration
(:mod:`repro.analysis.explore`) — are embarrassingly parallel across
seeds, runs, and schedule-prefix subtrees.  This package shards those
unit ranges across a
``multiprocessing`` worker pool and folds the partial reports back with
each report class's associative, commutative ``merge()``, so a parallel
campaign's report is **byte-identical** to a serial one regardless of
worker count, chunk size, or completion order (the contract, and why it
holds, is documented in docs/CAMPAIGNS.md and enforced by
tests/campaign/).

Campaigns are also fault tolerant: failed or hung chunks are retried
with exponential backoff (:class:`~repro.campaign.faults.RetryPolicy`),
completed chunk reports can be journaled to a crash-safe checkpoint and
resumed (:mod:`repro.campaign.checkpoint`), chunks that exhaust their
retries degrade to an explicit partial result, and a deterministic
:class:`~repro.campaign.faults.FaultPlan` injects crash/hang/slow/flaky
faults for the chaos suite.  Resume merges byte-identically with an
uninterrupted run — the same monoid merge that makes parallelism
deterministic makes recovery exact.

* :mod:`repro.campaign.engine` — :func:`run_campaign` and the
  per-oracle wrappers (:func:`sweep_simulation_campaign`,
  :func:`sweep_protocol_campaign`, :func:`fuzz_campaign`,
  :func:`explore_campaign`);
* :mod:`repro.campaign.pump` — the chunk-granular campaign pump
  (:class:`~repro.campaign.pump.CampaignPump`): setup, per-chunk
  dispatch, and the merge fold as separable steps, so a long-lived
  scheduler (:mod:`repro.serve`) can interleave many campaigns over
  one shared pool;
* :mod:`repro.campaign.jobs` — picklable job descriptions workers run;
* :mod:`repro.campaign.partition` — workers/chunk-size policy;
* :mod:`repro.campaign.telemetry` — per-chunk timing, retries, and
  failure accounting;
* :mod:`repro.campaign.faults` — retry policy, clocks, and
  deterministic fault injection;
* :mod:`repro.campaign.checkpoint` — the crash-safe chunk-report
  journal behind ``--resume``.
"""

from repro.campaign.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointState,
    CheckpointWriter,
    ChunkRecord,
    job_fingerprint,
    load_checkpoint,
)
from repro.campaign.engine import (
    CampaignResult,
    explore_campaign,
    fuzz_campaign,
    run_campaign,
    sweep_protocol_campaign,
    sweep_simulation_campaign,
)
from repro.campaign.faults import (
    CampaignKilled,
    ChunkTimeout,
    Clock,
    FakeClock,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    RetryPolicy,
    SystemClock,
)
from repro.campaign.jobs import (
    ExploreJob,
    FuzzJob,
    SweepProtocolJob,
    SweepSimulationJob,
)
from repro.campaign.partition import (
    ShardingPolicy,
    auto_chunk_size,
    auto_workers,
    plan_chunks,
)
from repro.campaign.pump import (
    CampaignPump,
    ChunkTask,
    PreparedCampaign,
    execute_chunk,
    merge_campaign,
    prepare_campaign,
)
from repro.campaign.telemetry import (
    CampaignTelemetry,
    ChunkFailure,
    ChunkStats,
)

__all__ = [
    "CampaignResult",
    "CampaignPump",
    "ChunkTask",
    "PreparedCampaign",
    "execute_chunk",
    "merge_campaign",
    "prepare_campaign",
    "run_campaign",
    "sweep_simulation_campaign",
    "sweep_protocol_campaign",
    "fuzz_campaign",
    "explore_campaign",
    "SweepSimulationJob",
    "SweepProtocolJob",
    "FuzzJob",
    "ExploreJob",
    "ShardingPolicy",
    "auto_workers",
    "auto_chunk_size",
    "plan_chunks",
    "CampaignTelemetry",
    "ChunkStats",
    "ChunkFailure",
    "RetryPolicy",
    "FaultPlan",
    "FaultSpec",
    "Clock",
    "SystemClock",
    "FakeClock",
    "InjectedFault",
    "InjectedCrash",
    "ChunkTimeout",
    "CampaignKilled",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointState",
    "CheckpointWriter",
    "ChunkRecord",
    "job_fingerprint",
    "load_checkpoint",
]
