"""Chunk-granular campaign execution: the pump behind the engine.

:func:`~repro.campaign.engine.run_campaign` drives a campaign from
start to finish on one call stack, which is the right shape for a CLI
— but a long-lived service (:mod:`repro.serve`) must interleave chunks
from *many* campaigns over one shared worker pool.  This module is the
refactor that makes both possible from the same pieces:

* :func:`prepare_campaign` — everything that happens before the first
  chunk runs: resolve the sharding policy, plan chunks, validate and
  replay a resume journal (re-verifying resumed certificates under the
  untrusted-worker gate), and open the checkpoint writer.
* :func:`execute_chunk` — run one chunk attempt (in a pool worker or on
  the calling thread) and time it.
* :func:`merge_campaign` — the ascending, deterministic merge fold that
  turns chunk reports back into one report, naming missing ranges.
* :class:`CampaignPump` — a non-blocking state machine over the three:
  hand out :class:`ChunkTask`\\ s one at a time (honoring retry backoff
  deadlines), accept completions/failures, and finalize into the same
  :class:`~repro.campaign.engine.CampaignResult` a blocking run would
  produce.  A scheduler that round-robins ``next_chunk()`` across many
  pumps gets fair multiplexing with every per-campaign invariant —
  byte-identical merged reports, crash-safe journals, certificate
  gating — intact.

The blocking engine delegates its setup and merge phases here, so the
service path and the CLI path cannot drift.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.campaign.checkpoint import (
    CheckpointWriter,
    job_fingerprint,
    load_checkpoint,
)
from repro.campaign.faults import (
    ChunkTimeout,
    Clock,
    FaultPlan,
    RetryPolicy,
    SystemClock,
)
from repro.campaign.partition import ShardingPolicy, plan_chunks
from repro.campaign.telemetry import (
    CampaignTelemetry,
    ChunkFailure,
    ChunkStats,
)
from repro.errors import CampaignError, CertificateError, CheckpointError


def execute_chunk(
    job: Any,
    index: int,
    start: int,
    stop: int,
    attempt: int = 0,
    faults: Optional[FaultPlan] = None,
    clock: Optional[Clock] = None,
) -> Tuple[int, Any, ChunkStats]:
    """Run one chunk attempt, timing its body; executes in worker or parent.

    Fault injection happens here — inside the worker on the pooled
    path, on the calling thread in-process — so both modes observe
    identical faults for the same ``(index, attempt)``.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    if faults is not None:
        faults.apply(index, attempt, clock)
    report = job.run_range(start, stop)
    stats = ChunkStats(
        index=index,
        start=start,
        stop=stop,
        wall_seconds=time.perf_counter() - wall_start,
        cpu_seconds=time.process_time() - cpu_start,
        worker=f"pid:{os.getpid()}",
        attempts=attempt + 1,
    )
    return index, report, stats


class _ChunkOutcomes:
    """Mutable accumulator shared by both execution paths.

    Collects successful chunk results, permanent failures, the retry
    count, and the set of failure-cause type names (used to tag
    ``telemetry.mode``).
    """

    def __init__(
        self,
        chunks: Sequence[Tuple[int, int]],
        retry: RetryPolicy,
        record: Callable[[int, Any], None],
        verify_certificates: bool = False,
    ):
        self.chunks = chunks
        self.retry = retry
        self.record = record
        self.verify_certificates = verify_certificates
        self.certificates_verified = 0
        self.results: Dict[int, Tuple[Any, ChunkStats]] = {}
        self.failures: Dict[int, ChunkFailure] = {}
        self.retries = 0
        self.causes: Set[str] = set()

    def verify_chunk(self, report: Any) -> None:
        """Re-check a chunk report's certificates before accepting it.

        The verifier is independent of the searchers, so a worker
        cannot vouch for its own result; a rejected certificate is a
        :class:`~repro.errors.CertificateError`, which both execution
        paths treat as an ordinary (retryable) chunk failure.
        """
        if not self.verify_certificates:
            return
        certificates = getattr(report, "certificates", None) or []
        if not certificates:
            return
        from repro.certify.verify import verify_certificates as check

        verdict = check(certificates)
        if not verdict.accepted:
            raise CertificateError(
                f"chunk certificate rejected ({verdict.reason}): "
                f"{verdict.detail}"
            )
        self.certificates_verified += len(certificates)

    def succeed(self, index: int, report: Any, stats: ChunkStats) -> None:
        """Accept a chunk result and journal it to the checkpoint."""
        self.results[index] = (report, stats)
        self.record(index, report)

    def fail(self, index: int, attempt: int, error: BaseException) -> bool:
        """Register a failed attempt.

        Returns ``True`` when the chunk should be retried (and counts
        the retry); records a permanent :class:`ChunkFailure` and
        returns ``False`` once the retry budget is spent.
        """
        self.causes.add(type(error).__name__)
        if attempt + 1 < self.retry.max_attempts:
            self.retries += 1
            return True
        start, stop = self.chunks[index]
        kind = "timeout" if isinstance(error, ChunkTimeout) else "error"
        self.failures[index] = ChunkFailure(
            index=index, start=start, stop=stop, attempts=attempt + 1,
            error=f"{type(error).__name__}: {error}", kind=kind,
        )
        return False


@dataclass(frozen=True)
class ChunkTask:
    """One dispatchable unit of campaign work: a chunk attempt.

    ``attempt`` counts from 0 (the first try); a retry of the same
    chunk is a fresh task with ``attempt + 1``.
    """

    index: int
    start: int
    stop: int
    attempt: int = 0

    @property
    def units(self) -> int:
        """Number of campaign units this chunk covers."""
        return self.stop - self.start


@dataclass
class PreparedCampaign:
    """A campaign after setup, before any chunk has run.

    Holds the (possibly certificate-flipped) job, the resolved
    sharding policy and chunk plan, the chunks replayed from a resume
    journal, and the open checkpoint writer.  Both the blocking engine
    and :class:`CampaignPump` start from one of these, so setup
    semantics — validation errors included — are identical.
    """

    job: Any
    total_units: int
    policy: ShardingPolicy
    chunks: List[Tuple[int, int]]
    fingerprint: str
    completed: Dict[int, Any]
    writer: Optional[CheckpointWriter]
    resumed_certificates: int = 0

    @property
    def remaining(self) -> List[int]:
        """Chunk indices still to run, ascending."""
        return [
            index for index in range(len(self.chunks))
            if index not in self.completed
        ]

    def record(self, index: int, report: Any) -> None:
        """Journal one completed chunk to the checkpoint, if one is open."""
        if self.writer is not None:
            start, stop = self.chunks[index]
            self.writer.record_chunk(index, start, stop, report)


def prepare_campaign(
    job: Any,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    *,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    verify_certificates: bool = False,
) -> PreparedCampaign:
    """Resolve policy, plan chunks, replay a resume journal, open a writer.

    This is the setup phase :func:`~repro.campaign.engine.run_campaign`
    performs before executing chunks, factored out so a chunk-granular
    caller (:class:`CampaignPump`) observes the exact same contract:

    * ``verify_certificates=True`` flips the job into
      certificate-emitting mode via its ``with_certificates`` hook;
    * a resume journal must match this campaign's fingerprint, unit
      count, and chunk geometry (``chunk_size=None`` adopts the
      journal's), else :class:`~repro.errors.CheckpointError`;
    * resumed chunk reports are re-verified under the untrusted-worker
      gate, and chunks whose certificates no longer replay are re-run
      instead of merged;
    * a missing journal file starts fresh — the writer creates the
      file (and any missing parent directories) on the first flush.
    """
    total = job.total_units()
    if verify_certificates:
        with_certificates = getattr(job, "with_certificates", None)
        if with_certificates is not None:
            job = with_certificates(True)

    state = None
    if checkpoint is not None and resume and os.path.exists(checkpoint):
        state = load_checkpoint(checkpoint)
        if chunk_size is not None and chunk_size != state.chunk_size:
            raise CheckpointError(
                f"checkpoint {checkpoint!r} was written with "
                f"chunk_size={state.chunk_size}, but chunk_size="
                f"{chunk_size} was requested; resume must reuse the "
                f"original chunk geometry"
            )
        chunk_size = state.chunk_size

    policy = ShardingPolicy.resolve(total, workers, chunk_size)
    chunks = plan_chunks(total, policy.chunk_size)
    fingerprint = job_fingerprint(job, total, policy.chunk_size)

    completed: Dict[int, Any] = {}
    if state is not None:
        if state.total_units != total:
            raise CheckpointError(
                f"checkpoint {checkpoint!r} covers {state.total_units} "
                f"units, but this campaign has {total}"
            )
        if state.fingerprint != fingerprint:
            raise CheckpointError(
                f"checkpoint {checkpoint!r} fingerprint "
                f"{state.fingerprint} does not match this campaign "
                f"({fingerprint}); refusing to merge reports from a "
                f"different job"
            )
        for index, chunk_record in state.records.items():
            if index >= len(chunks) or (
                chunk_record.start, chunk_record.stop
            ) != chunks[index]:
                raise CheckpointError(
                    f"checkpoint {checkpoint!r} chunk {index} range "
                    f"({chunk_record.start}, {chunk_record.stop}) does "
                    f"not match the campaign's chunk plan"
                )
            completed[index] = chunk_record.report

    resumed_certificates = 0
    if verify_certificates and completed:
        # Resumed chunks came from a journal a (possibly different)
        # worker wrote; re-verify them and re-run any that fail rather
        # than merging an unvouched-for report.
        from repro.certify.verify import verify_certificates as check

        for index in sorted(completed):
            certificates = getattr(
                completed[index], "certificates", None
            ) or []
            if not certificates:
                continue
            if check(certificates).accepted:
                resumed_certificates += len(certificates)
            else:
                del completed[index]

    writer = None
    if checkpoint is not None:
        writer = CheckpointWriter(
            checkpoint, fingerprint, total, policy.chunk_size,
            state=state,
        )
    return PreparedCampaign(
        job=job, total_units=total, policy=policy, chunks=chunks,
        fingerprint=fingerprint, completed=completed, writer=writer,
        resumed_certificates=resumed_certificates,
    )


def merge_campaign(
    job: Any,
    chunks: Sequence[Tuple[int, int]],
    completed: Dict[int, Any],
    outcomes: _ChunkOutcomes,
) -> Tuple[Any, List[ChunkStats], List[str]]:
    """Fold chunk reports into one, in ascending chunk order.

    Returns ``(finalized_report, stats_in_order, missing)`` where
    ``missing`` names the unit ranges of permanently failed chunks.
    The ascending fold is what makes the merged report byte-identical
    across worker counts, completion orders, and resume boundaries.
    The finalized report's certificates are re-verified under the
    untrusted-worker gate (a rejection here is a
    :class:`~repro.errors.CertificateError` — the coordinator itself
    minted the lie, so it is not retryable).
    """
    report = job.empty_report()
    stats_in_order: List[ChunkStats] = []
    missing: List[str] = []
    for index in range(len(chunks)):
        if index in completed:
            report = report.merge(completed[index])
        elif index in outcomes.results:
            chunk_report, stats = outcomes.results[index]
            report = report.merge(chunk_report)
            stats_in_order.append(stats)
        else:
            failure = outcomes.failures[index]
            missing.append(
                f"{job.describe_range(failure.start, failure.stop)} "
                f"(chunk {failure.index} failed after "
                f"{failure.attempts} attempt"
                f"{'s' if failure.attempts != 1 else ''}: "
                f"{failure.error})"
            )
    report = job.finalize(report)
    # The finalized report may carry certificates no chunk ever did —
    # sweeps mint at finalize, fuzz re-derives its shrink certificate —
    # so the gate audits the merged result as well.
    outcomes.verify_chunk(report)
    return report, stats_in_order, missing


def _tag_mode(
    mode: str, retries: int, failures: int, causes: Set[str]
) -> str:
    """Annotate the telemetry mode with retry/failure causes, if any."""
    notes = []
    if retries:
        notes.append(f"retries: {retries}")
    if failures:
        notes.append(f"failed chunks: {failures}")
    if notes and causes:
        notes.append("causes: " + ",".join(sorted(causes)))
    return f"{mode} ({'; '.join(notes)})" if notes else mode


class CampaignPump:
    """A non-blocking, chunk-granular view of one campaign.

    Where :func:`~repro.campaign.engine.run_campaign` owns its worker
    pool and blocks until the campaign settles, a pump owns *no*
    execution resources: a scheduler asks for work with
    :meth:`next_chunk`, runs the returned :class:`ChunkTask` wherever
    it likes (process pool, thread, inline), and reports back with
    :meth:`complete` or :meth:`fail`.  Interleaving calls across many
    pumps multiplexes many campaigns over one shared pool — the shape
    :mod:`repro.serve` serves — while every per-campaign invariant
    holds:

    * completed chunks are journaled crash-safely the moment they are
      accepted, so a killed-and-restarted owner resumes by building a
      fresh pump with ``resume=True`` and merges to an ``==``-identical
      report;
    * failed attempts requeue with the same deterministic backoff
      schedule the blocking engine uses (deadlines via ``clock.now()``);
    * under ``verify_certificates=True`` a chunk whose certificates
      fail independent replay is rejected and retried, never merged.

    :meth:`finalize` produces the same
    :class:`~repro.campaign.engine.CampaignResult` a blocking run
    would, with ``telemetry.mode`` tagged ``mode`` (default
    ``"pump"``).
    """

    def __init__(
        self,
        job: Any,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        *,
        retry: Optional[RetryPolicy] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        strict: bool = False,
        verify_certificates: bool = False,
        clock: Optional[Clock] = None,
    ):
        self.clock = SystemClock() if clock is None else clock
        self.retry = RetryPolicy() if retry is None else retry
        self.strict = strict
        self.prepared = prepare_campaign(
            job, workers, chunk_size, checkpoint=checkpoint,
            resume=resume, verify_certificates=verify_certificates,
        )
        self.job = self.prepared.job
        self.outcomes = _ChunkOutcomes(
            self.prepared.chunks, self.retry, self.prepared.record,
            verify_certificates=verify_certificates,
        )
        # Ready queue: (not-before time, chunk index, attempt).  First
        # attempts are ready immediately; retries carry their backoff
        # deadline.
        self._ready: List[Tuple[float, int, int]] = [
            (0.0, index, 0) for index in self.prepared.remaining
        ]
        heapq.heapify(self._ready)
        self._in_flight: Set[int] = set()
        self._wall_start = time.perf_counter()

    # ------------------------------------------------------------------
    # Introspection

    @property
    def total_chunks(self) -> int:
        """Chunks in the campaign's plan (including resumed ones)."""
        return len(self.prepared.chunks)

    @property
    def completed_chunks(self) -> int:
        """Chunks settled successfully so far (resumed + this run)."""
        return len(self.prepared.completed) + len(self.outcomes.results)

    @property
    def failed_chunks(self) -> int:
        """Chunks that exhausted their retry budget."""
        return len(self.outcomes.failures)

    @property
    def total_units(self) -> int:
        """Campaign units across all chunks."""
        return self.prepared.total_units

    @property
    def completed_units(self) -> int:
        """Units inside successfully settled chunks."""
        chunks = self.prepared.chunks
        done = set(self.prepared.completed) | set(self.outcomes.results)
        return sum(chunks[i][1] - chunks[i][0] for i in done)

    @property
    def in_flight(self) -> int:
        """Chunks currently handed out and not yet reported back."""
        return len(self._in_flight)

    @property
    def done(self) -> bool:
        """True when every chunk has settled (succeeded or failed)."""
        return not self._ready and not self._in_flight

    # ------------------------------------------------------------------
    # The pump

    def next_chunk(self, now: Optional[float] = None) -> Optional[ChunkTask]:
        """Hand out the next ready chunk attempt, or ``None``.

        ``None`` means either nothing is ready *yet* (a retry is
        waiting out its backoff — see :meth:`next_ready_at`) or the
        campaign has no undispatched work left.  The returned task is
        tracked as in-flight until :meth:`complete` or :meth:`fail`.
        """
        if not self._ready:
            return None
        now = self.clock.now() if now is None else now
        not_before, index, attempt = self._ready[0]
        if not_before > now:
            return None
        heapq.heappop(self._ready)
        self._in_flight.add(index)
        start, stop = self.prepared.chunks[index]
        return ChunkTask(index=index, start=start, stop=stop,
                         attempt=attempt)

    def next_ready_at(self) -> Optional[float]:
        """Clock time when the earliest queued chunk becomes ready."""
        if not self._ready:
            return None
        return self._ready[0][0]

    def complete(
        self, task: ChunkTask, report: Any, stats: ChunkStats
    ) -> bool:
        """Accept a finished chunk attempt's report.

        Verifies certificates first when the untrusted-worker gate is
        on; a rejected report is routed through :meth:`fail` (and so
        retried) instead of merged.  Returns ``True`` when the report
        was accepted and journaled, ``False`` when it was rejected.
        """
        try:
            self.outcomes.verify_chunk(report)
        except CertificateError as error:
            self.fail(task, error)
            return False
        self._in_flight.discard(task.index)
        self.outcomes.succeed(task.index, report, stats)
        return True

    def fail(self, task: ChunkTask, error: BaseException) -> Optional[float]:
        """Record a failed chunk attempt.

        Returns the clock time at which the retry becomes ready, or
        ``None`` when the chunk's budget is spent and it was recorded
        as a permanent :class:`~repro.campaign.telemetry.ChunkFailure`.
        """
        self._in_flight.discard(task.index)
        if not self.outcomes.fail(task.index, task.attempt, error):
            return None
        ready_at = self.clock.now() + self.retry.delay_before(
            task.index, task.attempt + 1
        )
        heapq.heappush(
            self._ready, (ready_at, task.index, task.attempt + 1)
        )
        return ready_at

    def finalize(self, mode: str = "pump"):
        """Merge all settled chunks into a CampaignResult.

        Must only be called once :attr:`done` is true.  Identical
        merge fold, telemetry accounting, and ``strict`` behavior as
        the blocking engine — a pump-driven campaign's report is
        ``==``-identical to a ``run_campaign`` of the same job.
        """
        from repro.campaign.engine import CampaignResult

        if not self.done:
            raise CampaignError(
                f"cannot finalize: {len(self._ready)} chunk(s) queued "
                f"and {len(self._in_flight)} in flight"
            )
        prepared = self.prepared
        report, stats_in_order, missing = merge_campaign(
            self.job, prepared.chunks, prepared.completed, self.outcomes
        )
        telemetry = CampaignTelemetry(
            workers=prepared.policy.workers,
            chunk_size=prepared.policy.chunk_size,
            mode=_tag_mode(
                mode, self.outcomes.retries, len(self.outcomes.failures),
                self.outcomes.causes,
            ),
            wall_seconds=time.perf_counter() - self._wall_start,
            chunks=stats_in_order,
            failures=[
                self.outcomes.failures[i]
                for i in sorted(self.outcomes.failures)
            ],
            retries=self.outcomes.retries,
            skipped_chunks=len(prepared.completed),
            skipped_units=sum(
                prepared.chunks[i][1] - prepared.chunks[i][0]
                for i in prepared.completed
            ),
            certificates_verified=(
                self.outcomes.certificates_verified
                + prepared.resumed_certificates
            ),
        )
        result = CampaignResult(
            report=report, telemetry=telemetry, missing=tuple(missing)
        )
        if self.strict and not result.complete:
            raise CampaignError(
                "strict campaign incomplete — missing "
                + "; ".join(missing),
                result=result,
            )
        return result
