"""Revisionist Simulations — executable reproduction of Ellen, Gelashvili &
Zhu, "Revisionist Simulations: A New Approach to Proving Space Lower Bounds"
(PODC 2018).

The package is layered exactly like the paper:

* :mod:`repro.runtime` / :mod:`repro.memory` — the asynchronous shared-memory
  model of Section 2 (processes, schedulers, registers, atomic snapshots, and
  the [AAD+93] snapshot construction from registers).
* :mod:`repro.timestamps` — lexicographic vector timestamps.
* :mod:`repro.augmented` — the augmented snapshot object of Section 3 /
  Figure 1, plus the Appendix B linearization analysis.
* :mod:`repro.protocols` — the protocols the bounds are about: consensus,
  x-obstruction-free k-set agreement, ε-approximate agreement.
* :mod:`repro.core` — the paper's contribution: the revisionist simulation
  (Section 4 / Appendix C), its Appendix D approximate-agreement variant, and
  the Theorem 3 bound formulas.
* :mod:`repro.solo` — the Appendix A conversion from nondeterministic solo
  termination to obstruction-freedom.
* :mod:`repro.analysis` — linearizability checking, FLP bivalence adversary,
  Burns–Lynch covering machinery.
"""

from repro.errors import (
    BenchSchemaError,
    DivergenceError,
    LinearizabilityError,
    ModelError,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ModelError",
    "ProtocolError",
    "SchedulerError",
    "LinearizabilityError",
    "SimulationError",
    "DivergenceError",
    "ValidationError",
    "BenchSchemaError",
    "__version__",
]
