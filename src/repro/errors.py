"""Exception hierarchy for the revisionist-simulations library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch everything from this package with a single handler while
still being able to distinguish model violations (bugs in a *protocol under
test*, which the library is designed to surface) from usage errors (bugs in
the *caller's* code).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """The shared-memory model was violated (e.g. a step applied out of turn)."""


class ProtocolError(ReproError):
    """A protocol under test misbehaved structurally.

    Raised when a protocol breaks the alternating scan/update normal form,
    updates a component outside the declared register range, or decides an
    invalid value type.  This is distinct from a *safety violation* (wrong
    outputs), which is reported by the analysis tools as data, not raised.
    """


class SchedulerError(ReproError):
    """A scheduler requested a step from a crashed or terminated process."""


class LinearizabilityError(ReproError):
    """A history that was required to be linearizable is not."""


class SimulationError(ReproError):
    """The revisionist simulation reached a state the paper proves unreachable.

    Seeing this exception on a *correct* protocol input indicates a bug in the
    simulation machinery itself; seeing it on an under-provisioned protocol is
    the expected falsifier outcome.
    """


class DivergenceError(ReproError):
    """An execution exceeded its step budget without the required progress.

    Used by falsifier experiments to report that a protocol (or a simulation
    of it) failed to terminate within the configured bound, which is the
    finite-run signature of a liveness violation.
    """

    def __init__(self, message: str, steps_taken: int = 0):
        super().__init__(message)
        self.steps_taken = steps_taken


class ValidationError(ReproError):
    """Invalid argument values supplied to a public API entry point."""


class CheckpointError(ReproError):
    """A campaign checkpoint could not be used.

    Raised when a checkpoint journal is missing a header, truncated or
    corrupted mid-record, carries a ``schema_version`` this code does
    not understand, or describes a different campaign (job fingerprint,
    unit count, or chunk size mismatch) than the one being resumed.
    A checkpoint that cannot be trusted must fail loudly rather than
    silently skip or repeat work.
    """


class CertificateError(ReproError):
    """A result certificate could not be built or used.

    Raised when a certificate payload contains values that have no
    canonical JSON form, when a serialized certificate is structurally
    malformed, or when a protocol/task/spec has no registered
    descriptor.  Note that a certificate that *fails verification* is
    not an exception: the verifier returns a structured rejection
    (:class:`~repro.certify.verify.Verdict`) so campaigns can treat a
    bad certificate as a retryable chunk failure, not a crash.
    """


class CampaignError(ReproError):
    """A strict campaign finished with permanently failed chunks.

    Only raised when ``strict=True`` was requested: the default
    contract is graceful degradation — the campaign completes with a
    partial report that names the missing unit ranges.  The partial
    :class:`~repro.campaign.engine.CampaignResult` is attached as
    ``result`` so callers can still inspect what did complete.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class BenchSchemaError(ReproError):
    """A benchmark artifact failed schema validation.

    Raised when a ``BENCH_*.json`` file is missing, malformed, or carries
    a ``schema_version`` this harness does not understand.  The
    comparator treats it as a hard failure: a baseline that cannot be
    read must fail the regression gate rather than silently pass it.
    """
