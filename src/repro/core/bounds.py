"""The paper's space-bound formulas, as checked arithmetic.

Theorem 3: any x-obstruction-free k-set agreement protocol for n > k
processes uses at least ⌊(n−x)/(k+1−x)⌋ + 1 registers.  The corollaries and
the upper bounds it chases are here too, plus the grid generator behind the
E2 experiment table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ValidationError


def _check_parameters(n: int, k: int, x: int) -> None:
    if k < 1:
        raise ValidationError("k must be at least 1")
    if not 1 <= x <= k:
        raise ValidationError(f"x must satisfy 1 <= x <= k (got x={x}, k={k})")
    if n <= k:
        raise ValidationError(f"need n > k (got n={n}, k={k})")


def kset_space_lower_bound(n: int, k: int, x: int = 1) -> int:
    """Theorem 3: ⌊(n−x)/(k+1−x)⌋ + 1 registers are necessary."""
    _check_parameters(n, k, x)
    return (n - x) // (k + 1 - x) + 1


def kset_space_upper_bound(n: int, k: int, x: int = 1) -> int:
    """The best known sufficient count: n − k + x registers [BRS15]."""
    _check_parameters(n, k, x)
    return n - k + x


def consensus_space_bound(n: int) -> int:
    """Consensus (k = x = 1): exactly n registers — the bounds meet."""
    lower = kset_space_lower_bound(n, 1, 1)
    upper = kset_space_upper_bound(n, 1, 1)
    assert lower == upper == n
    return n


def approx_space_lower_bound(n: int) -> int:
    """Appendix D: obstruction-free ε-approximate agreement needs at least
    ⌊n/2⌋ + 1 registers, for sufficiently small ε."""
    if n < 1:
        raise ValidationError("n must be at least 1")
    return n // 2 + 1


def simulated_process_count(m: int, k: int, x: int = 1) -> int:
    """Processes the simulation runs: (k+1−x)·m covering + x direct."""
    if m < 1:
        raise ValidationError("m must be at least 1")
    if k < 1 or not 1 <= x <= k:
        raise ValidationError("need k >= 1 and 1 <= x <= k")
    return (k + 1 - x) * m + x


def max_simulatable_registers(n: int, k: int, x: int = 1) -> int:
    """The largest m for which k+1 simulators can partition n processes:
    ⌊(n−x)/(k+1−x)⌋ — exactly one less than the Theorem 3 bound."""
    _check_parameters(n, k, x)
    return (n - x) // (k + 1 - x)


@dataclass(frozen=True)
class BoundRow:
    """One row of the E2 bound table."""

    n: int
    k: int
    x: int
    lower: int
    upper: int

    @property
    def gap(self) -> int:
        return self.upper - self.lower

    @property
    def tight(self) -> bool:
        return self.gap == 0


def bound_table(
    ns: Iterable[int], ks: Iterable[int], xs: Iterable[int] = (1,)
) -> List[BoundRow]:
    """The E2 grid: lower vs upper bound over (n, k, x) combinations.

    Invalid combinations (x > k or n <= k) are skipped, matching the
    theorem's hypotheses.
    """
    rows = []
    for n in ns:
        for k in ks:
            for x in xs:
                if x > k or n <= k:
                    continue
                rows.append(
                    BoundRow(
                        n=n,
                        k=k,
                        x=x,
                        lower=kset_space_lower_bound(n, k, x),
                        upper=kset_space_upper_bound(n, k, x),
                    )
                )
    return rows
