"""Structured experiment sweeps: many seeds, one report.

The experiments run the same harness across schedule seeds and aggregate
what happened.  This module centralizes that pattern so benchmarks, the
CLI, and user code produce consistent, comparable reports:

* :func:`sweep_simulation` — the revisionist simulation across seeds, with
  task checking and optional Lemma 28 verification per run;
* :func:`sweep_protocol` — plain protocol executions across seeds;
* :class:`SweepReport` — outcome tallies plus extremes (slowest run, first
  violating seed) that the write-ups quote.

Reports form a commutative monoid under :meth:`SweepReport.merge` with
:class:`SweepReport()` as the identity, which is what lets the parallel
campaign engine (:mod:`repro.campaign`) shard a seed range across workers
and fold the partial reports back together in any order without changing
the result.  The determinism contract is spelled out in docs/CAMPAIGNS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.invariant import check_correspondence
from repro.core.simulation import run_simulation
from repro.protocols.base import Protocol, run_protocol
from repro.runtime.scheduler import RandomScheduler


@dataclass
class SweepReport:
    """Aggregated outcomes of a seed sweep.

    ``first_violating_seed`` is the *minimum* violating seed (not the
    first encountered), so that merging partial reports from a sharded
    sweep is order-independent.
    """

    runs: int = 0
    completed: int = 0
    all_decided: int = 0
    safety_violations: int = 0
    divergences: int = 0
    correspondence_failures: int = 0
    first_violating_seed: Optional[int] = None
    max_steps_observed: int = 0
    decisions_histogram: Dict[Any, int] = field(default_factory=dict)
    #: Witness certificate (:mod:`repro.certify`) for the first
    #: (minimum-seed) violating run; excluded from equality and repr so
    #: carrying it never changes report comparisons.
    certificates: List[Any] = field(
        default_factory=list, compare=False, repr=False
    )
    #: Raw witness for the minimum-seed violating run: ``(seed,
    #: decisions)``.  Carried (never compared) so a sharded sweep's
    #: coordinator can mint the certificate once at finalize time
    #: instead of once per chunk.
    best_violation: Optional[Tuple[int, Dict[int, Any]]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def clean(self) -> bool:
        """No safety violations and no correspondence failures."""
        return (
            self.safety_violations == 0
            and self.correspondence_failures == 0
        )

    def record_decisions(self, decisions: Dict[int, Any]) -> None:
        """Fold one run's decided values into the histogram."""
        for value in decisions.values():
            self.decisions_histogram[value] = (
                self.decisions_histogram.get(value, 0) + 1
            )

    def record_violation(self, seed: int) -> None:
        """Count a safety violation, keeping the minimum violating seed."""
        self.safety_violations += 1
        if (
            self.first_violating_seed is None
            or seed < self.first_violating_seed
        ):
            self.first_violating_seed = seed

    def merge(self, other: "SweepReport") -> "SweepReport":
        """Combine two partial reports into a new one (pure).

        The operation is associative and commutative, and
        ``SweepReport()`` is its identity: tallies sum, histograms fold,
        ``max_steps_observed`` takes the max, and
        ``first_violating_seed`` takes the minimum of the non-``None``
        sides — so a sharded sweep merges to the same report no matter
        how the shards are grouped or ordered.
        """
        seeds = [
            s for s in (self.first_violating_seed, other.first_violating_seed)
            if s is not None
        ]
        histogram: Dict[Any, int] = {}
        for part in (self, other):
            for value, count in part.decisions_histogram.items():
                histogram[value] = histogram.get(value, 0) + count
        merged = SweepReport(
            runs=self.runs + other.runs,
            completed=self.completed + other.completed,
            all_decided=self.all_decided + other.all_decided,
            safety_violations=self.safety_violations + other.safety_violations,
            divergences=self.divergences + other.divergences,
            correspondence_failures=(
                self.correspondence_failures + other.correspondence_failures
            ),
            first_violating_seed=min(seeds) if seeds else None,
            max_steps_observed=max(
                self.max_steps_observed, other.max_steps_observed
            ),
            decisions_histogram=histogram,
        )
        if self.certificates or other.certificates:
            # Keep exactly the certificate(s) of the merged minimum
            # violating seed, so sharded sweeps carry the same
            # certificate set as serial ones.
            from repro.certify.certificates import sorted_certificates

            merged.certificates = sorted_certificates([
                certificate
                for certificate in self.certificates + other.certificates
                if certificate.payload.get("seed")
                == merged.first_violating_seed
            ])
        for part in (self, other):
            if part.best_violation is not None and (
                merged.best_violation is None
                or part.best_violation[0] < merged.best_violation[0]
            ):
                merged.best_violation = part.best_violation
        return merged

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.runs} runs: {self.all_decided} fully decided, "
            f"{self.safety_violations} safety violations, "
            f"{self.divergences} divergences, "
            f"{self.correspondence_failures} correspondence failures"
        )


def _attach_sweep_certificate(
    report: SweepReport,
    best: Optional[Tuple[int, Dict[int, Any]]],
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    run: str,
    max_steps: int,
    k: Optional[int] = None,
    x: Optional[int] = None,
) -> None:
    """Certify the minimum-seed violating run, if any.

    A protocol or decision value without a canonical certificate form
    just leaves the report uncertified — sweeps aggregate arbitrary
    user protocols and must not fail because one is unregistered.
    """
    if best is None:
        return
    from repro.certify.emit import sweep_run_certificate
    from repro.errors import CertificateError

    seed, decisions = best
    try:
        report.certificates = [
            sweep_run_certificate(
                protocol, inputs, task, seed, decisions, run=run,
                max_steps=max_steps, k=k, x=x,
            )
        ]
    except CertificateError:
        pass


def sweep_simulation(
    protocol: Protocol,
    k: int,
    x: int,
    inputs: Sequence[Any],
    seeds: Sequence[int],
    task=None,
    verify_correspondence: bool = False,
    max_steps: int = 500_000,
    certificates: bool = False,
    **run_kwargs,
) -> SweepReport:
    """Run the revisionist simulation across seeds and aggregate outcomes.

    ``task`` (optional) is checked against each run's decisions;
    ``verify_correspondence`` additionally runs the Lemma 28 checker per
    run (slower).  Extra keyword arguments go to
    :func:`~repro.core.simulation.run_simulation`.

    Per-run traces are discarded (only the aggregate report survives), so
    the augmented object's begin/end markers default to off here — unless
    ``verify_correspondence`` is set, whose Lemma 28 checker linearizes
    them.  Pass ``aug_annotations=True`` to force them back on.

    With ``certificates=True`` the report carries a witness certificate
    (:mod:`repro.certify`) for the minimum violating seed's run —
    the same extreme the report itself quotes — when the protocol and
    task have registered certificate descriptors.
    """
    run_kwargs.setdefault("aug_annotations", verify_correspondence)
    report = SweepReport()
    best: Optional[Tuple[int, Dict[int, Any]]] = None
    for seed in seeds:
        outcome = run_simulation(
            protocol, k=k, x=x, inputs=list(inputs),
            scheduler=RandomScheduler(seed), max_steps=max_steps,
            **run_kwargs,
        )
        report.runs += 1
        report.completed += outcome.result.completed
        report.all_decided += outcome.all_decided
        report.max_steps_observed = max(
            report.max_steps_observed, outcome.result.steps
        )
        report.record_decisions(outcome.decisions)
        if outcome.result.diverged:
            report.divergences += 1
        if task is not None and outcome.task_violations(task):
            report.record_violation(seed)
            if best is None or seed < best[0]:
                best = (seed, dict(outcome.decisions))
        if verify_correspondence and not check_correspondence(outcome).ok:
            report.correspondence_failures += 1
    report.best_violation = best
    if certificates:
        _attach_sweep_certificate(
            report, best, protocol, inputs, task, "simulation",
            max_steps, k=k, x=x,
        )
    return report


def sweep_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    seeds: Sequence[int],
    task=None,
    max_steps: int = 100_000,
    certificates: bool = False,
) -> SweepReport:
    """Run a protocol instance across seeds and aggregate outcomes.

    With ``certificates=True`` the report carries a witness certificate
    (:mod:`repro.certify`) for the minimum violating seed's run, when
    the protocol and task have registered certificate descriptors.
    """
    report = SweepReport()
    best: Optional[Tuple[int, Dict[int, Any]]] = None
    for seed in seeds:
        _system, result = run_protocol(
            protocol, list(inputs), RandomScheduler(seed),
            max_steps=max_steps,
        )
        report.runs += 1
        report.completed += result.completed
        report.all_decided += len(result.outputs) == len(inputs)
        report.max_steps_observed = max(
            report.max_steps_observed, result.steps
        )
        report.record_decisions(result.outputs)
        if result.diverged:
            report.divergences += 1
        if task is not None and task.check(list(inputs), result.outputs):
            report.record_violation(seed)
            if best is None or seed < best[0]:
                best = (seed, dict(result.outputs))
    report.best_violation = best
    if certificates:
        _attach_sweep_certificate(
            report, best, protocol, inputs, task, "protocol", max_steps
        )
    return report
