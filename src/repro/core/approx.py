"""The Appendix D simulation: approximate agreement in O(f(m)²) steps.

Two simulators q_0, q_1 each own m processes of an ε-approximate-agreement
protocol Π and both run the *covering* simulator algorithm (there are no
direct simulators here).  Lemma 33 shows each decides within a number of
shared-memory steps that depends only on m — not on ε.  Theorem 2
(Hoest–Shavit) says wait-free 2-process ε-approximate agreement needs
log₃(1/ε) steps, so if Π used m ≤ ⌊n/2⌋ registers the simulation would beat
that bound for small ε: the Appendix D space lower bound ⌊n/2⌋+1.

Experiment E7 runs this harness over the real
:class:`~repro.protocols.approximate.AveragingApprox` protocol for varying
ε and m and measures the simulators' step counts, exhibiting the
ε-independence the contradiction rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.augmented.object import AugmentedSnapshot
from repro.core.simulation import (
    SIM_DECISION_TAG,
    SimulationSetup,
    covering_simulator_body,
)
from repro.errors import ValidationError
from repro.protocols.base import Protocol
from repro.runtime.scheduler import Scheduler
from repro.runtime.system import ExecutionResult, System


@dataclass
class ApproxSimulationOutcome:
    """Result of one Appendix D simulation run."""

    setup: SimulationSetup
    system: System
    aug: AugmentedSnapshot
    result: ExecutionResult
    decisions: Dict[int, Any] = field(default_factory=dict)
    steps_per_simulator: Dict[int, int] = field(default_factory=dict)

    @property
    def all_decided(self) -> bool:
        return len(self.decisions) == 2

    @property
    def max_steps_taken(self) -> int:
        return max(self.steps_per_simulator.values(), default=0)

    def task_violations(self, task) -> List[str]:
        """Check the simulators' outputs against a task specification."""
        return task.check(list(self.setup.inputs), self.decisions)


def run_approx_simulation(
    protocol: Protocol,
    inputs: Sequence[Any],
    scheduler: Scheduler,
    max_steps: int = 500_000,
    solo_budget: int = 200_000,
    object_name: str = "M",
) -> ApproxSimulationOutcome:
    """Run the two-covering-simulator reduction of Appendix D.

    ``protocol`` must be specified for at least ``2 * protocol.m``
    processes; each simulator owns m of them and inherits one of the two
    ``inputs``.
    """
    if len(inputs) != 2:
        raise ValidationError("the Appendix D simulation takes 2 inputs")
    m = protocol.m
    if protocol.n < 2 * m:
        raise ValidationError(
            f"{protocol.name} is specified for n={protocol.n} processes; "
            f"the Appendix D simulation needs 2m = {2 * m}"
        )
    setup = SimulationSetup(
        protocol=protocol,
        k=1,
        x=0,  # both simulators cover; no direct simulators
        inputs=tuple(inputs),
        covering_ranks=(0, 1),
        direct_ranks=(),
        process_map={0: tuple(range(m)), 1: tuple(range(m, 2 * m))},
    )
    aug = AugmentedSnapshot(object_name, components=m, pids=[0, 1])
    system = System()
    for rank in (0, 1):
        system.add_process(
            covering_simulator_body(setup, aug, rank, solo_budget),
            pid=rank,
            name=f"cover-q{rank}",
        )
    result = system.run(scheduler, max_steps=max_steps)
    decisions = {
        event.payload["rank"]: event.payload["value"]
        for event in system.trace.annotations(SIM_DECISION_TAG)
    }
    steps = {
        rank: system.processes[rank].steps_taken for rank in (0, 1)
    }
    return ApproxSimulationOutcome(
        setup=setup,
        system=system,
        aug=aug,
        result=result,
        decisions=decisions,
        steps_per_simulator=steps,
    )
