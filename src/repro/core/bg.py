"""The BG simulation [BG93] — the paper's explicit point of contrast.

Section 1: "in our simulation, a simulating process may revise the past of
a simulated process ... This is possible because each process is simulated
by a single simulator.  In contrast, in the BG simulation, different steps
of simulated processes can be performed by different simulators."  This
module supplies that contrast object, so the repository contains both
simulation styles:

* :class:`SafeAgreement` — the classic two-level safe-agreement object
  from a single-writer snapshot: wait-free *propose*, non-blocking
  *resolve*, agreement + validity always, but a proposer that crashes in
  its unsafe window (between its level-1 and level-2/0 writes) can block
  resolution forever.
* :class:`BGSimulation` — k+1 simulators cooperatively run n simulated
  processes of a normal-form protocol.  Updates are deterministic given
  earlier agreed scans, so simulators apply them locally; every simulated
  *scan* outcome goes through one safe-agreement instance, making all
  simulators adopt the same view.  A simulator finding an instance
  unresolved (some rival is mid-window) *skips* that simulated process and
  works on another — so a crashed simulator blocks at most the one
  simulated process whose window it died in, and n − f simulated processes
  still finish when f ≤ k simulators crash.

The structural difference from the revisionist simulation is now
executable: here the simulated past is immutable and shared (steps of one
simulated process interleave simulators), whereas
:mod:`repro.core.simulation` gives each simulated process one owner who may
rewrite its history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import ModelError, ValidationError
from repro.memory.snapshot import SingleWriterSnapshot
from repro.protocols.base import DECIDE, UPDATE, Protocol
from repro.runtime.events import Annotate, Invoke
from repro.runtime.scheduler import Scheduler
from repro.runtime.system import ExecutionResult, System

#: Resolution statuses of a safe-agreement instance.
AGREED = "agreed"
PENDING = "pending"  # some proposer is in its unsafe window
EMPTY = "empty"  # nobody has proposed yet

BG_DECISION_TAG = "bg.decision"


class SafeAgreement:
    """Two-level safe agreement for a fixed set of proposers.

    Component ``i`` of the backing snapshot holds ``(value, level)`` with
    level 0 (retreated), 1 (unsafe window) or 2 (committed); the agreed
    value is the minimum-rank committed value once no proposer is at
    level 1.  Validity: the outcome was somebody's proposal.  The unsafe
    window is exactly the crash-vulnerability the BG simulation's skipping
    discipline tolerates.
    """

    def __init__(self, name: str, pids: Sequence[int]) -> None:
        self.name = name
        self.pids = list(pids)
        self._rank = {pid: i for i, pid in enumerate(self.pids)}
        if len(self._rank) != len(self.pids):
            raise ValidationError("duplicate pids")
        self.snap = SingleWriterSnapshot(
            f"{name}.S", writers=self.pids, initial=(None, 0)
        )
        self._proposed: Dict[int, bool] = {}

    def has_proposed(self, pid: int) -> bool:
        """Whether ``pid`` already proposed on this instance."""
        return self._proposed.get(pid, False)

    def propose(self, pid: int, value: Any) -> Generator[Any, Any, None]:
        """Wait-free: write level 1, scan, commit (2) or retreat (0)."""
        rank = self._rank.get(pid)
        if rank is None:
            raise ModelError(f"pid {pid} is not a proposer of {self.name}")
        if self._proposed.get(pid):
            raise ModelError(f"pid {pid} already proposed on {self.name}")
        self._proposed[pid] = True
        yield Invoke(self.snap, "update", (rank, (value, 1)))
        view = yield Invoke(self.snap, "scan")
        if any(level == 2 for _v, level in view):
            yield Invoke(self.snap, "update", (rank, (value, 0)))
        else:
            yield Invoke(self.snap, "update", (rank, (value, 2)))
        return None

    def resolve(self, pid: int) -> Generator[Any, Any, Tuple[str, Any]]:
        """Non-blocking: one scan; returns (status, value-or-None)."""
        view = yield Invoke(self.snap, "scan")
        if any(level == 1 for _v, level in view):
            return (PENDING, None)
        committed = [
            (rank, value)
            for rank, (value, level) in enumerate(view)
            if level == 2
        ]
        if not committed:
            return (EMPTY, None)
        committed.sort()
        return (AGREED, committed[0][1])


@dataclass
class BGOutcome:
    """Result of one BG simulation run."""

    system: System
    result: ExecutionResult
    simulated_outputs: Dict[int, Any] = field(default_factory=dict)
    blocked: Dict[int, List[int]] = field(default_factory=dict)
    # pid -> list of simulated processes that pid saw permanently blocked

    @property
    def completed_processes(self) -> int:
        return len(self.simulated_outputs)


class BGSimulation:
    """k+1 simulators run all n processes of a wait-free protocol.

    Each simulator executes every simulated process's steps against its
    own local memory copy; scan outcomes are channelled through one
    :class:`SafeAgreement` per (process, scan-index), so all simulators
    absorb identical views and local copies can only differ in the order
    not-yet-agreed updates land.  A simulator that finds an agreement
    pending (a rival mid-window) skips that process for now; if every
    remaining process is pending and no progress is possible, those
    processes are reported blocked — at most one per crashed simulator.
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        simulator_pids: Sequence[int],
        name: str = "BG",
    ) -> None:
        if len(inputs) > protocol.n:
            raise ValidationError(
                f"{protocol.name} supports n={protocol.n}, got "
                f"{len(inputs)} inputs"
            )
        if len(simulator_pids) < 1:
            raise ValidationError("need at least one simulator")
        self.protocol = protocol
        self.inputs = list(inputs)
        self.simulator_pids = list(simulator_pids)
        self.name = name
        self._agreements: Dict[Tuple[int, int], SafeAgreement] = {}

    def _agreement(self, process: int, scan_index: int) -> SafeAgreement:
        key = (process, scan_index)
        if key not in self._agreements:
            self._agreements[key] = SafeAgreement(
                f"{self.name}.sa[{process},{scan_index}]",
                self.simulator_pids,
            )
        return self._agreements[key]

    def register_count(self) -> int:
        """Registers spent on safe-agreement instances so far."""
        return sum(
            sa.snap.register_count() for sa in self._agreements.values()
        )

    def simulator_body(
        self, announce: Dict[int, Any], give_up_after: Optional[int] = None
    ):
        """Build one simulator's body.

        ``give_up_after``: number of consecutive full passes without any
        progress after which the simulator declares the still-pending
        processes blocked and stops.  ``None`` (default) spins forever —
        correct when all simulators are live, since a pending window always
        belongs to a simulator that will eventually be scheduled; crash
        experiments pass a bound to surface the blocked set.
        """
        protocol = self.protocol

        def body(proc):
            stalled_passes = 0
            states = [
                protocol.initial_state(i, v)
                for i, v in enumerate(self.inputs)
            ]
            memory: List[Any] = [None] * protocol.m
            scan_counts = [0] * len(self.inputs)
            done: Dict[int, Any] = {}
            while len(done) < len(self.inputs):
                progressed = False
                skipped: List[int] = []
                for process in range(len(self.inputs)):
                    if process in done:
                        continue
                    kind, payload = protocol.poised(states[process])
                    if kind == DECIDE:
                        done[process] = payload
                        if process not in announce:
                            announce[process] = payload
                            yield Annotate(
                                BG_DECISION_TAG,
                                {"process": process, "value": payload,
                                 "simulator": proc.pid},
                            )
                        progressed = True
                        continue
                    if kind == UPDATE:
                        component, value = payload
                        memory[component] = value
                        states[process] = protocol.advance(
                            states[process], None
                        )
                        progressed = True
                        continue
                    # A scan: agree on its outcome.
                    agreement = self._agreement(
                        process, scan_counts[process]
                    )
                    status, view = yield from agreement.resolve(proc.pid)
                    if status == EMPTY and not agreement.has_proposed(proc.pid):
                        yield from agreement.propose(
                            proc.pid, tuple(memory)
                        )
                        status, view = yield from agreement.resolve(proc.pid)
                    if status != AGREED:
                        skipped.append(process)  # rival mid-window: skip
                        continue
                    states[process] = protocol.advance(states[process], view)
                    scan_counts[process] += 1
                    progressed = True
                if progressed:
                    stalled_passes = 0
                else:
                    # No progress this pass: every remaining process sits
                    # behind a pending window.  A live rival will finish its
                    # propose eventually (each pass still takes scan steps,
                    # so the scheduler keeps interleaving); a crashed rival
                    # never will — after enough stalled passes, give up and
                    # report the blocked set.
                    stalled_passes += 1
                    if give_up_after is not None and (
                        stalled_passes >= give_up_after
                    ):
                        return {"outputs": done, "blocked": skipped}
            return {"outputs": done, "blocked": []}

        return body


def run_bg_simulation(
    protocol: Protocol,
    inputs: Sequence[Any],
    simulators: int,
    scheduler: Scheduler,
    max_steps: int = 500_000,
    give_up_after: Optional[int] = None,
) -> BGOutcome:
    """Run the BG simulation with ``simulators`` simulating processes."""
    simulation = BGSimulation(protocol, inputs, list(range(simulators)))
    system = System()
    announce: Dict[int, Any] = {}
    for pid in range(simulators):
        system.add_process(
            simulation.simulator_body(announce, give_up_after=give_up_after),
            pid=pid,
            name=f"bg-sim{pid}",
        )
    result = system.run(scheduler, max_steps=max_steps)
    outcome = BGOutcome(system=system, result=result)
    for event in system.trace.annotations(BG_DECISION_TAG):
        outcome.simulated_outputs[event.payload["process"]] = (
            event.payload["value"]
        )
    for pid, process in system.processes.items():
        if process.status == "done" and isinstance(process.output, dict):
            outcome.blocked[pid] = list(process.output.get("blocked", []))
    return outcome
