"""The Lemma 28 correspondence checker.

Lemma 28 is the paper's main invariant: every real execution σ of the
simulation corresponds to a possible execution **σ** of the protocol Π in
which the simulated processes' states match the states the simulators
store, with hidden (revised-past) steps inserted at the views returned by
atomic Block-Updates.

This module *independently reconstructs* **σ** from the real execution's
linearization (:mod:`repro.augmented.linearization`) and the protocol's
pure transition functions, then checks, step by step:

* every Scan by a simulator returned exactly the contents of M at its
  point of **σ** (case 1 of the proof);
* every Update simulating a first process ``p_{i,1}`` was that process's
  poised step (Observation 25);
* every Update simulating a later process ``p_{i,g}`` (g > 1) is justified:
  there is an anchor Block-Update whose returned view matches the contents
  of M at a valid insertion point T (only ☡-updates by other simulators
  after T), and re-running ``p_{i,g}`` from T lands it poised on exactly
  the update that was performed (case 3);
* the decisions the simulators announced match the decisions of the
  corresponding simulated processes in **σ** (or, for full-cover
  terminations, the solo value after the pending block update).

The checker shares only the protocol's pure transitions with the simulator
— all execution-side facts (views, orders, atomicity) come from the trace,
so a bug in the simulation machinery shows up as a concrete mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.augmented.linearization import (
    BlockUpdateRecord,
    Linearization,
    linearize,
)
from repro.core.simulation import (
    SIM_DECISION_TAG,
    SimulationSetup,
    _find_anchor,
    _BlockRecord,
)
from repro.errors import DivergenceError
from repro.protocols.base import (
    SCAN,
    UPDATE,
    Protocol,
    solo_run,
    solo_run_trace,
)


@dataclass
class SimEntry:
    """One step of the reconstructed simulated execution **σ**."""

    kind: str  # "scan" | "update"
    process: int  # protocol process index
    component: Optional[int] = None
    value: Any = None
    hidden: bool = False  # inserted by a past revision
    bu_op_id: Optional[str] = None
    bu_atomic: bool = False
    bu_rank: Optional[int] = None


@dataclass
class Correspondence:
    """The reconstructed execution plus any violations found."""

    entries: List[SimEntry] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    hidden_steps: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class _Replayer:
    """Replays a prefix of **σ** to recover states and contents of M.

    ``replay`` is a pure function of the entry prefix it is asked about,
    but the checker asks about ever-growing prefixes of the same list —
    one per linearization point — so replaying from scratch every time is
    quadratic in σ.  The replayer therefore keeps a *tip*: the states and
    contents after the prefix it most recently replayed, advanced
    incrementally when asked about a longer prefix and rebuilt from
    scratch only when asked about a shorter one.  Callers that mutate
    ``entries`` anywhere before the tip (hidden-step insertion) must call
    :meth:`invalidate` with the insertion position.
    """

    def __init__(self, setup: SimulationSetup):
        self.setup = setup
        protocol = setup.protocol
        self.initial_states: Dict[int, Any] = {}
        for rank, indices in setup.process_map.items():
            for index in indices:
                self.initial_states[index] = protocol.initial_state(
                    index, setup.inputs[rank]
                )
        self._reset()

    def _reset(self) -> None:
        self._pos = 0
        self._states: Dict[int, Any] = dict(self.initial_states)
        self._contents: List[Any] = [None] * self.setup.protocol.m

    def invalidate(self, position: int) -> None:
        """Entries at/after ``position`` changed; drop a stale tip."""
        if position < self._pos:
            self._reset()

    def replay(
        self, entries: Sequence[SimEntry], upto: Optional[int] = None
    ) -> Tuple[Dict[int, Any], Tuple[Any, ...]]:
        advance = self.setup.protocol.advance
        count = len(entries) if upto is None else upto
        if count < self._pos:
            self._reset()
        states = self._states
        contents = self._contents
        for position in range(self._pos, count):
            entry = entries[position]
            process = entry.process
            if entry.kind == "scan":
                states[process] = advance(states[process], tuple(contents))
            else:
                contents[entry.component] = entry.value
                states[process] = advance(states[process], None)
        self._pos = count
        return dict(states), tuple(contents)


def _rank_blocks(
    lin: Linearization, rank: int
) -> List[BlockUpdateRecord]:
    """Rank i's Block-Updates in application order (it is sequential)."""
    records = [b for b in lin.block_updates if b.rank == rank]
    records.sort(key=lambda b: b.begin_seq)
    return records


def _anchor_for(
    lin: Linearization, record: BlockUpdateRecord, prefix_size: int
) -> Optional[BlockUpdateRecord]:
    """The anchor Block-Update the revision of p_{i,prefix_size+1} used:
    the last atomic Block-Update by the same rank on exactly the first
    ``prefix_size`` components of ``record``, with no wider one after it."""
    own = _rank_blocks(lin, record.rank)
    before = [b for b in own if b.begin_seq < record.begin_seq]
    log = [
        _BlockRecord(
            components=b.components,
            atomic=b.result == "view",
            view=b.returned_view,
        )
        for b in before
    ]
    wanted = record.components[:prefix_size]
    found = _find_anchor(log, wanted)
    if found is None:
        return None
    for b in reversed(before):
        if b.components == found.components and b.result == "view":
            return b
    return None  # pragma: no cover - found implies a matching record


def check_correspondence(outcome) -> Correspondence:
    """Reconstruct **σ** for a simulation outcome and verify Lemma 28.

    ``outcome`` is a :class:`~repro.core.simulation.SimulationOutcome` or
    :class:`~repro.core.approx.ApproxSimulationOutcome`.
    """
    setup: SimulationSetup = outcome.setup
    protocol: Protocol = setup.protocol
    lin = linearize(outcome.system.trace, outcome.aug)
    replayer = _Replayer(setup)
    out = Correspondence()
    entries = out.entries
    # Anchor insertion points: bu op_id -> index into `entries`.
    anchor_at: Dict[str, int] = {}
    seen_first_update: Dict[str, bool] = {}

    def fail(message: str) -> None:
        out.violations.append(message)

    def shift_anchors(position: int, amount: int) -> None:
        for op_id, index in anchor_at.items():
            if index > position:
                anchor_at[op_id] = index + amount

    for point in lin.sigma:
        if out.violations:
            break
        if point.kind == "scan":
            rank = point.scan.rank
            process = setup.process_map[rank][0]
            states, contents = replayer.replay(entries)
            kind, _payload = protocol.poised(states[process])
            if kind != SCAN:
                fail(
                    f"Scan {point.scan.op_id}: simulated process {process} "
                    f"is poised to {kind}, not scan"
                )
                break
            if tuple(point.scan.returned_view) != contents:
                fail(
                    f"Scan {point.scan.op_id} returned "
                    f"{point.scan.returned_view} but M's contents in σ are "
                    f"{contents}"
                )
                break
            entries.append(SimEntry(kind="scan", process=process))
            continue

        # An Update point.
        record = point.block_update
        rank = record.rank
        position_in_block = record.components.index(point.component)
        process = setup.process_map[rank][position_in_block]

        if record.op_id not in seen_first_update and record.result == "view":
            # First update of an atomic Block-Update: locate its view's
            # insertion point T — walk back over trailing ☡-updates by
            # other ranks until the replayed contents match the view.
            candidate = len(entries)
            found = None
            while True:
                _states, contents = replayer.replay(entries, upto=candidate)
                if contents == tuple(record.returned_view):
                    found = candidate
                    break
                if candidate == 0:
                    break
                previous = entries[candidate - 1]
                if previous.kind != "update":
                    break
                if previous.bu_atomic or previous.bu_rank == rank:
                    break
                candidate -= 1
            if found is None:
                fail(
                    f"Block-Update {record.op_id} returned "
                    f"{record.returned_view}, which matches no admissible "
                    "insertion point in σ"
                )
                break
            anchor_at[record.op_id] = found
        seen_first_update[record.op_id] = True

        if position_in_block > 0:
            # A hidden-past update: justify it from its anchor.
            anchor = _anchor_for(lin, record, position_in_block)
            if anchor is None:
                fail(
                    f"Update of {record.op_id} simulating process {process} "
                    "has no anchor Block-Update to justify its revision"
                )
                break
            if anchor.op_id not in anchor_at:
                fail(
                    f"anchor {anchor.op_id} of {record.op_id} has no "
                    "recorded insertion point"
                )
                break
            at = anchor_at[anchor.op_id]
            states_at, contents_at = replayer.replay(entries, upto=at)
            if contents_at != tuple(anchor.returned_view):
                fail(
                    f"insertion point of anchor {anchor.op_id} drifted: "
                    f"contents {contents_at} != view {anchor.returned_view}"
                )
                break
            allowed = record.components[:position_in_block]
            try:
                _state, _c, pending, decision, steps = solo_run_trace(
                    protocol,
                    states_at[process],
                    anchor.returned_view,
                    stop_before_update_outside=allowed,
                )
            except DivergenceError:
                fail(
                    f"hidden run of process {process} from anchor "
                    f"{anchor.op_id} diverged"
                )
                break
            if decision is not None or pending != (point.component, point.value):
                fail(
                    f"hidden run of process {process} from anchor "
                    f"{anchor.op_id} ended at {pending!r}/{decision!r}, "
                    f"expected pending update "
                    f"({point.component}, {point.value!r})"
                )
                break
            hidden_entries = []
            for step in steps:
                if step[0] == "scan":
                    hidden_entries.append(
                        SimEntry(kind="scan", process=process, hidden=True)
                    )
                else:
                    hidden_entries.append(
                        SimEntry(
                            kind="update",
                            process=process,
                            component=step[1],
                            value=step[2],
                            hidden=True,
                        )
                    )
            entries[at:at] = hidden_entries
            replayer.invalidate(at)
            out.hidden_steps += len(hidden_entries)
            shift_anchors(at, len(hidden_entries))

        # Now the update itself must be the process's poised step.
        states, _contents = replayer.replay(entries)
        kind, payload = protocol.poised(states[process])
        if kind != UPDATE or payload != (point.component, point.value):
            fail(
                f"Update of {record.op_id}: simulated process {process} is "
                f"poised to {kind} {payload!r}, expected update "
                f"({point.component}, {point.value!r})"
            )
            break
        entries.append(
            SimEntry(
                kind="update",
                process=process,
                component=point.component,
                value=point.value,
                bu_op_id=record.op_id,
                bu_atomic=record.result == "view",
                bu_rank=rank,
            )
        )

    if out.violations:
        return out

    # Decision checks: every announced decision must be justified by σ.
    final_states, final_contents = replayer.replay(entries)
    for event in outcome.system.trace.annotations(SIM_DECISION_TAG):
        info = event.payload
        rank, value, via = info["rank"], info["value"], info["via"]
        if via == "simulated_process":
            process = info["process_index"]
            decided = protocol.decision(final_states[process])
            if decided != value:
                fail(
                    f"simulator q{rank} decided {value!r} via process "
                    f"{process}, but that process's state in σ decides "
                    f"{decided!r}"
                )
        else:  # full_cover
            # The final (never-applied) revision chain lives only in the
            # simulator's head; re-derive it exactly as the simulator would,
            # but driven entirely by σ's states and the trace's anchors.
            derived = _derive_full_cover(setup, lin, rank, final_states)
            if derived is None:
                fail(
                    f"simulator q{rank} decided {value!r} via full cover, "
                    "but its pending block cannot be reconstructed from σ"
                )
                continue
            poised, state_after = derived
            contents: List[Any] = [None] * protocol.m
            for component, written in poised.values():
                contents[component] = written
            try:
                _s, _c, _p, decided = solo_run(protocol, state_after, contents)
            except DivergenceError:
                fail(
                    f"simulator q{rank}'s full-cover solo run diverged in σ"
                )
                continue
            if decided != value:
                fail(
                    f"simulator q{rank} decided {value!r} via full cover, "
                    f"but σ's solo run decides {decided!r}"
                )
    return out


def _derive_full_cover(
    setup: SimulationSetup,
    lin: Linearization,
    rank: int,
    final_states: Dict[int, Any],
):
    """Re-derive the terminating revision chain of a covering simulator.

    The last turn of a full-cover termination revises processes locally
    without applying a Block-Update, so those pending updates are not in σ.
    This reconstructs them from σ's final states plus the anchors recorded
    in the trace, mirroring the simulator's own iteration — but driven
    entirely by checker-side state.  Returns ``(poised, state_after)``
    where ``poised`` maps each process to its pending (component, value)
    covering all m components, and ``state_after`` is the first process's
    state after its own write; or ``None`` if no such chain exists.
    """
    protocol = setup.protocol
    indices = setup.process_map[rank]
    own = _rank_blocks(lin, rank)
    log = [
        _BlockRecord(
            components=b.components,
            atomic=b.result == "view",
            view=b.returned_view,
        )
        for b in own
    ]
    states = {process: final_states[process] for process in indices}
    kind, payload = protocol.poised(states[indices[0]])
    if kind != UPDATE:
        return None
    updates = [payload]
    poised = {indices[0]: payload}
    while len(updates) < protocol.m:
        r = len(updates)
        components = [j for j, _ in updates]
        anchor = _find_anchor(log, components)
        if anchor is None:
            return None
        try:
            new_state, _c, pending, decision = solo_run(
                protocol,
                states[indices[r]],
                anchor.view,
                stop_before_update_outside=components,
            )
        except DivergenceError:
            return None
        if decision is not None or pending is None:
            return None
        states[indices[r]] = new_state
        poised[indices[r]] = pending
        updates.append(pending)
    if len({component for component, _v in poised.values()}) != protocol.m:
        return None
    return poised, protocol.advance(states[indices[0]], None)
