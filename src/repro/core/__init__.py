"""The paper's contribution: the revisionist simulation and its bounds.

* :mod:`repro.core.bounds` — the Theorem 3 / Appendix D space-bound
  formulas and the comparison tables of experiment E2.
* :mod:`repro.core.simulation` — the Section 4 / Appendix C simulation:
  k+1 simulators (x direct, k+1-x covering) run an x-obstruction-free
  k-set-agreement protocol through an augmented snapshot; covering
  simulators build ever-wider Block-Updates, revising their processes'
  pasts from atomic Block-Update views.
* :mod:`repro.core.invariant` — the Lemma 28 correspondence checker: it
  independently reconstructs, from the real execution's linearization, the
  simulated protocol execution (with hidden-step insertions) and verifies
  every Scan result, Block-Update view, and decision against it.
* :mod:`repro.core.approx` — the Appendix D variant: two covering
  simulators over an ε-approximate-agreement protocol, with the step
  accounting that contradicts the Hoest–Shavit bound.
"""

from repro.core.bounds import (
    approx_space_lower_bound,
    bound_table,
    consensus_space_bound,
    kset_space_lower_bound,
    kset_space_upper_bound,
    max_simulatable_registers,
    simulated_process_count,
)
from repro.core.simulation import (
    SimulationOutcome,
    SimulationSetup,
    run_simulation,
)
from repro.core.approx import ApproxSimulationOutcome, run_approx_simulation
from repro.core.bg import (
    BGOutcome,
    BGSimulation,
    SafeAgreement,
    run_bg_simulation,
)
from repro.core.invariant import check_correspondence

__all__ = [
    "kset_space_lower_bound",
    "kset_space_upper_bound",
    "consensus_space_bound",
    "approx_space_lower_bound",
    "simulated_process_count",
    "max_simulatable_registers",
    "bound_table",
    "SimulationSetup",
    "SimulationOutcome",
    "run_simulation",
    "check_correspondence",
    "ApproxSimulationOutcome",
    "run_approx_simulation",
    "SafeAgreement",
    "BGSimulation",
    "BGOutcome",
    "run_bg_simulation",
]
