"""The revisionist simulation (Section 4, iterative form of Appendix C).

Given an x-obstruction-free protocol Π in scan/update normal form that uses
an m-component snapshot, k+1 simulators q_0 < q_1 < ... < q_k run Π's
processes through one m-component augmented snapshot M:

* ranks k-x+1..k are **direct simulators**: each runs a single process of Π
  verbatim — Scan for scan, a one-component Block-Update for update (result
  ignored).
* ranks 0..k-x are **covering simulators**: each owns m processes of Π and
  tries to drive them to cover all m components.  Its engine is the
  iterative construction: when its first process is poised to update, it
  extends the pending update set one process at a time — iteration r looks
  for the last atomic Block-Update it applied to exactly the currently
  pending r components (with no wider Block-Update since); if found, the
  Block-Update's returned view V is a consistent *past* point of the real
  execution with nothing but ☡-updates after it, so the simulator **revises
  the past**: it locally re-runs process p_{i,r+1} from V until that process
  is poised to update a fresh component, silently inserting those hidden
  steps at V's point of the simulated execution.  When all m components are
  pending, the block update would obliterate M's contents, so the simulator
  decides by locally running its first process solo after the (never
  actually applied) full block update.

If Π is correct for (k+1-x)·m + x processes, this yields a wait-free k-set
agreement protocol for k+1 processes — which Theorem 1 forbids; hence no
such Π exists (Theorem 3).  Run on deliberately under-provisioned protocols
(:class:`~repro.protocols.kset.TruncatedProtocol`), the simulation is a
*falsifier*: it terminates with a safety violation among the simulators'
outputs, or exposes Π's own divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.augmented.object import AugmentedSnapshot
from repro.augmented.views import YIELD
from repro.errors import SimulationError, ValidationError
from repro.protocols.base import DECIDE, SCAN, Protocol, solo_run
from repro.runtime.events import Annotate
from repro.runtime.process import Process
from repro.runtime.scheduler import Scheduler
from repro.runtime.system import ExecutionResult, System

#: Annotation tags emitted by simulators (consumed by the invariant checker
#: and the experiment harnesses).
SIM_DECISION_TAG = "sim.decision"
SIM_REVISION_TAG = "sim.revision"
SIM_BLOCK_TAG = "sim.block_update"


@dataclass
class SimulationSetup:
    """Static structure of one simulation instance.

    Attributes:
        protocol: the protocol Π under simulation.
        k, x: task and obstruction parameters (1 <= x <= k).
        inputs: the k+1 simulator inputs, by rank.
        covering_ranks / direct_ranks: the partition of ranks.
        process_map: rank -> tuple of Π process indices it simulates.
    """

    protocol: Protocol
    k: int
    x: int
    inputs: Tuple[Any, ...]
    covering_ranks: Tuple[int, ...]
    direct_ranks: Tuple[int, ...]
    process_map: Dict[int, Tuple[int, ...]]

    @property
    def simulator_count(self) -> int:
        return self.k + 1

    @property
    def simulated_count(self) -> int:
        return sum(len(v) for v in self.process_map.values())


def build_setup(
    protocol: Protocol, k: int, x: int, inputs: Sequence[Any]
) -> SimulationSetup:
    """Validate parameters and compute the simulator/process partition.

    Covering simulators take the *lower* ranks — the property that
    guarantees (Lemma 16) rank 0's Block-Updates are always atomic and
    drives the Lemma 30 termination induction.
    """
    if k < 1 or not 1 <= x <= k:
        raise ValidationError(f"need k >= 1 and 1 <= x <= k (k={k}, x={x})")
    if len(inputs) != k + 1:
        raise ValidationError(
            f"need exactly k+1={k + 1} simulator inputs, got {len(inputs)}"
        )
    m = protocol.m
    needed = (k + 1 - x) * m + x
    if protocol.n < needed:
        raise ValidationError(
            f"{protocol.name} is specified for n={protocol.n} processes; the "
            f"simulation needs (k+1-x)*m + x = {needed}"
        )
    covering = tuple(range(k - x + 1))
    direct = tuple(range(k - x + 1, k + 1))
    process_map: Dict[int, Tuple[int, ...]] = {}
    cursor = 0
    for rank in covering:
        process_map[rank] = tuple(range(cursor, cursor + m))
        cursor += m
    for rank in direct:
        process_map[rank] = (cursor,)
        cursor += 1
    return SimulationSetup(
        protocol=protocol,
        k=k,
        x=x,
        inputs=tuple(inputs),
        covering_ranks=covering,
        direct_ranks=direct,
        process_map=process_map,
    )


# ----------------------------------------------------------------------
# Simulator bodies
# ----------------------------------------------------------------------
def direct_simulator_body(
    setup: SimulationSetup, aug: AugmentedSnapshot, rank: int
):
    """Body of a direct simulator: run one process of Π verbatim."""
    protocol = setup.protocol
    (index,) = setup.process_map[rank]

    def body(proc: Process) -> Generator:
        state = protocol.initial_state(index, setup.inputs[rank])
        while True:
            kind, payload = protocol.poised(state)
            if kind == DECIDE:
                yield Annotate(
                    SIM_DECISION_TAG,
                    {"rank": rank, "value": payload,
                     "via": "simulated_process", "process_index": index},
                )
                return payload
            if kind == SCAN:
                view = yield from aug.scan(proc.pid)
                state = protocol.advance(state, view)
            else:
                component, value = payload
                yield from aug.block_update(proc.pid, [component], [value])
                state = protocol.advance(state, None)

    return body


@dataclass
class _BlockRecord:
    """A covering simulator's memory of one of its Block-Updates."""

    components: Tuple[int, ...]
    atomic: bool
    view: Any = None

    @property
    def size(self) -> int:
        return len(self.components)


def _find_anchor(
    log: List[_BlockRecord],
    components: Sequence[int],
    unsafe_skip_disqualification: bool = False,
) -> Optional[_BlockRecord]:
    """The last atomic Block-Update applied to exactly ``components``, if no
    wider Block-Update was applied after it (Appendix C's condition).

    ``unsafe_skip_disqualification=True`` drops the "no wider Block-Update
    since" check — an *ablation switch* used by the benchmarks to show that
    the condition is load-bearing: without it, a simulator revises a
    process whose past already contains simulated steps after the anchor,
    and the Lemma 28 correspondence breaks (see bench_ablation.py).
    """
    wanted = set(components)
    size = len(wanted)
    for offset in range(len(log) - 1, -1, -1):
        record = log[offset]
        if record.atomic and set(record.components) == wanted:
            if not unsafe_skip_disqualification and any(
                later.size > size for later in log[offset + 1:]
            ):
                return None
            return record
    return None


def covering_simulator_body(
    setup: SimulationSetup,
    aug: AugmentedSnapshot,
    rank: int,
    solo_budget: int = 100_000,
    unsafe_anchor: bool = False,
):
    """Body of a covering simulator: the iterative Appendix C engine.

    ``unsafe_anchor`` is the ablation switch forwarded to
    :func:`_find_anchor`; never enable it outside ablation experiments.
    """
    protocol = setup.protocol
    indices = setup.process_map[rank]
    m = protocol.m

    def decide(value: Any, via: str, process_index: Optional[int]):
        return Annotate(
            SIM_DECISION_TAG,
            {"rank": rank, "value": value, "via": via,
             "process_index": process_index},
        )

    def body(proc: Process) -> Generator:
        states: List[Any] = [
            protocol.initial_state(indices[g], setup.inputs[rank])
            for g in range(m)
        ]
        log: List[_BlockRecord] = []
        while True:
            kind, payload = protocol.poised(states[0])
            if kind == DECIDE:
                yield decide(payload, "simulated_process", indices[0])
                return payload
            if kind == SCAN:
                view = yield from aug.scan(proc.pid)
                states[0] = protocol.advance(states[0], view)
                continue

            # p_{i,1} is poised to update: build the widest pending block.
            updates: List[Tuple[int, Any]] = [payload]
            while len(updates) < m:
                r = len(updates)
                components = [j for j, _ in updates]
                anchor = _find_anchor(
                    log, components,
                    unsafe_skip_disqualification=unsafe_anchor,
                )
                if anchor is None:
                    break
                # Revise the past of p_{i,r+1}: run it locally from the
                # anchor's view; its hidden steps may only touch the
                # anchor's components.
                new_state, _contents, pending, decision = solo_run(
                    protocol,
                    states[r],
                    anchor.view,
                    stop_before_update_outside=components,
                    max_steps=solo_budget,
                )
                states[r] = new_state
                yield Annotate(
                    SIM_REVISION_TAG,
                    {"rank": rank, "process_index": indices[r],
                     "anchor_components": anchor.components,
                     "pending": pending, "decision": decision},
                )
                if decision is not None:
                    yield decide(decision, "simulated_process", indices[r])
                    return decision
                if pending is None:  # pragma: no cover - solo_run contract
                    raise SimulationError(
                        "solo run ended without decision or pending update"
                    )
                updates.append(pending)

            if len(updates) == m:
                # Full cover: the pending block update obliterates M, so
                # p_{i,1}'s solo decision after it is schedule-independent.
                contents: List[Any] = [None] * m
                for component, value in updates:
                    contents[component] = value
                state_after = protocol.advance(states[0], None)
                _s, _c, _p, decision = solo_run(
                    protocol, state_after, contents, max_steps=solo_budget
                )
                if decision is None:  # pragma: no cover - solo_run contract
                    raise SimulationError("post-cover solo run did not decide")
                yield decide(decision, "full_cover", indices[0])
                return decision

            components = tuple(j for j, _ in updates)
            values = tuple(v for _, v in updates)
            result = yield from aug.block_update(proc.pid, components, values)
            atomic = result is not YIELD
            log.append(
                _BlockRecord(
                    components=components,
                    atomic=atomic,
                    view=result if atomic else None,
                )
            )
            yield Annotate(
                SIM_BLOCK_TAG,
                {"rank": rank, "components": components, "atomic": atomic},
            )
            # The block's updates happened: move each writer past its write.
            for g in range(len(updates)):
                states[g] = protocol.advance(states[g], None)
                decided = protocol.decision(states[g])
                if decided is not None:
                    yield decide(decided, "simulated_process", indices[g])
                    return decided

    return body


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
@dataclass
class SimulationOutcome:
    """Result of one simulation run.

    ``decisions`` maps simulator rank -> decided value (ranks that did not
    decide within the budget are absent).
    """

    setup: SimulationSetup
    system: System
    aug: AugmentedSnapshot
    result: ExecutionResult
    decisions: Dict[int, Any] = field(default_factory=dict)

    @property
    def all_decided(self) -> bool:
        return len(self.decisions) == self.setup.simulator_count

    def task_violations(self, task) -> List[str]:
        """Check the simulators' outputs against a task specification."""
        return task.check(list(self.setup.inputs), self.decisions)

    def revision_count(self) -> int:
        """How many times any simulator revised a process's past."""
        return len(self.system.trace.annotations(SIM_REVISION_TAG))

    def block_update_count(self) -> int:
        """Total Block-Updates applied by covering simulators."""
        return len(self.system.trace.annotations(SIM_BLOCK_TAG))


def run_simulation(
    protocol: Protocol,
    k: int,
    x: int,
    inputs: Sequence[Any],
    scheduler: Scheduler,
    max_steps: int = 500_000,
    solo_budget: int = 100_000,
    object_name: str = "M",
    unsafe_anchor: bool = False,
    register_level: bool = False,
    aug_annotations: bool = True,
) -> SimulationOutcome:
    """Run the revisionist simulation end to end.

    Args:
        protocol: Π, in normal form, with ``protocol.m`` components and
            ``protocol.n >= (k+1-x)*protocol.m + x``.
        k, x: the k-set agreement / x-obstruction-freedom parameters.
        inputs: the k+1 simulator inputs.
        scheduler: interleaving of the k+1 simulators.
        max_steps: primitive-step budget (divergence -> ``result.diverged``).
        solo_budget: step bound for local (hidden) solo runs; exceeding it
            raises :class:`~repro.errors.DivergenceError`, the signature of
            a protocol that is not actually x-obstruction-free.
        unsafe_anchor: ablation switch — drop the anchor disqualification
            rule (see :func:`_find_anchor`).  For experiments only.
        register_level: back the augmented snapshot's H with the [AAD+93]
            register construction, so the whole reduction executes on raw
            reads and writes (trace analysis unavailable in this mode).
        aug_annotations: emit the augmented object's begin/end markers into
            the trace (needed only by the Appendix B analysis; sweeps that
            discard traces turn this off).
    """
    setup = build_setup(protocol, k, x, inputs)
    aug = AugmentedSnapshot(
        object_name,
        components=protocol.m,
        pids=list(range(k + 1)),
        register_level=register_level,
        annotate=aug_annotations,
    )
    system = System()
    for rank in range(k + 1):
        if rank in setup.covering_ranks:
            body = covering_simulator_body(
                setup, aug, rank, solo_budget, unsafe_anchor=unsafe_anchor
            )
            name = f"cover-q{rank}"
        else:
            body = direct_simulator_body(setup, aug, rank)
            name = f"direct-q{rank}"
        system.add_process(body, pid=rank, name=name)
    result = system.run(scheduler, max_steps=max_steps)
    decisions = {
        event.payload["rank"]: event.payload["value"]
        for event in system.trace.annotations(SIM_DECISION_TAG)
    }
    return SimulationOutcome(
        setup=setup, system=system, aug=aug, result=result, decisions=decisions
    )
