"""Bounded-exhaustive model checking of normal-form protocols.

Because protocol states are hashable and transitions pure, a whole system
configuration is the pair ``(process states, M contents)`` and the
asynchronous adversary is just "which undecided process moves next".  This
module enumerates that choice tree with memoization, checking task safety
(validity and agreement are monotone in the set of decisions, so they can
be checked as decisions appear) and optionally probing progress by running
solo extensions from reachable configurations.

Protocols like racing consensus have unbounded round numbers, so the full
configuration space is infinite; exploration is therefore *bounded*
exhaustive: complete up to ``max_configs``/``max_steps`` and reported as
truncated beyond.  A safety bug within the bound is a real counterexample
(the discovered schedule is replayable); absence of bugs is evidence in the
small-scope sense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DivergenceError, ValidationError
from repro.protocols.base import DECIDE, SCAN, UPDATE, Protocol, solo_run


@dataclass
class ExplorationReport:
    """Outcome of :func:`explore_protocol`.

    Attributes:
        violations: distinct safety violations found (empty = safe within
            the explored space).
        configurations: number of distinct configurations visited.
        truncated: True if the bound cut exploration short.
        fully_decided: number of configurations where every process decided.
        counterexample: a schedule (list of process indices) reaching the
            first violation, if any — replay it to debug the protocol.
    """

    violations: List[str] = field(default_factory=list)
    configurations: int = 0
    truncated: bool = False
    fully_decided: int = 0
    counterexample: Optional[List[int]] = None

    @property
    def safe(self) -> bool:
        return not self.violations


def _decisions(protocol: Protocol, states: Tuple) -> Dict[int, Any]:
    out = {}
    for index, state in enumerate(states):
        kind, payload = protocol.poised(state)
        if kind == DECIDE:
            out[index] = payload
    return out


def explore_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
) -> ExplorationReport:
    """Explore every interleaving of a protocol instance, checking safety.

    Args:
        protocol: the protocol under test.
        inputs: one input per participating process (may be fewer than
            ``protocol.n``).
        task: a task checker with ``check(inputs, outputs) -> [violations]``
            (see :mod:`repro.protocols.tasks`).
        max_configs: visit budget; exceeded -> ``truncated``.
        max_steps: optional per-run depth bound (schedule length).
        stop_at_first_violation: stop early (with counterexample) or keep
            collecting distinct violations.
    """
    if len(inputs) > protocol.n:
        raise ValidationError(
            f"{protocol.name} supports n={protocol.n}, got {len(inputs)} inputs"
        )
    initial_states = tuple(
        protocol.initial_state(i, v) for i, v in enumerate(inputs)
    )
    initial_memory = (None,) * protocol.m
    report = ExplorationReport()
    seen = set()
    # DFS stack: (states, memory, depth, schedule-so-far)
    stack = [(initial_states, initial_memory, 0, ())]
    while stack:
        states, memory, depth, schedule = stack.pop()
        key = (states, memory)
        if key in seen:
            continue
        seen.add(key)
        report.configurations += 1
        if report.configurations >= max_configs:
            report.truncated = True
            break

        decided = _decisions(protocol, states)
        if decided:
            for violation in task.check(list(inputs), decided):
                if violation not in report.violations:
                    report.violations.append(violation)
                    if report.counterexample is None:
                        report.counterexample = list(schedule)
            if report.violations and stop_at_first_violation:
                break
        if len(decided) == len(inputs):
            report.fully_decided += 1
            continue
        if max_steps is not None and depth >= max_steps:
            report.truncated = True
            continue

        for index in range(len(inputs)):
            if index in decided:
                continue
            kind, payload = protocol.poised(states[index])
            if kind == SCAN:
                new_state = protocol.advance(states[index], memory)
                new_memory = memory
            elif kind == UPDATE:
                component, value = payload
                new_state = protocol.advance(states[index], None)
                as_list = list(memory)
                as_list[component] = value
                new_memory = tuple(as_list)
            else:  # pragma: no cover - decided handled above
                continue
            new_states = states[:index] + (new_state,) + states[index + 1:]
            stack.append((new_states, new_memory, depth + 1, schedule + (index,)))
    return report


def check_obstruction_freedom(
    protocol: Protocol,
    inputs: Sequence[Any],
    sample_schedules: Sequence[Sequence[int]],
    solo_budget: int = 10_000,
) -> List[str]:
    """Probe obstruction-freedom: from each configuration reached by a given
    schedule, every process run solo must decide within ``solo_budget``.

    Returns violations (empty = obstruction-free on all probes).  The
    schedules are lists of process indices; steps by decided processes are
    skipped.
    """
    violations = []
    for schedule in sample_schedules:
        states = [protocol.initial_state(i, v) for i, v in enumerate(inputs)]
        memory: List[Any] = [None] * protocol.m
        for index in schedule:
            kind, payload = protocol.poised(states[index])
            if kind == DECIDE:
                continue
            if kind == SCAN:
                states[index] = protocol.advance(states[index], tuple(memory))
            else:
                component, value = payload
                memory[component] = value
                states[index] = protocol.advance(states[index], None)
        for index in range(len(inputs)):
            kind, _payload = protocol.poised(states[index])
            if kind == DECIDE:
                continue
            try:
                _state, _mem, _pending, decision = solo_run(
                    protocol, states[index], tuple(memory), max_steps=solo_budget
                )
            except DivergenceError:
                violations.append(
                    f"{protocol.name}: process {index} ran solo for "
                    f"{solo_budget} steps without deciding after schedule "
                    f"{list(schedule)[:20]}..."
                )
                continue
            if decision is None:
                violations.append(
                    f"{protocol.name}: process {index} solo run stopped "
                    "without a decision"
                )
    return violations
