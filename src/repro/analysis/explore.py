"""Bounded-exhaustive model checking of normal-form protocols.

Because protocol states are hashable and transitions pure, a whole system
configuration is the pair ``(process states, M contents)`` and the
asynchronous adversary is just "which undecided process moves next".  This
module enumerates that choice tree with depth-aware memoization, checking
task safety (validity and agreement are monotone in the set of decisions,
so they can be checked as decisions appear) and optionally probing
progress by running solo extensions from reachable configurations.

Protocols like racing consensus have unbounded round numbers, so the full
configuration space is infinite; exploration is therefore *bounded*
exhaustive: complete up to ``max_configs``/``max_steps`` and reported as
truncated beyond.  A safety bug within the bound is a real counterexample
(the discovered schedule is replayable); absence of bugs is evidence in the
small-scope sense.

Soundness under a depth bound requires more than a visited set: a
configuration first reached at depth ``d`` may be reached again later by a
*strictly shorter* path, and the subtree that was cut off at ``d`` (or at
the ``max_steps`` horizon) can hide violations that the shorter arrival
would reach within the bound.  The explorer therefore memoizes the best
(minimum) depth at which each configuration was expanded and re-expands on
any strictly shallower arrival — never on a deeper one, so cycles stay
pruned and the search stays finite.

Exploration shards: :func:`schedule_prefixes` cuts the interleaving tree
into the subtrees below every viable schedule prefix of a fixed length,
and :func:`explore_prefix_range` explores any contiguous range of those
subtrees, each with a fresh memo table, merging the per-subtree
:class:`ExplorationReport` objects in prefix order.  Because each unit's
report is a pure function of ``(protocol, inputs, task, prefix, bounds)``
and ``merge()`` is a commutative monoid, the campaign engine
(:mod:`repro.campaign`) can distribute the units across worker processes
and reproduce the serial report byte for byte — see docs/CAMPAIGNS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DivergenceError, ValidationError
from repro.protocols.base import DECIDE, SCAN, Protocol, solo_run


@dataclass
class ExplorationReport:
    """Outcome of :func:`explore_protocol`.

    Attributes:
        violations: distinct safety violations found, sorted (empty = safe
            within the explored space).
        configurations: number of distinct configurations visited.
        truncated: True if a bound cut exploration short.
        fully_decided: number of configurations where every process decided.
        counterexample: the lexicographically least schedule (list of
            process indices) known to reach a violating configuration, if
            any — replay it to debug the protocol.

    Reports form a commutative monoid under :meth:`merge` with
    ``ExplorationReport()`` as identity, which is what lets sharded
    exploration (:mod:`repro.campaign`) recombine per-subtree reports in
    any grouping without changing the result.
    """

    violations: List[str] = field(default_factory=list)
    configurations: int = 0
    truncated: bool = False
    fully_decided: int = 0
    counterexample: Optional[List[int]] = None

    @property
    def safe(self) -> bool:
        return not self.violations

    def merge(self, other: "ExplorationReport") -> "ExplorationReport":
        """Combine two partial reports from disjoint subtrees (pure).

        Associative and commutative, with ``ExplorationReport()`` as
        identity: tallies sum, ``truncated`` ORs, violations take the
        sorted union, and ``counterexample`` keeps the lexicographically
        least non-``None`` schedule — order-free extremes, so sharded
        exploration merges to the same report however units are grouped.
        """
        candidates = [
            c for c in (self.counterexample, other.counterexample)
            if c is not None
        ]
        return ExplorationReport(
            violations=sorted(set(self.violations) | set(other.violations)),
            configurations=self.configurations + other.configurations,
            truncated=self.truncated or other.truncated,
            fully_decided=self.fully_decided + other.fully_decided,
            counterexample=list(min(candidates)) if candidates else None,
        )

    def summary(self) -> str:
        """One-line human summary."""
        verdict = (
            "safe" if self.safe
            else f"{len(self.violations)} distinct violation(s)"
        )
        return (
            f"{self.configurations} configurations explored: {verdict}, "
            f"{self.fully_decided} fully decided"
            f"{', truncated' if self.truncated else ''}"
        )


def _decisions(protocol: Protocol, states: Tuple) -> Dict[int, Any]:
    out = {}
    for index, state in enumerate(states):
        kind, payload = protocol.poised(state)
        if kind == DECIDE:
            out[index] = payload
    return out


def _step(
    protocol: Protocol, states: Tuple, memory: Tuple, index: int
) -> Tuple[Tuple, Tuple]:
    """Apply one step of (undecided) process ``index``; pure."""
    kind, payload = protocol.poised(states[index])
    if kind == SCAN:
        new_state = protocol.advance(states[index], memory)
        new_memory = memory
    else:
        component, value = payload
        new_state = protocol.advance(states[index], None)
        new_memory = memory[:component] + (value,) + memory[component + 1:]
    return states[:index] + (new_state,) + states[index + 1:], new_memory


def effective_prefix_depth(prefix_depth: int, max_steps: Optional[int]) -> int:
    """Cap the sharding depth at the exploration depth bound.

    Prefixes longer than ``max_steps`` would root subtrees beyond the
    horizon the caller asked about; capping keeps sharding pure execution
    geometry with no effect on which configurations are in scope.
    """
    if prefix_depth < 0:
        raise ValidationError(
            f"prefix_depth must be >= 0, got {prefix_depth}"
        )
    if max_steps is not None:
        return min(prefix_depth, max_steps)
    return prefix_depth


def schedule_prefixes(
    protocol: Protocol, inputs: Sequence[Any], depth: int
) -> Tuple[Tuple[int, ...], ...]:
    """All viable schedule prefixes of length ``depth``, in lex order.

    A prefix is viable when every step it schedules is by a process that
    is still undecided at that point.  Prefixes along which every process
    decides before ``depth`` are kept at their shorter length (their
    subtree is just the terminal configuration).  The tuple is the
    canonical unit decomposition sharded exploration distributes over.
    """
    states = tuple(
        protocol.initial_state(i, v) for i, v in enumerate(inputs)
    )
    memory: Tuple = (None,) * protocol.m
    prefixes: List[Tuple[int, ...]] = []

    def extend(states: Tuple, memory: Tuple, prefix: Tuple[int, ...]) -> None:
        if len(prefix) == depth:
            prefixes.append(prefix)
            return
        viable = [
            i for i in range(len(inputs))
            if protocol.poised(states[i])[0] != DECIDE
        ]
        if not viable:
            prefixes.append(prefix)
            return
        for index in viable:
            new_states, new_memory = _step(protocol, states, memory, index)
            extend(new_states, new_memory, prefix + (index,))

    extend(states, memory, ())
    return tuple(prefixes)


def unit_budget(max_configs: int, units: int) -> int:
    """The per-subtree configuration budget for a ``units``-way sharding.

    Derived once from the *total* budget so that serial and sharded
    exploration of the same decomposition impose identical limits.
    """
    return max(1, -(-max_configs // max(1, units)))


def _check_config(
    report: ExplorationReport,
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    states: Tuple,
    schedule: Tuple[int, ...],
    stop_at_first_violation: bool,
) -> Tuple[Dict[int, Any], bool]:
    """Safety-check one configuration against the task.

    Returns ``(decided map, stop)`` where ``stop`` means a violation was
    found and the caller asked to stop at the first one.  The recorded
    counterexample is the lexicographically least violating schedule seen
    so far, keeping the report independent of traversal order.
    """
    decided = _decisions(protocol, states)
    if not decided:
        return decided, False
    found = task.check(list(inputs), decided)
    if not found:
        return decided, False
    for violation in found:
        if violation not in report.violations:
            report.violations.append(violation)
    as_list = list(schedule)
    if report.counterexample is None or as_list < report.counterexample:
        report.counterexample = as_list
    return decided, stop_at_first_violation


def _explore_unit(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    prefix: Tuple[int, ...],
    max_configs: int,
    max_steps: Optional[int],
    stop_at_first_violation: bool,
) -> ExplorationReport:
    """Explore the interleaving subtree below one schedule prefix.

    The unit owns (counts and checks) the configurations along its prefix
    path only where this prefix is the lexicographically least viable
    continuation — so across the full prefix decomposition every interior
    path position is owned by exactly one unit — plus everything the
    frontier reaches below the prefix.  ``best_depth`` memoizes the
    minimum depth each configuration was expanded at; a strictly
    shallower arrival re-expands (the depth-bound soundness fix), a
    deeper or equal one is pruned.
    """
    report = ExplorationReport()
    best_depth: Dict[Tuple, int] = {}

    # Pass 1: walk the prefix, recording the path and whether each step
    # took the least viable index (the ownership rule needs the suffix).
    states = tuple(
        protocol.initial_state(i, v) for i, v in enumerate(inputs)
    )
    memory: Tuple = (None,) * protocol.m
    path: List[Tuple[Tuple, Tuple]] = []
    least_viable: List[bool] = []
    for index in prefix:
        path.append((states, memory))
        viable = [
            i for i in range(len(inputs))
            if protocol.poised(states[i])[0] != DECIDE
        ]
        least_viable.append(bool(viable) and index == viable[0])
        states, memory = _step(protocol, states, memory, index)
    owned_from = len(prefix)
    for flag in reversed(least_viable):
        if not flag:
            break
        owned_from -= 1

    # Pass 2: seed the memo with the path configurations and check the
    # owned interior ones (in path order, same count/check/budget
    # sequence as the frontier loop below).
    for depth, (p_states, p_memory) in enumerate(path):
        key = (p_states, p_memory)
        if key in best_depth:
            continue
        best_depth[key] = depth
        if depth < owned_from:
            continue
        report.configurations += 1
        _decided, stop = _check_config(
            report, protocol, inputs, task, p_states, prefix[:depth],
            stop_at_first_violation,
        )
        if stop:
            report.violations.sort()
            return report
        if report.configurations >= max_configs:
            report.truncated = True
            report.violations.sort()
            return report

    # Pass 3: frontier exploration below the prefix.  LIFO with children
    # pushed in ascending index order, so higher indices expand first —
    # the historical traversal order, kept for comparable truncation
    # behaviour (the *report* no longer depends on it).
    frontier: List[Tuple[Tuple, Tuple, int, Tuple[int, ...]]] = [
        (states, memory, len(prefix), prefix)
    ]
    while frontier:
        states, memory, depth, schedule = frontier.pop()
        key = (states, memory)
        prior = best_depth.get(key)
        if prior is not None and depth >= prior:
            continue
        first_visit = prior is None
        best_depth[key] = depth
        if first_visit:
            report.configurations += 1

        decided, stop = _check_config(
            report, protocol, inputs, task, states, schedule,
            stop_at_first_violation,
        )
        if stop:
            break
        all_decided = len(decided) == len(inputs)
        if all_decided and first_visit:
            report.fully_decided += 1
        if report.configurations >= max_configs:
            report.truncated = True
            break
        if all_decided:
            continue
        if max_steps is not None and depth >= max_steps:
            report.truncated = True
            continue

        for index in range(len(inputs)):
            if index in decided:
                continue
            new_states, new_memory = _step(protocol, states, memory, index)
            frontier.append(
                (new_states, new_memory, depth + 1, schedule + (index,))
            )
    report.violations.sort()
    return report


def explore_prefix_range(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    prefixes: Sequence[Tuple[int, ...]],
    start: int,
    stop: int,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
) -> ExplorationReport:
    """Explore units ``start..stop-1`` of a prefix decomposition.

    ``prefixes`` must be the *full* decomposition (normally from
    :func:`schedule_prefixes`): the per-unit budget is derived from
    ``max_configs`` over its total length, so disjoint ranges merged
    together equal one call over the whole range.  This is the serial
    function :class:`repro.campaign.ExploreJob` workers execute.
    """
    budget = unit_budget(max_configs, len(prefixes))
    report = ExplorationReport()
    for prefix in prefixes[start:stop]:
        report = report.merge(
            _explore_unit(
                protocol, inputs, task, tuple(prefix), budget, max_steps,
                stop_at_first_violation,
            )
        )
    return report


def explore_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
    prefix_depth: int = 0,
) -> ExplorationReport:
    """Explore every interleaving of a protocol instance, checking safety.

    Args:
        protocol: the protocol under test.
        inputs: one input per participating process (may be fewer than
            ``protocol.n``).
        task: a task checker with ``check(inputs, outputs) -> [violations]``
            (see :mod:`repro.protocols.tasks`).
        max_configs: visit budget; exceeded -> ``truncated``.
        max_steps: optional per-run depth bound (schedule length).
        stop_at_first_violation: stop early (with counterexample) or keep
            collecting distinct violations.
        prefix_depth: shard the search into the subtrees below every
            viable schedule prefix of this length, each explored with a
            fresh memo and a ``max_configs``-derived budget.  ``0`` (the
            default) is the classic single-rooted search; a sharded
            campaign (:func:`repro.campaign.explore_campaign`) with the
            same ``prefix_depth`` reproduces this function's report
            exactly.
    """
    if len(inputs) > protocol.n:
        raise ValidationError(
            f"{protocol.name} supports n={protocol.n}, got {len(inputs)} inputs"
        )
    depth = effective_prefix_depth(prefix_depth, max_steps)
    prefixes = schedule_prefixes(protocol, inputs, depth)
    return explore_prefix_range(
        protocol, inputs, task, prefixes, 0, len(prefixes),
        max_configs=max_configs, max_steps=max_steps,
        stop_at_first_violation=stop_at_first_violation,
    )


def check_obstruction_freedom(
    protocol: Protocol,
    inputs: Sequence[Any],
    sample_schedules: Sequence[Sequence[int]],
    solo_budget: int = 10_000,
) -> List[str]:
    """Probe obstruction-freedom: from each configuration reached by a given
    schedule, every process run solo must decide within ``solo_budget``.

    Returns violations (empty = obstruction-free on all probes).  The
    schedules are lists of process indices; steps by decided processes are
    skipped.  Schedule entries outside ``range(len(inputs))`` are a
    :class:`~repro.errors.ValidationError`.
    """
    violations = []
    for schedule in sample_schedules:
        for position, index in enumerate(schedule):
            if not 0 <= index < len(inputs):
                raise ValidationError(
                    f"{protocol.name}: schedule entry {index} at position "
                    f"{position} out of range for {len(inputs)} processes"
                )
        states = [protocol.initial_state(i, v) for i, v in enumerate(inputs)]
        memory: List[Any] = [None] * protocol.m
        for index in schedule:
            kind, payload = protocol.poised(states[index])
            if kind == DECIDE:
                continue
            if kind == SCAN:
                states[index] = protocol.advance(states[index], tuple(memory))
            else:
                component, value = payload
                memory[component] = value
                states[index] = protocol.advance(states[index], None)
        for index in range(len(inputs)):
            kind, _payload = protocol.poised(states[index])
            if kind == DECIDE:
                continue
            try:
                _state, _mem, _pending, decision = solo_run(
                    protocol, states[index], tuple(memory), max_steps=solo_budget
                )
            except DivergenceError:
                violations.append(
                    f"{protocol.name}: process {index} ran solo for "
                    f"{solo_budget} steps without deciding after schedule "
                    f"{list(schedule)[:20]}..."
                )
                continue
            if decision is None:
                violations.append(
                    f"{protocol.name}: process {index} solo run stopped "
                    "without a decision"
                )
    return violations
