"""Bounded-exhaustive model checking of normal-form protocols.

Because protocol states are hashable and transitions pure, a whole system
configuration is the pair ``(process states, M contents)`` and the
asynchronous adversary is just "which undecided process moves next".  This
module enumerates that choice tree with depth-aware memoization, checking
task safety (validity and agreement are monotone in the set of decisions,
so they can be checked as decisions appear) and optionally probing
progress by running solo extensions from reachable configurations.

Protocols like racing consensus have unbounded round numbers, so the full
configuration space is infinite; exploration is therefore *bounded*
exhaustive: complete up to ``max_configs``/``max_steps`` and reported as
truncated beyond.  A safety bug within the bound is a real counterexample
(the discovered schedule is replayable); absence of bugs is evidence in the
small-scope sense.

Soundness under a depth bound requires more than a visited set: a
configuration first reached at depth ``d`` may be reached again later by a
*strictly shorter* path, and the subtree that was cut off at ``d`` (or at
the ``max_steps`` horizon) can hide violations that the shorter arrival
would reach within the bound.  The explorer therefore memoizes the best
(minimum) depth at which each configuration was expanded and re-expands on
any strictly shallower arrival — never on a deeper one, so cycles stay
pruned and the search stays finite.

Exploration shards: :func:`schedule_prefixes` cuts the interleaving tree
into the subtrees below every viable schedule prefix of a fixed length,
and :func:`explore_prefix_range` explores any contiguous range of those
subtrees, each with a fresh memo table, merging the per-subtree
:class:`ExplorationReport` objects in prefix order.  Because each unit's
report is a pure function of ``(protocol, inputs, task, prefix, bounds)``
and ``merge()`` is a commutative monoid, the campaign engine
(:mod:`repro.campaign`) can distribute the units across worker processes
and reproduce the serial report byte for byte — see docs/CAMPAIGNS.md.

The hot path is cache-heavy: an :class:`ExplorationContext` owns the
per-protocol transition caches (``poised`` classification and scan/update
successors), hash-conses whole configurations into interned
:class:`_Config` nodes with cached hashes and per-configuration successor
and task-check caches, and tracks decision status incrementally (only the
stepped process can change it).  The caches hold *pure derived data
only*, so sharing them across units — or not — cannot change any report;
docs/PERFORMANCE.md records the purity assumptions they rely on and the
measured effect.

Two further levers live on the context.  With ``packed=True`` (the
default) every distinct process state and memory value is interned to a
small integer in a per-context table and each configuration is keyed by a
pair of machine-word-packed integers (``_SLOT_BITS`` bits per process /
component), so interning and successor lookups hash and compare ints
instead of wide object tuples; the packed path is pure key encoding and
produces byte-identical reports (enforced by the frozen differential
suite).  With ``symmetry=True`` the per-unit depth memo is keyed by the
configuration's *canonical form under process permutation* — the packed
sorted state-id multiset plus the memory key — so configurations that
differ only by renaming processes share one memo entry and only one
representative subtree is expanded.  That is sound exactly when the
protocol declares :data:`~repro.protocols.base.SYMMETRY_FULL` via
:meth:`~repro.protocols.base.Protocol.symmetry` (anonymous protocols:
transitions depend only on the state, so permuted configurations root
isomorphic subtrees and task verdicts depend only on the decided value
multiset); protocols declaring ``identity`` keep the exact unreduced
semantics even under ``symmetry=True``.  Reduced reports keep the same
safe/unsafe verdict and a genuinely replayable counterexample, but visit
(and therefore count) fewer configurations — see docs/PERFORMANCE.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DivergenceError, ValidationError
from repro.memory.rmw import apply_rmw
from repro.protocols.base import (
    DECIDE,
    RMW,
    SCAN,
    SYMMETRY_FULL,
    SYMMETRY_IDENTITY,
    Protocol,
    solo_run,
)


@dataclass
class ExplorationReport:
    """Outcome of :func:`explore_protocol`.

    Attributes:
        violations: distinct safety violations found, sorted (empty = safe
            within the explored space).
        configurations: number of distinct configurations visited.
        truncated: True if a bound cut exploration short.
        fully_decided: number of configurations where every process decided.
        counterexample: the lexicographically least schedule (list of
            process indices) known to reach a violating configuration, if
            any — replay it to debug the protocol.

    Reports form a commutative monoid under :meth:`merge` with
    ``ExplorationReport()`` as identity, which is what lets sharded
    exploration (:mod:`repro.campaign`) recombine per-subtree reports in
    any grouping without changing the result.
    """

    violations: List[str] = field(default_factory=list)
    configurations: int = 0
    truncated: bool = False
    fully_decided: int = 0
    counterexample: Optional[List[int]] = None
    #: Witness certificates (:mod:`repro.certify`) for the recorded
    #: counterexample; excluded from equality and repr so carrying them
    #: never changes report comparisons.
    certificates: List[Any] = field(
        default_factory=list, compare=False, repr=False
    )

    @property
    def safe(self) -> bool:
        return not self.violations

    def merge(self, other: "ExplorationReport") -> "ExplorationReport":
        """Combine two partial reports from disjoint subtrees (pure).

        Associative and commutative, with ``ExplorationReport()`` as
        identity: tallies sum, ``truncated`` ORs, violations take the
        sorted union, and ``counterexample`` keeps the lexicographically
        least non-``None`` schedule — order-free extremes, so sharded
        exploration merges to the same report however units are grouped.
        """
        candidates = [
            c for c in (self.counterexample, other.counterexample)
            if c is not None
        ]
        merged = ExplorationReport(
            violations=sorted(set(self.violations) | set(other.violations)),
            configurations=self.configurations + other.configurations,
            truncated=self.truncated or other.truncated,
            fully_decided=self.fully_decided + other.fully_decided,
            counterexample=list(min(candidates)) if candidates else None,
        )
        if self.certificates or other.certificates:
            # Keep exactly the certificates whose schedule is the merged
            # (lexicographically least) counterexample, so serial and
            # sharded exploration carry identical certificate sets.
            from repro.certify.certificates import sorted_certificates

            merged.certificates = sorted_certificates([
                certificate
                for certificate in self.certificates + other.certificates
                if certificate.payload.get("schedule")
                == merged.counterexample
            ])
        return merged

    def summary(self) -> str:
        """One-line human summary."""
        verdict = (
            "safe" if self.safe
            else f"{len(self.violations)} distinct violation(s)"
        )
        return (
            f"{self.configurations} configurations explored: {verdict}, "
            f"{self.fully_decided} fully decided"
            f"{', truncated' if self.truncated else ''}"
        )


#: Cache-miss sentinel (``None`` is a legal cached value for states).
_MISSING = object()

#: Bits per process / memory slot in packed configuration keys.  Interned
#: state/value ids live in ``[0, 2**_SLOT_BITS)``; a protocol instance
#: with more distinct states or written values than that is rejected.
_SLOT_BITS = 32
_SLOT_LIMIT = 1 << _SLOT_BITS


def _pack(ids: Sequence[int]) -> int:
    """Pack a sequence of slot ids into one integer key, slot 0 lowest."""
    key = 0
    shift = 0
    for slot_id in ids:
        key |= slot_id << shift
        shift += _SLOT_BITS
    return key


class _Config:
    """One interned system configuration (hash-consed by the context).

    ``states``/``memory`` are the raw tuples; ``decided`` maps decided
    process indices to their DECIDE payloads in ascending index order;
    ``undecided`` is the ascending tuple of indices still poised to scan
    or update.  ``succ`` caches the interned successor per stepped index
    and ``check_cache`` the task checker's verdict — both pure functions
    of the configuration given the context's protocol/task, so caching
    them can never change a report.

    Interning makes identity coincide with configuration equality, so
    memo tables keyed by ``_Config`` nodes use the default identity hash
    instead of re-hashing wide state/memory tuples on every lookup.
    ``decided``/``undecided`` may be shared between a parent and a child
    that made no new decision; treat them as immutable.

    On a packed context the node also carries its packed encoding:
    ``sids``/``mids`` are the per-slot interned ids of ``states`` and
    ``memory`` and ``skey``/``mkey`` the corresponding packed integers
    (children derive theirs from the parent's with one shifted-delta
    addition per step).  ``canon`` lazily caches the canonical key under
    process permutation used by symmetry-reduced memo tables.  On an
    unpacked context all five stay ``None``.

    Packed nodes are created with ``states``/``memory`` as ``None``:
    the hot path runs entirely on slot ids and packed keys, and the raw
    tuples are materialized from the context's reverse table only when
    a transition-cache miss (or an external caller, via
    :meth:`ExplorationContext.states_of` /
    :meth:`ExplorationContext.memory_of`) actually needs the objects.
    """

    __slots__ = ("states", "memory", "decided", "undecided", "succ",
                 "check_cache", "skey", "sids", "mkey", "mids", "canon")

    def __init__(
        self,
        states: Optional[Tuple],
        memory: Optional[Tuple],
        decided: Dict[int, Any],
        undecided: Tuple[int, ...],
        skey: Optional[int] = None,
        sids: Optional[Tuple[int, ...]] = None,
        mkey: Optional[int] = None,
        mids: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.states = states
        self.memory = memory
        self.decided = decided
        self.undecided = undecided
        # One slot per process; replay steps by decided processes cache
        # the parent itself, so a list (no key hashing) suffices.
        self.succ: List[Optional["_Config"]] = [None] * (
            len(states) if states is not None else len(sids)
        )
        self.check_cache: Optional[List[str]] = None
        self.skey = skey
        self.sids = sids
        self.mkey = mkey
        self.mids = mids
        self.canon: Optional[Tuple[int, int]] = None


class ExplorationContext:
    """Transition caches for one ``(protocol, inputs, task)`` triple.

    Owns the hot-path caches the explorer, fuzzer, and shrinker share:

    - ``poised(state)`` — the protocol's classification of each distinct
      process state, computed once per state instead of once per visit;
    - scan/update successors — ``advance`` results keyed by
      ``(state, observation)`` for scans (the observation is the memory
      snapshot) and by ``state`` alone for updates (their observation is
      always ``None``);
    - the intern table mapping raw ``(states, memory)`` pairs to
      :class:`_Config` nodes, each carrying its decided/undecided split
      (maintained incrementally: only the stepped process can change
      decision status) and a per-index successor cache.

    Everything cached is *pure derived data* under the documented
    :class:`~repro.protocols.base.Protocol` contract (hashable immutable
    states, pure ``poised``/``advance``, pure ``task.check``), so sharing
    a context across exploration units — or not sharing it, as sharded
    campaign workers don't — cannot change any report.  The per-unit
    depth memo is *not* part of the context; each unit keeps its own.
    See docs/PERFORMANCE.md for the full purity contract and the
    measured effect.

    ``packed`` (default) interns every distinct state and memory value to
    a small integer and keys the intern/successor tables by packed
    integer pairs instead of object tuples — pure key encoding, reports
    are byte-identical.  ``symmetry`` additionally asks for symmetry
    reduction; it requires the packed encoding and takes effect only when
    the protocol declares :data:`~repro.protocols.base.SYMMETRY_FULL`
    (``self.symmetry`` records whether reduction is active;
    identity-group protocols keep exact unreduced semantics).
    """

    def __init__(
        self,
        protocol: Protocol,
        inputs: Sequence[Any],
        task: Any = None,
        packed: bool = True,
        symmetry: bool = False,
    ) -> None:
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.task = task
        self.packed = bool(packed)
        self.symmetry_requested = bool(symmetry)
        self.symmetry = False
        if symmetry:
            if not self.packed:
                raise ValidationError(
                    "symmetry reduction requires the packed configuration "
                    "encoding (symmetry=True with packed=False)"
                )
            group = protocol.symmetry()
            if group not in (SYMMETRY_FULL, SYMMETRY_IDENTITY):
                raise ValidationError(
                    f"{protocol.name}: unknown symmetry group {group!r} "
                    f"(expected {SYMMETRY_FULL!r} or {SYMMETRY_IDENTITY!r})"
                )
            self.symmetry = group == SYMMETRY_FULL
        self._poised: Dict[Any, Tuple[str, Any]] = {}
        #: Unpacked scan successors: ``(state, memory) -> new state``
        #: (packed contexts use ``_scan_by_sid`` instead).
        self._scan_succ: Dict[Tuple[Any, Any], Any] = {}
        #: Packed: ``sid -> (new sid, component, value mid)``; unpacked:
        #: ``state -> (new state, component, value)``.  A context lives
        #: in one mode, so the key shapes never share a table instance.
        self._update_succ: Dict[Any, Tuple[Any, int, Any]] = {}
        #: RMW successors depend on the component's *current* contents
        #: (an RMW reads what it overwrites), so the key carries it:
        #: packed ``(sid, old mid) -> (new sid, new value mid)``;
        #: unpacked ``(state, old value) -> (new state, new value)``.
        self._rmw_succ: Dict[Tuple[Any, Any], Tuple[Any, Any]] = {}
        self._configs: Dict[Tuple, _Config] = {}
        #: state/value -> slot id for the packed encoding.  States and
        #: memory values share one table; ids are assigned in first-seen
        #: order, so the mapping is deterministic per traversal order but
        #: never observable in a report (keys only gate equality).
        self._ids: Dict[Any, int] = {}
        #: id -> state/value, the inverse of ``_ids`` (packed contexts
        #: materialize tuples from it on transition-cache misses).
        self._values: List[Any] = []
        #: id -> cached ``protocol.poised`` entry, filled on first use
        #: (slots holding memory values simply never get asked).
        self._poised_ids: List[Optional[Tuple[str, Any]]] = []
        #: id -> ``{memory key -> scanned successor id}`` for the packed
        #: scan cache, created lazily per scanning state.
        self._scan_by_sid: List[Optional[Dict[int, int]]] = []
        #: One attribute load dispatches the encoding for the hot path.
        self.child = (
            self._child_packed if self.packed else self._child_unpacked
        )
        states = tuple(
            protocol.initial_state(i, v) for i, v in enumerate(inputs)
        )
        self.root = self._intern_scan(states, (None,) * protocol.m)

    def poised(self, state: Any) -> Tuple[str, Any]:
        """``protocol.poised(state)``, computed once per distinct state."""
        entry = self._poised.get(state)
        if entry is None:
            entry = self._poised[state] = self.protocol.poised(state)
        return entry

    def _id(self, value: Any) -> int:
        """The slot id interning a state or memory value (assigning one
        on first sight).  Ids compare like the values they stand for:
        the table is keyed by equality, so equal objects share an id and
        distinct-by-equality objects never do — packed key equality is
        exactly tuple equality."""
        ids = self._ids
        found = ids.get(value)
        if found is None:
            found = len(ids)
            if found >= _SLOT_LIMIT:
                raise ValidationError(
                    f"{self.protocol.name}: more than {_SLOT_LIMIT} "
                    "distinct states/values; packed exploration cannot "
                    "encode this instance (pass packed=False)"
                )
            ids[value] = found
            self._values.append(value)
            self._poised_ids.append(None)
            self._scan_by_sid.append(None)
        return found

    def _poised_by_id(self, sid: int) -> Tuple[str, Any]:
        """``protocol.poised`` for a slot id, computed once per id.

        The packed hot path classifies states by list index instead of
        re-hashing the state object; the entry is the same pure
        ``poised`` result the unpacked cache would hold.
        """
        entry = self._poised_ids[sid]
        if entry is None:
            entry = self._poised_ids[sid] = self.protocol.poised(
                self._values[sid]
            )
        return entry

    def states_of(self, config: _Config) -> Tuple:
        """The configuration's raw state tuple (materialized lazily on
        packed contexts, where the hot path runs on slot ids)."""
        states = config.states
        if states is None:
            values = self._values
            states = config.states = tuple(
                values[sid] for sid in config.sids
            )
        return states

    def memory_of(self, config: _Config) -> Tuple:
        """The configuration's raw memory tuple (lazy, like
        :meth:`states_of`)."""
        memory = config.memory
        if memory is None:
            values = self._values
            memory = config.memory = tuple(
                values[mid] for mid in config.mids
            )
        return memory

    def canon_key(self, config: _Config) -> Tuple[int, int]:
        """The configuration's canonical key under process permutation:
        the packed *sorted* state-id tuple plus the memory key.  Two
        configurations share a canonical key iff one is a process
        permutation of the other (memory is permutation-invariant —
        component j is component j for every process).  Cached on the
        node; packed contexts only."""
        key = config.canon
        if key is None:
            key = (_pack(sorted(config.sids)), config.mkey)
            config.canon = key
        return key

    def _intern_scan(self, states: Tuple, memory: Tuple) -> _Config:
        """Intern a configuration, deriving the decided split by full scan
        (used only for roots; children derive it incrementally)."""
        if self.packed:
            sids = tuple(self._id(state) for state in states)
            mids = tuple(self._id(value) for value in memory)
            skey = _pack(sids)
            mkey = _pack(mids)
            key: Tuple = (skey, mkey)
        else:
            sids = mids = skey = mkey = None
            key = (states, memory)
        config = self._configs.get(key)
        if config is None:
            decided: Dict[int, Any] = {}
            undecided: List[int] = []
            for index, state in enumerate(states):
                kind, payload = self.poised(state)
                if kind == DECIDE:
                    decided[index] = payload
                else:
                    undecided.append(index)
            config = _Config(
                states, memory, decided, tuple(undecided),
                skey, sids, mkey, mids,
            )
            self._configs[key] = config
        return config

    def _child_unpacked(self, parent: _Config, index: int) -> _Config:
        """The configuration after process ``index`` takes one step.

        Stepping a decided process is a no-op returning ``parent``
        (replay semantics).  The result is interned and cached on the
        parent, so each edge of the configuration graph pays for its
        transition exactly once per context.  ``child`` is bound to
        this or to :meth:`_child_packed` at construction — one
        attribute load dispatches the mode, not a per-call branch.
        """
        cached = parent.succ[index]
        if cached is not None:
            return cached
        state = parent.states[index]
        kind, payload = self.poised(state)
        if kind == DECIDE:
            parent.succ[index] = parent
            return parent
        memory = parent.memory
        if kind == SCAN:
            scan_key = (state, memory)
            new_state = self._scan_succ.get(scan_key, _MISSING)
            if new_state is _MISSING:
                new_state = self.protocol.advance(state, memory)
                self._scan_succ[scan_key] = new_state
            new_memory = memory
        elif kind == RMW:
            component, op, args = payload
            old_value = memory[component]
            # op/args are functions of the state, so (state, old value)
            # determines both the written value and the advanced state.
            rmw_key = (state, old_value)
            entry = self._rmw_succ.get(rmw_key)
            if entry is None:
                new_value, result = apply_rmw(op, old_value, args)
                entry = (self.protocol.advance(state, result), new_value)
                self._rmw_succ[rmw_key] = entry
            new_state, new_value = entry
            new_memory = (
                memory[:component] + (new_value,) + memory[component + 1:]
            )
        else:
            entry = self._update_succ.get(state)
            if entry is None:
                component, value = payload
                entry = (self.protocol.advance(state, None), component, value)
                self._update_succ[state] = entry
            new_state, component, value = entry
            new_memory = (
                memory[:component] + (value,) + memory[component + 1:]
            )
        states = parent.states
        new_states = states[:index] + (new_state,) + states[index + 1:]
        key = (new_states, new_memory)
        config = self._configs.get(key)
        if config is None:
            new_kind, new_payload = self.poised(new_state)
            if new_kind == DECIDE:
                decided = dict(parent.decided)
                decided[index] = new_payload
                if any(k > index for k in parent.decided):
                    decided = {k: decided[k] for k in sorted(decided)}
                undecided = tuple(
                    k for k in parent.undecided if k != index
                )
            else:
                decided = parent.decided
                undecided = parent.undecided
            config = _Config(new_states, new_memory, decided, undecided)
            self._configs[key] = config
        parent.succ[index] = config
        return config

    def _child_packed(self, parent: _Config, index: int) -> _Config:
        """The packed successor computation: slot ids and packed keys
        only.  State and memory *objects* are touched exclusively on
        transition-cache misses — every revisit of a known ``(state,
        memory snapshot)`` pair runs on machine words (list indexing,
        int-keyed dict gets, and one shifted-delta addition per step)
        without hashing or allocating any wide tuple.
        """
        cached = parent.succ[index]
        if cached is not None:
            return cached
        sid = parent.sids[index]
        kind, payload = self._poised_ids[sid] or self._poised_by_id(sid)
        if kind == DECIDE:
            parent.succ[index] = parent
            return parent
        mkey = parent.mkey
        mids = parent.mids
        if kind == SCAN:
            # Per-sid table keyed by the memory key alone: an int-keyed
            # dict get with no key-tuple allocation.
            by_memory = self._scan_by_sid[sid]
            if by_memory is None:
                by_memory = self._scan_by_sid[sid] = {}
            new_sid = by_memory.get(mkey, _MISSING)
            if new_sid is _MISSING:
                new_sid = self._id(self.protocol.advance(
                    self._values[sid], self.memory_of(parent)
                ))
                by_memory[mkey] = new_sid
        elif kind == RMW:
            component, op, args = payload
            old_mid = mids[component]
            entry = self._rmw_succ.get((sid, old_mid))
            if entry is None:
                new_value, result = apply_rmw(
                    op, self._values[old_mid], args
                )
                entry = (
                    self._id(self.protocol.advance(
                        self._values[sid], result
                    )),
                    self._id(new_value),
                )
                self._rmw_succ[(sid, old_mid)] = entry
            new_sid, new_mid = entry
            if new_mid != old_mid:
                mkey = mkey + (
                    (new_mid - old_mid) << (component * _SLOT_BITS)
                )
                mids = (
                    mids[:component] + (new_mid,) + mids[component + 1:]
                )
        else:
            entry = self._update_succ.get(sid)
            if entry is None:
                component, value = payload
                entry = (
                    self._id(self.protocol.advance(self._values[sid], None)),
                    component, self._id(value),
                )
                self._update_succ[sid] = entry
            new_sid, component, new_mid = entry
            old_mid = mids[component]
            if new_mid != old_mid:
                mkey = mkey + (
                    (new_mid - old_mid) << (component * _SLOT_BITS)
                )
                mids = (
                    mids[:component] + (new_mid,) + mids[component + 1:]
                )
        skey = parent.skey + ((new_sid - sid) << (index * _SLOT_BITS))
        key = (skey, mkey)
        config = self._configs.get(key)
        if config is None:
            new_kind, new_payload = (
                self._poised_ids[new_sid] or self._poised_by_id(new_sid)
            )
            if new_kind == DECIDE:
                decided = dict(parent.decided)
                decided[index] = new_payload
                if any(k > index for k in parent.decided):
                    decided = {k: decided[k] for k in sorted(decided)}
                undecided = tuple(
                    k for k in parent.undecided if k != index
                )
            else:
                decided = parent.decided
                undecided = parent.undecided
            sids = (
                parent.sids[:index] + (new_sid,) + parent.sids[index + 1:]
            )
            config = _Config(
                None, None, decided, undecided, skey, sids, mkey, mids,
            )
            self._configs[key] = config
        parent.succ[index] = config
        return config

    def replay(self, schedule: Sequence[int]) -> _Config:
        """The configuration a schedule reaches from the root (steps by
        decided processes are no-ops, matching replay semantics)."""
        config = self.root
        child = self.child
        for index in schedule:
            config = child(config, index)
        return config

    def check(self, config: _Config) -> List[str]:
        """The task checker's verdict for a configuration, cached.

        Valid because ``task.check`` is pure and must not mutate its
        arguments (the decided map is shared with the config).
        """
        found = config.check_cache
        if found is None:
            found = self.task.check(list(self.inputs), config.decided)
            config.check_cache = found
        return found


def effective_prefix_depth(prefix_depth: int, max_steps: Optional[int]) -> int:
    """Cap the sharding depth at the exploration depth bound.

    Prefixes longer than ``max_steps`` would root subtrees beyond the
    horizon the caller asked about; capping keeps sharding pure execution
    geometry with no effect on which configurations are in scope.
    """
    if prefix_depth < 0:
        raise ValidationError(
            f"prefix_depth must be >= 0, got {prefix_depth}"
        )
    if max_steps is not None:
        return min(prefix_depth, max_steps)
    return prefix_depth


def schedule_prefixes(
    protocol: Protocol,
    inputs: Sequence[Any],
    depth: int,
    context: Optional[ExplorationContext] = None,
) -> Tuple[Tuple[int, ...], ...]:
    """All viable schedule prefixes of length ``depth``, in lex order.

    A prefix is viable when every step it schedules is by a process that
    is still undecided at that point.  Prefixes along which every process
    decides before ``depth`` are kept at their shorter length (their
    subtree is just the terminal configuration).  The tuple is the
    canonical unit decomposition sharded exploration distributes over.
    An existing :class:`ExplorationContext` for the same protocol and
    inputs may be passed to reuse its transition caches.
    """
    ctx = context if context is not None else ExplorationContext(
        protocol, inputs
    )
    prefixes: List[Tuple[int, ...]] = []
    # Explicit DFS stack (recursion here risked RecursionError at large
    # depths); children pushed in descending index order so pops — and
    # therefore appended prefixes — come out in lexicographic order.
    stack: List[Tuple[_Config, Tuple[int, ...]]] = [(ctx.root, ())]
    while stack:
        config, prefix = stack.pop()
        if len(prefix) == depth or not config.undecided:
            prefixes.append(prefix)
            continue
        for index in reversed(config.undecided):
            stack.append((ctx.child(config, index), prefix + (index,)))
    return tuple(prefixes)


def unit_budget(max_configs: int, units: int) -> int:
    """The per-subtree configuration budget for a ``units``-way sharding.

    Derived once from the *total* budget so that serial and sharded
    exploration of the same decomposition impose identical limits.
    """
    return max(1, -(-max_configs // max(1, units)))


def _materialize(prefix: Tuple[int, ...], tail: Optional[Tuple]) -> List[int]:
    """Reconstruct a concrete schedule from a parent-pointer node.

    ``tail`` is either ``None`` (the schedule is the prefix itself) or a
    ``(parent_tail, index)`` pair; following the parent pointers yields
    the suffix in reverse.
    """
    suffix: List[int] = []
    while tail is not None:
        suffix.append(tail[1])
        tail = tail[0]
    suffix.reverse()
    return list(prefix) + suffix


def _check_node(
    report: ExplorationReport,
    ctx: ExplorationContext,
    config: _Config,
    prefix: Tuple[int, ...],
    tail: Optional[Tuple],
    stop_at_first_violation: bool,
) -> bool:
    """Safety-check one configuration against the context's task.

    Returns ``stop``: a violation was found and the caller asked to stop
    at the first one.  The schedule rides along as a parent-pointer node
    and is materialized only when a violation is actually recorded, so
    the happy path never pays the O(depth) copy.  The recorded
    counterexample is the lexicographically least violating schedule seen
    so far, keeping the report independent of traversal order.
    """
    if not config.decided:
        return False
    found = ctx.check(config)
    if not found:
        return False
    for violation in found:
        if violation not in report.violations:
            report.violations.append(violation)
    as_list = _materialize(prefix, tail)
    if report.counterexample is None or as_list < report.counterexample:
        report.counterexample = as_list
    return stop_at_first_violation


def _explore_unit(
    ctx: ExplorationContext,
    prefix: Tuple[int, ...],
    max_configs: int,
    max_steps: Optional[int],
    stop_at_first_violation: bool,
) -> ExplorationReport:
    """Explore the interleaving subtree below one schedule prefix.

    The unit owns (counts and checks) the configurations along its prefix
    path only where this prefix is the lexicographically least viable
    continuation — so across the full prefix decomposition every interior
    path position is owned by exactly one unit — plus everything the
    frontier reaches below the prefix.  ``best_depth`` memoizes the
    minimum depth each configuration was expanded at; a strictly
    shallower arrival re-expands (the depth-bound soundness fix), a
    deeper or equal one is pruned.  The memo is keyed by interned
    :class:`_Config` nodes (identity hash) and is per-unit — only the
    context's pure transition caches persist across units.

    On a symmetry-reducing context the memo is keyed by
    :meth:`ExplorationContext.canon_key` instead, so an arrival at any
    process permutation of an already-expanded configuration is pruned
    the same way a repeat arrival is: the permuted subtree is isomorphic
    (full symmetry: transitions depend only on the state) and its task
    verdicts hold the same decided-value multiset, so a violation exists
    below one iff it exists below the other.  Budgets, counts, and
    ``fully_decided`` then tally canonical classes, not raw
    configurations — that is the reduction.
    """
    report = ExplorationReport()
    best_depth: Dict[Any, int] = {}
    symmetric = ctx.symmetry
    canon_key = ctx.canon_key

    # Pass 1: walk the prefix, recording the path and whether each step
    # took the least viable index (the ownership rule needs the suffix).
    config = ctx.root
    path: List[_Config] = []
    least_viable: List[bool] = []
    for index in prefix:
        path.append(config)
        undecided = config.undecided
        least_viable.append(bool(undecided) and index == undecided[0])
        config = ctx.child(config, index)
    owned_from = len(prefix)
    for flag in reversed(least_viable):
        if not flag:
            break
        owned_from -= 1

    # Pass 2: seed the memo with the path configurations and check the
    # owned interior ones (in path order, same count/check/budget
    # sequence as the frontier loop below).
    for depth, p_config in enumerate(path):
        memo_key = canon_key(p_config) if symmetric else p_config
        if memo_key in best_depth:
            continue
        best_depth[memo_key] = depth
        if depth < owned_from:
            continue
        report.configurations += 1
        stop = _check_node(
            report, ctx, p_config, prefix[:depth], None,
            stop_at_first_violation,
        )
        if stop:
            report.violations.sort()
            return report
        if report.configurations >= max_configs:
            report.truncated = True
            report.violations.sort()
            return report

    # Pass 3: frontier exploration below the prefix.  LIFO with children
    # pushed in ascending index order, so higher indices expand first —
    # the historical traversal order, kept for comparable truncation
    # behaviour (the *report* no longer depends on it).  Schedules are
    # parent-pointer tails rooted at the prefix, not per-node copies.
    frontier: List[Tuple[_Config, int, Optional[Tuple]]] = [
        (config, len(prefix), None)
    ]
    child = ctx.child
    best_get = best_depth.get
    while frontier:
        config, depth, tail = frontier.pop()
        memo_key = canon_key(config) if symmetric else config
        prior = best_get(memo_key)
        if prior is not None and depth >= prior:
            continue
        first_visit = prior is None
        best_depth[memo_key] = depth
        if first_visit:
            report.configurations += 1

        if config.decided:
            stop = _check_node(
                report, ctx, config, prefix, tail, stop_at_first_violation
            )
            if stop:
                break
        undecided = config.undecided
        all_decided = not undecided
        if all_decided and first_visit:
            report.fully_decided += 1
        if report.configurations >= max_configs:
            report.truncated = True
            break
        if all_decided:
            continue
        if max_steps is not None and depth >= max_steps:
            report.truncated = True
            continue

        succ = config.succ
        next_depth = depth + 1
        for index in undecided:
            # Inlined successor-cache hit: after the first expansion of
            # this configuration every edge is a plain list index, not a
            # method call (child() re-checks the same slot on a miss).
            nxt = succ[index]
            if nxt is None:
                nxt = child(config, index)
            # Push-time pruning: best_depth only ever decreases, so a
            # child already expanded this shallow (or shallower) would
            # be discarded at pop time anyway — dropping it here skips
            # the frontier churn without changing any report field.
            prior = best_get(canon_key(nxt) if symmetric else nxt)
            if prior is not None and next_depth >= prior:
                continue
            frontier.append((nxt, next_depth, (tail, index)))
    report.violations.sort()
    return report


def explore_prefix_range(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    prefixes: Sequence[Tuple[int, ...]],
    start: int,
    stop: int,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
    context: Optional[ExplorationContext] = None,
    certificates: bool = False,
    packed: bool = True,
    symmetry: bool = False,
) -> ExplorationReport:
    """Explore units ``start..stop-1`` of a prefix decomposition.

    ``prefixes`` must be the *full* decomposition (normally from
    :func:`schedule_prefixes`): the per-unit budget is derived from
    ``max_configs`` over its total length, so disjoint ranges merged
    together equal one call over the whole range.  This is the serial
    function :class:`repro.campaign.ExploreJob` workers execute.

    All units share one :class:`ExplorationContext` (``context``, or a
    fresh one built with ``packed``/``symmetry``; a supplied context must
    already carry the same modes) for its pure transition caches; each
    unit still gets a fresh depth memo, so the merged report is
    byte-identical whether units run in one call, in separate calls, or
    on separate workers — in every mode, since the per-unit function and
    the merge are mode-parametric but worker-independent.

    With ``certificates=True`` the range's report carries a witness
    certificate for its counterexample (:mod:`repro.certify`); merging
    keeps exactly the certificates of the merged counterexample, so
    serial and sharded runs emit identical certificate sets.  Symmetry
    reduction never rewrites schedules (it only prunes), so reduced
    counterexamples are genuine schedules and their certificates replay
    unchanged.
    """
    budget = unit_budget(max_configs, len(prefixes))
    if context is not None and (
        context.packed != packed
        or context.symmetry_requested != symmetry
    ):
        raise ValidationError(
            "supplied ExplorationContext was built with "
            f"packed={context.packed}, symmetry={context.symmetry_requested} "
            f"but the call asked for packed={packed}, symmetry={symmetry}"
        )
    ctx = context if context is not None else ExplorationContext(
        protocol, inputs, task, packed=packed, symmetry=symmetry
    )
    report = ExplorationReport()
    for prefix in prefixes[start:stop]:
        report = report.merge(
            _explore_unit(
                ctx, tuple(prefix), budget, max_steps,
                stop_at_first_violation,
            )
        )
    if certificates and report.counterexample is not None:
        from repro.certify.emit import exploration_certificates

        report.certificates = exploration_certificates(
            protocol, inputs, task, report
        )
    return report


def explore_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    max_configs: int = 200_000,
    max_steps: Optional[int] = None,
    stop_at_first_violation: bool = True,
    prefix_depth: int = 0,
    certificates: bool = False,
    packed: bool = True,
    symmetry: bool = False,
) -> ExplorationReport:
    """Explore every interleaving of a protocol instance, checking safety.

    Args:
        protocol: the protocol under test.
        inputs: one input per participating process (may be fewer than
            ``protocol.n``).
        task: a task checker with ``check(inputs, outputs) -> [violations]``
            (see :mod:`repro.protocols.tasks`).
        max_configs: visit budget; exceeded -> ``truncated``.
        max_steps: optional per-run depth bound (schedule length).
        stop_at_first_violation: stop early (with counterexample) or keep
            collecting distinct violations.
        prefix_depth: shard the search into the subtrees below every
            viable schedule prefix of this length, each explored with a
            fresh memo and a ``max_configs``-derived budget.  ``0`` (the
            default) is the classic single-rooted search; a sharded
            campaign (:func:`repro.campaign.explore_campaign`) with the
            same ``prefix_depth`` reproduces this function's report
            exactly.
        certificates: emit a witness certificate for the counterexample
            (:mod:`repro.certify`); requires a registered protocol/task
            descriptor.
        packed: use the packed configuration encoding (the default;
            pure key encoding, reports are byte-identical either way).
        symmetry: canonicalize configurations under process permutation
            before memo lookup; requires ``packed`` and reduces only
            protocols declaring full symmetry.  Reduced reports keep the
            safe/unsafe verdict and a replayable counterexample but
            count canonical classes, not raw configurations.
    """
    if len(inputs) > protocol.n:
        raise ValidationError(
            f"{protocol.name} supports n={protocol.n}, got {len(inputs)} inputs"
        )
    depth = effective_prefix_depth(prefix_depth, max_steps)
    ctx = ExplorationContext(
        protocol, inputs, task, packed=packed, symmetry=symmetry
    )
    prefixes = schedule_prefixes(protocol, inputs, depth, context=ctx)
    return explore_prefix_range(
        protocol, inputs, task, prefixes, 0, len(prefixes),
        max_configs=max_configs, max_steps=max_steps,
        stop_at_first_violation=stop_at_first_violation, context=ctx,
        certificates=certificates, packed=packed, symmetry=symmetry,
    )


def check_obstruction_freedom(
    protocol: Protocol,
    inputs: Sequence[Any],
    sample_schedules: Sequence[Sequence[int]],
    solo_budget: int = 10_000,
) -> List[str]:
    """Probe obstruction-freedom: from each configuration reached by a given
    schedule, every process run solo must decide within ``solo_budget``.

    Returns violations (empty = obstruction-free on all probes).  The
    schedules are lists of process indices; steps by decided processes are
    skipped.  Schedule entries outside ``range(len(inputs))`` are a
    :class:`~repro.errors.ValidationError`.
    """
    violations = []
    ctx = ExplorationContext(protocol, inputs)
    for schedule in sample_schedules:
        for position, index in enumerate(schedule):
            if not 0 <= index < len(inputs):
                raise ValidationError(
                    f"{protocol.name}: schedule entry {index} at position "
                    f"{position} out of range for {len(inputs)} processes"
                )
        config = ctx.replay(schedule)
        for index in range(len(inputs)):
            if index in config.decided:
                continue
            try:
                _state, _mem, _pending, decision = solo_run(
                    protocol, ctx.states_of(config)[index],
                    ctx.memory_of(config), max_steps=solo_budget,
                )
            except DivergenceError:
                violations.append(
                    f"{protocol.name}: process {index} ran solo for "
                    f"{solo_budget} steps without deciding after schedule "
                    f"{list(schedule)[:20]}..."
                )
                continue
            if decision is None:
                violations.append(
                    f"{protocol.name}: process {index} solo run stopped "
                    "without a decision"
                )
    return violations
