"""FLP valence analysis, made finite by bounds.

Fischer–Lynch–Paterson's impossibility proof classifies configurations of a
consensus protocol by *valence*: the set of values decidable from them.  A
configuration is bivalent if both 0 and 1 remain possible.  The existence of
a bivalent initial configuration plus the ability to keep executions
bivalent forever is the engine of the classic proof — and of the covering
arguments the paper contrasts its simulation with.

Here valence is computed by bounded-exhaustive search over the pure
configuration space of a normal-form protocol (states × memory), the same
representation :mod:`repro.analysis.explore` uses.  For the racing
protocols, valence within a generous bound is the practically meaningful
notion: a configuration reported bivalent comes with concrete schedules
deciding each value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ValidationError
from repro.protocols.base import DECIDE, SCAN, Protocol


@dataclass
class ValenceReport:
    """Result of :func:`classify_valence`.

    Attributes:
        values: decided values reachable from the configuration.
        truncated: True if the bound cut the search (values is then a
            lower estimate).
        witnesses: value -> schedule (process indices) reaching a
            configuration where some process decided that value.
    """

    values: Set[Any] = field(default_factory=set)
    truncated: bool = False
    witnesses: Dict[Any, List[int]] = field(default_factory=dict)
    #: Witness certificates (:mod:`repro.certify`); excluded from
    #: equality and repr so carrying them never changes comparisons.
    certificates: List[Any] = field(
        default_factory=list, compare=False, repr=False
    )

    @property
    def bivalent(self) -> bool:
        return len(self.values) >= 2

    @property
    def univalent(self) -> bool:
        return len(self.values) == 1 and not self.truncated


Configuration = Tuple[Tuple, Tuple]  # (process states, memory)


def initial_configuration(
    protocol: Protocol, inputs: Sequence[Any]
) -> Configuration:
    """The configuration where every process holds its input, M is fresh."""
    states = tuple(protocol.initial_state(i, v) for i, v in enumerate(inputs))
    return states, (None,) * protocol.m


def step_configuration(
    protocol: Protocol, config: Configuration, index: int
) -> Configuration:
    """Apply one step of process ``index`` to a configuration (pure)."""
    states, memory = config
    kind, payload = protocol.poised(states[index])
    if kind == DECIDE:
        raise ValidationError(f"process {index} already decided")
    if kind == SCAN:
        new_state = protocol.advance(states[index], memory)
        new_memory = memory
    else:
        component, value = payload
        new_state = protocol.advance(states[index], None)
        new_memory = memory[:component] + (value,) + memory[component + 1:]
    return states[:index] + (new_state,) + states[index + 1:], new_memory


def classify_valence(
    protocol: Protocol,
    inputs: Sequence[Any],
    config: Optional[Configuration] = None,
    max_configs: int = 100_000,
    certificates: bool = False,
) -> ValenceReport:
    """Compute the set of decidable values from a configuration.

    Stops early once both more-than-one value is found and witnesses are
    recorded (bivalence is established); otherwise explores until the bound.

    With ``certificates=True`` the report carries a valence witness
    certificate (:mod:`repro.certify`).  Certificates describe witness
    schedules from the *initial* configuration, so they can only be
    emitted when ``config`` is ``None``.
    """
    from_initial = config is None
    if certificates and not from_initial:
        raise ValidationError(
            "valence certificates can only be emitted for the initial "
            "configuration (witness schedules are replayed from it)"
        )
    if config is None:
        config = initial_configuration(protocol, inputs)
    report = ValenceReport()
    seen = set()
    # Breadth-first: protocols with unbounded round numbers have infinite
    # deep branches, but decisions (e.g. a solo run) live at shallow depth —
    # BFS finds them before the budget burns on one deep branch.
    from collections import deque

    queue: deque = deque([(config, ())])
    while queue:
        current, schedule = queue.popleft()
        if current in seen:
            continue
        seen.add(current)
        if len(seen) > max_configs:
            report.truncated = True
            break
        states, _memory = current
        undecided = []
        for index, state in enumerate(states):
            kind, payload = protocol.poised(state)
            if kind == DECIDE:
                if payload not in report.values:
                    report.values.add(payload)
                    report.witnesses[payload] = list(schedule)
            else:
                undecided.append(index)
        if report.bivalent:
            # Both values witnessed; for consensus that settles bivalence.
            break
        for index in undecided:
            queue.append(
                (step_configuration(protocol, current, index),
                 schedule + (index,))
            )
    if certificates and report.witnesses:
        from repro.certify.emit import valence_certificate

        report.certificates = [
            valence_certificate(protocol, inputs, report)
        ]
    return report


def bivalent_initial_configurations(
    protocol: Protocol,
    input_vectors: Sequence[Sequence[Any]],
    max_configs: int = 100_000,
) -> List[Tuple[Tuple, ValenceReport]]:
    """Classify a family of initial input vectors; returns the bivalent ones.

    The FLP Lemma-style result: for any (correct, register-based) consensus
    protocol, some adjacent pair of input vectors yields a bivalent initial
    configuration.  This harness makes that statement checkable for concrete
    protocols.
    """
    bivalent = []
    for vector in input_vectors:
        report = classify_valence(protocol, vector, max_configs=max_configs)
        if report.bivalent:
            bivalent.append((tuple(vector), report))
    return bivalent
