"""Space measurement: the paper's complexity measure, observed.

The space complexity of a protocol is the maximum number of registers used
in any execution.  This module measures the observable proxy on concrete
executions — how many distinct components of M are actually written — and
aggregates it over schedule families, so the E2 bound tables can be set
against what executions genuinely touch.

Two subtleties the reports surface:

* a protocol's *declared* m is an upper bound; particular executions
  (e.g. solo runs) may touch far fewer components — space complexity is a
  max over executions, which is why lower-bound proofs must construct
  adversarial ones;
* the simulation's own space (the augmented snapshot's H plus the touched
  helping cells) is an implementation cost of the *reduction*, not of the
  protocol — reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set

from repro.memory.rmw import apply_rmw
from repro.protocols.base import DECIDE, RMW, SCAN, Protocol
from repro.runtime.system import System


@dataclass
class SpaceReport:
    """Aggregated space usage over a family of executions."""

    declared_m: int
    per_run: List[int] = field(default_factory=list)

    @property
    def max_used(self) -> int:
        return max(self.per_run, default=0)

    @property
    def min_used(self) -> int:
        return min(self.per_run, default=0)

    @property
    def mean_used(self) -> float:
        return sum(self.per_run) / len(self.per_run) if self.per_run else 0.0


def components_written(
    protocol: Protocol, inputs: Sequence[Any], schedule: Sequence[int]
) -> Set[int]:
    """The set of components written when replaying ``schedule``."""
    states = [protocol.initial_state(i, v) for i, v in enumerate(inputs)]
    memory: List[Any] = [None] * protocol.m
    written: Set[int] = set()
    for index in schedule:
        kind, payload = protocol.poised(states[index])
        if kind == DECIDE:
            continue
        if kind == SCAN:
            states[index] = protocol.advance(states[index], tuple(memory))
        elif kind == RMW:
            # An RMW writes its component, so it counts against the
            # space measure exactly like an update.
            component, op, args = payload
            new_value, result = apply_rmw(op, memory[component], args)
            written.add(component)
            memory[component] = new_value
            states[index] = protocol.advance(states[index], result)
        else:
            component, value = payload
            written.add(component)
            memory[component] = value
            states[index] = protocol.advance(states[index], None)
    return written


def base_object_profile(
    protocol: Protocol, inputs: Sequence[Any], schedule: Sequence[int]
) -> Dict[str, int]:
    """Step counts by base-object operation when replaying ``schedule``.

    The space falsifier's companion measure for the multi-primitive
    substrate: how many scan, update, and read-modify-write steps (the
    latter split per operation — ``swap`` / ``test_and_set`` /
    ``compare_and_swap``) the schedule performs.  Steps by decided
    processes are no-ops, matching replay semantics everywhere else.
    """
    states = [protocol.initial_state(i, v) for i, v in enumerate(inputs)]
    memory: List[Any] = [None] * protocol.m
    profile: Dict[str, int] = {}
    for index in schedule:
        kind, payload = protocol.poised(states[index])
        if kind == DECIDE:
            continue
        if kind == SCAN:
            profile["scan"] = profile.get("scan", 0) + 1
            states[index] = protocol.advance(states[index], tuple(memory))
        elif kind == RMW:
            component, op, args = payload
            new_value, result = apply_rmw(op, memory[component], args)
            profile[op] = profile.get(op, 0) + 1
            memory[component] = new_value
            states[index] = protocol.advance(states[index], result)
        else:
            component, value = payload
            profile["update"] = profile.get("update", 0) + 1
            memory[component] = value
            states[index] = protocol.advance(states[index], None)
    return profile


def measure_protocol_space(
    protocol: Protocol,
    inputs: Sequence[Any],
    schedules: Sequence[Sequence[int]],
) -> SpaceReport:
    """Components written across a family of replayed schedules."""
    report = SpaceReport(declared_m=protocol.m)
    for schedule in schedules:
        report.per_run.append(
            len(components_written(protocol, inputs, schedule))
        )
    return report


def measure_system_registers(system: System) -> Dict[str, int]:
    """Registers used per shared object in a finished system run."""
    return {
        name: obj.register_count() for name, obj in system.objects.items()
    }
