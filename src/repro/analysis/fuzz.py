"""Randomized schedule fuzzing with automatic shrinking.

The model checker (:mod:`repro.analysis.explore`) is exhaustive but
small-scope; the fuzzer scales to larger instances by sampling random
schedules, checking task safety on each, and shrinking any violation to a
locally minimal counterexample.  Together they are the two safety oracles
every protocol in this repository is held to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.analysis.shrink import ShrinkResult, shrink_schedule, violates
from repro.protocols.base import DECIDE, Protocol


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign."""

    runs: int = 0
    violating_runs: int = 0
    first_violation_schedule: Optional[List[int]] = None
    minimized: Optional[ShrinkResult] = None

    @property
    def clean(self) -> bool:
        return self.violating_runs == 0


def random_schedule(
    rng: random.Random, processes: int, length: int
) -> List[int]:
    """A uniformly random schedule of process indices."""
    return [rng.randrange(processes) for _ in range(length)]


def fuzz_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    runs: int = 200,
    schedule_length: int = 60,
    seed: int = 0,
    shrink: bool = True,
) -> FuzzReport:
    """Sample random schedules, check safety, shrink the first violation.

    Schedules are replayed over the pure configuration space, so a
    violating schedule in the report reproduces deterministically.
    """
    rng = random.Random(seed)
    report = FuzzReport()
    for _ in range(runs):
        report.runs += 1
        schedule = random_schedule(rng, len(inputs), schedule_length)
        if violates(protocol, inputs, task, schedule):
            report.violating_runs += 1
            if report.first_violation_schedule is None:
                report.first_violation_schedule = schedule
                if shrink:
                    report.minimized = shrink_schedule(
                        protocol, inputs, task, schedule
                    )
    return report
