"""Randomized schedule fuzzing with automatic shrinking.

The model checker (:mod:`repro.analysis.explore`) is exhaustive but
small-scope; the fuzzer scales to larger instances by sampling random
schedules, checking task safety on each, and shrinking any violation to a
locally minimal counterexample.  Together they are the two safety oracles
every protocol in this repository is held to.

Each fuzz run draws its schedule from an RNG derived from
``(campaign seed, run index)`` — see :func:`run_rng` — so run ``i`` sees
the same schedule whether the campaign executes serially or is sharded
across workers by :mod:`repro.campaign`.  Partial :class:`FuzzReport`
objects from disjoint run ranges recombine with :meth:`FuzzReport.merge`;
the determinism contract is documented in docs/CAMPAIGNS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.analysis.explore import ExplorationContext
from repro.analysis.shrink import ShrinkResult, shrink_schedule, violates
from repro.protocols.base import Protocol

#: Default cap on retained violating schedules per report.
DEFAULT_MAX_SAVED_VIOLATIONS = 10

_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class ViolationRecord:
    """One violating fuzz run: its absolute run index and its schedule."""

    run_index: int
    schedule: Tuple[int, ...]

    @property
    def sort_key(self) -> Tuple[int, Tuple[int, ...]]:
        """Total order used to keep merges deterministic."""
        return (self.run_index, self.schedule)


@dataclass
class FuzzReport:
    """Outcome of a fuzzing campaign.

    ``violations`` retains up to ``max_saved_violations`` violating
    schedules, ordered by run index (the cap keeps the *lowest* run
    indices, so sharded campaigns merge deterministically);
    ``violating_runs`` counts all of them, including those beyond the
    cap.  ``max_saved_violations`` is configuration, not data, and is
    excluded from equality comparisons.
    """

    runs: int = 0
    violating_runs: int = 0
    violations: List[ViolationRecord] = field(default_factory=list)
    max_saved_violations: int = field(
        default=DEFAULT_MAX_SAVED_VIOLATIONS, compare=False
    )
    minimized: Optional[ShrinkResult] = None
    #: Witness certificates (:mod:`repro.certify`) for the retained
    #: violations; excluded from equality and repr so carrying them
    #: never changes report comparisons.
    certificates: List[Any] = field(
        default_factory=list, compare=False, repr=False
    )

    @property
    def clean(self) -> bool:
        """True when no sampled schedule violated the task."""
        return self.violating_runs == 0

    @property
    def first_violation_schedule(self) -> Optional[List[int]]:
        """The schedule of the lowest-indexed violating run, if any."""
        if not self.violations:
            return None
        return list(self.violations[0].schedule)

    def record_violation(self, run_index: int, schedule: Sequence[int]) -> None:
        """Count a violating run, retaining its schedule under the cap.

        Retained records are kept sorted by run index; when the cap is
        exceeded the highest-indexed record is dropped, so the retained
        set is always the ``max_saved_violations`` lowest run indices.
        """
        self.violating_runs += 1
        record = ViolationRecord(run_index, tuple(schedule))
        self.violations.append(record)
        self.violations.sort(key=lambda r: r.sort_key)
        del self.violations[self.max_saved_violations:]

    def merge(self, other: "FuzzReport") -> "FuzzReport":
        """Combine two partial reports from disjoint run ranges (pure).

        Associative and commutative, with ``FuzzReport()`` as identity:
        run tallies sum; retained violations are the ``cap`` lowest run
        indices of the union, where ``cap`` is the smaller of the two
        sides' caps; ``minimized`` follows whichever side contributes
        the overall first (lowest-indexed) violation.
        """
        cap = min(self.max_saved_violations, other.max_saved_violations)
        violations = sorted(
            self.violations + other.violations, key=lambda r: r.sort_key
        )[:cap]
        if not self.violations:
            minimized = other.minimized
        elif not other.violations:
            minimized = self.minimized
        elif (
            self.violations[0].sort_key <= other.violations[0].sort_key
        ):
            minimized = self.minimized
        else:
            minimized = other.minimized
        merged = FuzzReport(
            runs=self.runs + other.runs,
            violating_runs=self.violating_runs + other.violating_runs,
            violations=violations,
            max_saved_violations=cap,
            minimized=minimized,
        )
        if self.certificates or other.certificates:
            # Keep exactly the certificates for the retained run indices.
            # Shrink certificates are dropped (a merge may change which
            # violation is first); the campaign job's finalize hook
            # re-derives one deterministically after the final merge.
            from repro.certify.certificates import sorted_certificates

            retained = {record.run_index for record in violations}
            merged.certificates = sorted_certificates([
                certificate
                for certificate in self.certificates + other.certificates
                if certificate.payload.get("source") != "fuzz-shrink"
                and certificate.payload.get("run_index") in retained
            ])
        return merged

    def summary(self) -> str:
        """One-line human summary."""
        saved = len(self.violations)
        return (
            f"{self.runs} runs: {self.violating_runs} violating "
            f"({saved} schedule{'s' if saved != 1 else ''} retained)"
        )


def run_rng(seed: int, run_index: int) -> random.Random:
    """The RNG for fuzz run ``run_index`` of a campaign seeded ``seed``.

    Derived by a fixed 64-bit mix, so every run's schedule is a pure
    function of ``(seed, run_index)`` — independent of which worker
    executes the run, or in what order.  This is the contract that makes
    parallel fuzz campaigns byte-identical to serial ones.
    """
    return random.Random((seed * _GOLDEN64 + run_index) & _MASK64)


def random_schedule(
    rng: random.Random, processes: int, length: int
) -> List[int]:
    """A uniformly random schedule of process indices."""
    return [rng.randrange(processes) for _ in range(length)]


def schedule_for_run(
    seed: int, run_index: int, processes: int, length: int
) -> List[int]:
    """The exact schedule fuzz run ``run_index`` samples (reproducible)."""
    return random_schedule(run_rng(seed, run_index), processes, length)


def fuzz_protocol(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    runs: int = 200,
    schedule_length: int = 60,
    seed: int = 0,
    shrink: bool = True,
    run_offset: int = 0,
    max_saved_violations: int = DEFAULT_MAX_SAVED_VIOLATIONS,
    certificates: bool = False,
) -> FuzzReport:
    """Sample random schedules, check safety, shrink the first violation.

    Schedules are replayed over the pure configuration space, so a
    violating schedule in the report reproduces deterministically.  The
    run indices covered are ``run_offset .. run_offset + runs - 1``; a
    sharded campaign passes disjoint offsets to workers and merges the
    partial reports (:meth:`FuzzReport.merge`), yielding the same report
    as one serial call over the whole range.  Up to
    ``max_saved_violations`` violating schedules are retained.

    With ``certificates=True`` the report also carries one witness
    certificate (:mod:`repro.certify`) per retained violation — plus
    one for the shrunken schedule — so an independent verifier can
    re-check every claim without trusting this searcher.  The protocol
    and task must have registered certificate descriptors.
    """
    report = FuzzReport(max_saved_violations=max_saved_violations)
    # One context for the whole campaign: every run's replay (and the
    # shrinker's) walks the same cached transition graph.
    ctx = ExplorationContext(protocol, inputs, task)
    for index in range(run_offset, run_offset + runs):
        report.runs += 1
        schedule = schedule_for_run(
            seed, index, len(inputs), schedule_length
        )
        if violates(protocol, inputs, task, schedule, context=ctx):
            first = report.violating_runs == 0
            report.record_violation(index, schedule)
            if first and shrink:
                report.minimized = shrink_schedule(
                    protocol, inputs, task, schedule, context=ctx
                )
    if certificates and report.violations:
        from repro.certify.emit import fuzz_certificates

        report.certificates = fuzz_certificates(
            protocol, inputs, task, report
        )
    return report
