"""Analysis tools: checkers and adversaries.

* :mod:`repro.analysis.explore` — bounded-exhaustive model checking of
  normal-form protocols: enumerate every interleaving of a small instance,
  check task safety in every reachable configuration, and probe
  obstruction-freedom by solo-extending reachable configurations.
* :mod:`repro.analysis.linearizability` — a Wing–Gong-style checker for
  concurrent histories against sequential object specifications (used to
  machine-check the [AAD+93] snapshot constructions).
* :mod:`repro.analysis.bivalence` — the FLP valence machinery: classify
  configurations of a consensus protocol as bivalent/univalent and build the
  classic adversarial extensions, made finite by step bounds.
* :mod:`repro.analysis.covering` — Burns–Lynch covering machinery: drive a
  protocol so that processes cover distinct components, the classical
  technique the paper's simulation performs "inside" the reduction.
"""

from repro.analysis.bivalence import ValenceReport, classify_valence, bivalent_initial_configurations
from repro.analysis.covering import CoveringReport, build_covering
from repro.analysis.explore import (
    ExplorationContext,
    ExplorationReport,
    check_obstruction_freedom,
    explore_prefix_range,
    explore_protocol,
    schedule_prefixes,
    unit_budget,
)
from repro.analysis.fuzz import (
    FuzzReport,
    ViolationRecord,
    fuzz_protocol,
    run_rng,
    schedule_for_run,
)
from repro.analysis.linearizability import (
    BASE_OBJECT_SPECS,
    CompareAndSwapSpec,
    CompletedOperation,
    RegisterSpec,
    SnapshotSpec,
    SwapSpec,
    TestAndSetSpec,
    certified_linearization,
    check_linearizable,
    crossing_pairs,
    spec_for_base_object,
)
from repro.analysis.shrink import (
    ShrinkResult,
    replay_schedule,
    shrink_schedule,
    violates,
)
from repro.analysis.space import (
    SpaceReport,
    base_object_profile,
    components_written,
    measure_protocol_space,
    measure_system_registers,
)

__all__ = [
    "ExplorationContext",
    "ExplorationReport",
    "explore_protocol",
    "explore_prefix_range",
    "schedule_prefixes",
    "unit_budget",
    "check_obstruction_freedom",
    "CompletedOperation",
    "RegisterSpec",
    "SnapshotSpec",
    "SwapSpec",
    "TestAndSetSpec",
    "CompareAndSwapSpec",
    "BASE_OBJECT_SPECS",
    "spec_for_base_object",
    "certified_linearization",
    "check_linearizable",
    "crossing_pairs",
    "ValenceReport",
    "classify_valence",
    "bivalent_initial_configurations",
    "CoveringReport",
    "build_covering",
    "ShrinkResult",
    "shrink_schedule",
    "replay_schedule",
    "violates",
    "SpaceReport",
    "base_object_profile",
    "components_written",
    "measure_protocol_space",
    "measure_system_registers",
    "FuzzReport",
    "ViolationRecord",
    "fuzz_protocol",
    "run_rng",
    "schedule_for_run",
]
