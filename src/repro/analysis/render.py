"""Human-readable renderings of executions and analyses.

Everything the library computes — raw traces, Appendix B linearizations,
reconstructed simulated executions with hidden steps, bound tables — can be
rendered to fixed-width text for inspection, logging, or the experiment
write-ups.  All functions are pure string builders (no printing), so they
compose with whatever output channel the caller has.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.augmented.linearization import Linearization
from repro.core.bounds import BoundRow
from repro.core.invariant import Correspondence
from repro.runtime.system import System


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [
        " | ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_trace(system: System, limit: Optional[int] = None) -> str:
    """The raw step trace: seq, process, object, operation, result."""
    steps = system.trace.steps()
    if limit is not None:
        steps = steps[:limit]
    rows = [
        (event.seq, f"p{event.pid}", event.obj_name, event.op,
         repr(event.args), repr(event.result))
        for event in steps
    ]
    return _table(
        ["seq", "proc", "object", "op", "args", "result"], rows
    )


def render_linearization(lin: Linearization) -> str:
    """The Appendix B linearization σ: one row per Update/Scan point."""
    rows = []
    for point in lin.sigma:
        if point.kind == "scan":
            rows.append(
                (point.seq, "Scan", f"q{point.scan.rank}", "", "",
                 point.scan.op_id, "")
            )
        else:
            record = point.block_update
            rows.append(
                (point.seq, "Update", f"q{record.rank}", point.component,
                 repr(point.value), record.op_id,
                 "atomic" if record.atomic else "☡")
            )
    return _table(
        ["lin.seq", "kind", "rank", "component", "value", "operation",
         "block"],
        rows,
    )


def render_correspondence(
    correspondence: Correspondence, mark_hidden: str = ">>"
) -> str:
    """The reconstructed simulated execution, hidden steps flagged."""
    rows = []
    for position, entry in enumerate(correspondence.entries):
        step = (
            "scan"
            if entry.kind == "scan"
            else f"update({entry.component}, {entry.value!r})"
        )
        if entry.hidden:
            origin = "HIDDEN (revised past)"
        elif entry.bu_op_id:
            origin = f"block-update {entry.bu_op_id}" + (
                "" if entry.bu_atomic else " ☡"
            )
        else:
            origin = "direct"
        rows.append(
            (mark_hidden if entry.hidden else "", position,
             f"p{entry.process}", step, origin)
        )
    header = _table(["", "#", "proc", "step", "origin"], rows)
    summary = (
        f"{len(correspondence.entries)} simulated steps, "
        f"{correspondence.hidden_steps} hidden; "
        f"{'no violations' if correspondence.ok else 'VIOLATIONS:'}"
    )
    body = header + "\n" + summary
    if not correspondence.ok:
        body += "\n" + "\n".join(
            f"  - {violation}" for violation in correspondence.violations
        )
    return body


def render_bound_table(rows: Sequence[BoundRow]) -> str:
    """The Theorem 3 lower/upper bound grid."""
    return _table(
        ["n", "k", "x", "lower ⌊(n-x)/(k+1-x)⌋+1", "upper n-k+x", "gap",
         "tight"],
        [
            (row.n, row.k, row.x, row.lower, row.upper, row.gap,
             "yes" if row.tight else "")
            for row in rows
        ],
    )


def render_decisions(outcome) -> str:
    """One line per simulator decision of a SimulationOutcome."""
    lines = []
    for rank in sorted(outcome.decisions):
        lines.append(
            f"q{rank} (input {outcome.setup.inputs[rank]!r}) decided "
            f"{outcome.decisions[rank]!r}"
        )
    undecided = [
        rank
        for rank in range(outcome.setup.simulator_count)
        if rank not in outcome.decisions
    ]
    for rank in undecided:
        lines.append(f"q{rank} (input {outcome.setup.inputs[rank]!r}) — "
                     "undecided")
    return "\n".join(lines)
