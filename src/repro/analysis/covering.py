"""Burns–Lynch covering machinery.

A *covering* is a configuration in which a set of processes are each poised
to update ("cover") distinct components of memory: releasing them performs a
block write that obliterates those components.  Covering arguments [BL93]
build ever-larger coverings to force protocols to use ever-more registers —
the classical technique whose limits (per [AAE+18]) motivated the paper's
revisionist simulation, and which the covering *simulators* of Section 4
perform "inside" the reduction.

:func:`build_covering` is the constructive engine: starting from a fresh
instance, it schedules processes one at a time, running each until it is
poised to update a component not yet covered.  For protocols whose solo
executions must write fresh components (any correct consensus protocol, by
the paper's own Theorem 3 machinery), the covering grows to the requested
size; protocols that decide early or re-use components are reported as such
rather than failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.memory.rmw import apply_rmw
from repro.protocols.base import DECIDE, RMW, SCAN, UPDATE, Protocol


@dataclass
class CoveringReport:
    """Result of :func:`build_covering`.

    Attributes:
        covered: component -> process index poised to update it.
        poised_values: process index -> the (component, value) it covers.
        blocked: processes that decided (or hit the step bound) before
            covering a fresh component, with reasons.
        memory: M's contents in the covering configuration.
        steps_used: total protocol steps spent building the covering.
    """

    covered: Dict[int, int] = field(default_factory=dict)
    poised_values: Dict[int, Tuple[int, Any]] = field(default_factory=dict)
    blocked: Dict[int, str] = field(default_factory=dict)
    memory: Tuple = ()
    steps_used: int = 0
    #: process index -> the reserving execution that drove it here: the
    #: exact steps it took, each ``("scan",)``, ``("update", j, v)`` or
    #: ``("rmw", j, op, args)`` for a write that *landed* (the frozen
    #: write is withheld and lives in ``poised_values``).  Derived data
    #: for certificates; excluded from equality and repr so recording it
    #: never changes report comparisons.
    executions: Dict[int, Tuple[Tuple, ...]] = field(
        default_factory=dict, compare=False, repr=False
    )
    #: Witness certificates (:mod:`repro.certify`); excluded likewise.
    certificates: List[Any] = field(
        default_factory=list, compare=False, repr=False
    )

    @property
    def size(self) -> int:
        return len(self.covered)


def build_covering(
    protocol: Protocol,
    inputs: Sequence[Any],
    target: Optional[int] = None,
    per_process_budget: int = 10_000,
    certificates: bool = False,
) -> CoveringReport:
    """Drive processes until ``target`` distinct components are covered.

    Process i runs (solo, observing real memory) until poised to update a
    component not yet covered; then it is frozen there and the next process
    runs.  Frozen processes' pending writes are *withheld* — exactly the
    hidden block write of a covering argument.

    Each process's *reserving execution* — the exact scan and
    landed-update steps that drove it to its covering position — is
    recorded in ``report.executions``, which is what a covering
    certificate replays (:mod:`repro.certify`).

    Args:
        protocol: protocol under test.
        inputs: inputs for the participating processes.
        target: covering size to build (default: min(len(inputs), m)).
        per_process_budget: step bound per process before reporting it
            blocked.
        certificates: emit a covering certificate on the report;
            requires a registered protocol descriptor.
    """
    if target is None:
        target = min(len(inputs), protocol.m)
    if target > protocol.m:
        raise ValidationError(
            f"cannot cover {target} components: protocol uses m={protocol.m}"
        )
    report = CoveringReport()
    memory: List[Any] = [None] * protocol.m
    for index, value in enumerate(inputs):
        if report.size >= target:
            break
        state = protocol.initial_state(index, value)
        steps = 0
        log: List[Tuple] = []
        while steps < per_process_budget:
            kind, payload = protocol.poised(state)
            if kind == DECIDE:
                report.blocked[index] = f"decided {payload!r} before covering"
                break
            if kind == SCAN:
                log.append((SCAN,))
                state = protocol.advance(state, tuple(memory))
            elif kind == RMW:
                # An RMW covers its component like an update does; the
                # withheld value is the one determined by the contents
                # at freeze time (for swap and test-and-set it is
                # contents-independent anyway).
                component, op, args = payload
                new_value, result = apply_rmw(op, memory[component], args)
                if component not in report.covered:
                    report.covered[component] = index
                    report.poised_values[index] = (component, new_value)
                    break  # freeze here: the write is withheld
                log.append((RMW, component, op, tuple(args)))
                memory[component] = new_value
                state = protocol.advance(state, result)
            else:
                component, written = payload
                if component not in report.covered:
                    report.covered[component] = index
                    report.poised_values[index] = (component, written)
                    break  # freeze here: the write is withheld
                # Covered already: let the write land and keep going.
                log.append((UPDATE, component, written))
                memory[component] = written
                state = protocol.advance(state, None)
            steps += 1
        else:
            report.blocked[index] = (
                f"no fresh component within {per_process_budget} steps"
            )
        report.executions[index] = tuple(log)
        report.steps_used += steps
    report.memory = tuple(memory)
    if certificates:
        from repro.certify.emit import covering_certificate

        report.certificates = [
            covering_certificate(
                protocol, inputs, report, target, per_process_budget
            )
        ]
    return report


def release_covering(report: CoveringReport) -> Tuple:
    """Apply the withheld block write of a covering; returns new contents.

    The covering's poised updates are performed together, obliterating the
    covered components — the paper's "block update completely obliterates
    the contents of M" step.
    """
    memory = list(report.memory)
    for _index, (component, value) in report.poised_values.items():
        memory[component] = value
    return tuple(memory)
