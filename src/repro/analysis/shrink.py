"""Counterexample shrinking for protocol schedules.

A violating schedule found by the model checker or the fuzzer is rarely
minimal; this module delta-debugs it down to a locally minimal one — every
single-step removal breaks the violation — which is what you want to stare
at when diagnosing a protocol bug (the racing-consensus round-1 bug in
this repository's history was diagnosed from an 8-step shrunken schedule).

Schedules are sequences of process indices.  Replay semantics match the
explorer's: an index whose process has already decided is a no-op, so
removals never make a schedule ill-formed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from repro.protocols.base import DECIDE, SCAN, Protocol


def replay_schedule(
    protocol: Protocol, inputs: Sequence[Any], schedule: Sequence[int]
) -> Dict[int, Any]:
    """Run a schedule over fresh protocol state; returns decisions map."""
    states = [protocol.initial_state(i, v) for i, v in enumerate(inputs)]
    memory: List[Any] = [None] * protocol.m
    for index in schedule:
        kind, payload = protocol.poised(states[index])
        if kind == DECIDE:
            continue
        if kind == SCAN:
            states[index] = protocol.advance(states[index], tuple(memory))
        else:
            component, value = payload
            memory[component] = value
            states[index] = protocol.advance(states[index], None)
    decisions = {}
    for index, state in enumerate(states):
        value = protocol.decision(state)
        if value is not None:
            decisions[index] = value
    return decisions


def violates(
    protocol: Protocol, inputs: Sequence[Any], task, schedule: Sequence[int]
) -> bool:
    """Does replaying ``schedule`` produce a task violation?"""
    return bool(task.check(list(inputs), replay_schedule(protocol, inputs, schedule)))


@dataclass
class ShrinkResult:
    original: List[int]
    minimized: List[int]
    replays: int

    @property
    def removed(self) -> int:
        return len(self.original) - len(self.minimized)


def shrink_schedule(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    schedule: Sequence[int],
    max_replays: int = 50_000,
) -> ShrinkResult:
    """Minimize a violating schedule (ddmin-style, then 1-minimal pass).

    Raises ``ValueError`` if the input schedule does not violate.
    """
    current = list(schedule)
    replays = 0

    def still_violates(candidate: List[int]) -> bool:
        nonlocal replays
        replays += 1
        return violates(protocol, inputs, task, candidate)

    if not still_violates(current):
        raise ValueError("schedule does not violate the task")

    # Phase 1: exponentially shrinking chunk removal.
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and replays < max_replays:
        position = 0
        while position < len(current) and replays < max_replays:
            candidate = current[:position] + current[position + chunk:]
            if candidate and still_violates(candidate):
                current = candidate
            else:
                position += chunk
        chunk //= 2

    # Phase 2: guarantee 1-minimality.
    changed = True
    while changed and replays < max_replays:
        changed = False
        for position in range(len(current)):
            candidate = current[:position] + current[position + 1:]
            if candidate and still_violates(candidate):
                current = candidate
                changed = True
                break
    return ShrinkResult(
        original=list(schedule), minimized=current, replays=replays
    )
