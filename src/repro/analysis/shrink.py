"""Counterexample shrinking for protocol schedules.

A violating schedule found by the model checker or the fuzzer is rarely
minimal; this module delta-debugs it down to a locally minimal one — every
single-step removal breaks the violation — which is what you want to stare
at when diagnosing a protocol bug (the racing-consensus round-1 bug in
this repository's history was diagnosed from an 8-step shrunken schedule).

Schedules are sequences of process indices.  Replay semantics match the
explorer's: an index whose process has already decided is a no-op, so
removals never make a schedule ill-formed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.explore import ExplorationContext
from repro.protocols.base import Protocol


def replay_schedule(
    protocol: Protocol,
    inputs: Sequence[Any],
    schedule: Sequence[int],
    context: Optional[ExplorationContext] = None,
) -> Dict[int, Any]:
    """Run a schedule over fresh protocol state; returns decisions map.

    Replays go through an :class:`~repro.analysis.explore.ExplorationContext`
    so repeated replays (shrinking, fuzz campaigns) share transition
    caches; pass ``context`` to reuse one across calls — it must have
    been built for the same ``(protocol, inputs)``.  Decisions with a
    ``None`` payload are not reported (they are "undecided" to a task
    checker), matching the direct-replay semantics this function always
    had.
    """
    ctx = context if context is not None else ExplorationContext(
        protocol, inputs
    )
    config = ctx.replay(schedule)
    return {
        index: value
        for index, value in config.decided.items()
        if value is not None
    }


def violates(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    schedule: Sequence[int],
    context: Optional[ExplorationContext] = None,
) -> bool:
    """Does replaying ``schedule`` produce a task violation?"""
    return bool(
        task.check(
            list(inputs),
            replay_schedule(protocol, inputs, schedule, context=context),
        )
    )


@dataclass
class ShrinkResult:
    original: List[int]
    minimized: List[int]
    replays: int

    @property
    def removed(self) -> int:
        return len(self.original) - len(self.minimized)


def shrink_schedule(
    protocol: Protocol,
    inputs: Sequence[Any],
    task,
    schedule: Sequence[int],
    max_replays: int = 50_000,
    context: Optional[ExplorationContext] = None,
) -> ShrinkResult:
    """Minimize a violating schedule (ddmin-style, then 1-minimal pass).

    Raises ``ValueError`` if the input schedule does not violate.  All
    replays share one exploration context (``context`` or a fresh one),
    so candidate schedules re-walk cached transitions.
    """
    current = list(schedule)
    replays = 0
    ctx = context if context is not None else ExplorationContext(
        protocol, inputs, task
    )

    def still_violates(candidate: List[int]) -> bool:
        nonlocal replays
        replays += 1
        return violates(protocol, inputs, task, candidate, context=ctx)

    if not still_violates(current):
        raise ValueError("schedule does not violate the task")

    # Phase 1: exponentially shrinking chunk removal.
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and replays < max_replays:
        position = 0
        while position < len(current) and replays < max_replays:
            candidate = current[:position] + current[position + chunk:]
            if candidate and still_violates(candidate):
                current = candidate
            else:
                position += chunk
        chunk //= 2

    # Phase 2: guarantee 1-minimality.
    changed = True
    while changed and replays < max_replays:
        changed = False
        for position in range(len(current)):
            candidate = current[:position] + current[position + 1:]
            if candidate and still_violates(candidate):
                current = candidate
                changed = True
                break
    return ShrinkResult(
        original=list(schedule), minimized=current, replays=replays
    )
