"""A Wing–Gong style linearizability checker.

Given the completed operations of a concurrent history — each with its
real-time interval and recorded result — and a *sequential specification*
of the object, decide whether some linearization exists: a total order of
the operations, consistent with real time (an operation that ended before
another began comes first), in which every recorded result matches what the
sequential object would return.

The search is the classic backtracking over minimal-in-precedence pending
operations, memoized on ``(remaining operation ids, object state)``; the
specification must therefore expose *pure* transitions over hashable
states:

    class SnapshotSpec:
        def initial_state(self): ...
        def apply(self, state, op, args): return new_state, result

Checking is NP-hard in general, so this is meant for the moderate histories
produced by the test workloads (dozens of operations), which is exactly the
regime needed to machine-check the [AAD+93] snapshot constructions and the
augmented snapshot's Update/Scan sub-operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError


@dataclass(frozen=True)
class CompletedOperation:
    """One completed operation of a concurrent history.

    ``start``/``end`` are real-time coordinates (trace sequence numbers);
    operation A precedes B iff ``A.end < B.start``.
    """

    op_id: str
    pid: int
    op: str
    args: Tuple[Any, ...]
    result: Any
    start: int
    end: int

    def __post_init__(self):
        if self.end < self.start:
            raise ValidationError(
                f"operation {self.op_id}: end {self.end} < start {self.start}"
            )


class SnapshotSpec:
    """Sequential specification of an m-component atomic snapshot."""

    kind = "snapshot"

    def __init__(self, components: int, initial: Any = None) -> None:
        self.m = components
        self.initial = initial

    def initial_state(self) -> Tuple:
        """All components hold the initial value."""
        return (self.initial,) * self.m

    def apply(self, state: Tuple, op: str, args: Tuple) -> Tuple[Tuple, Any]:
        """Sequentially apply scan/update; returns (state, result)."""
        if op == "scan":
            return state, state
        if op == "update":
            component, value = args
            new_state = state[:component] + (value,) + state[component + 1:]
            return new_state, None
        raise ValidationError(f"snapshot spec has no operation {op!r}")


class RegisterSpec:
    """Sequential specification of a single read/write register."""

    kind = "register"

    def __init__(self, initial: Any = None) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        """The register holds its initial value."""
        return self.initial

    def apply(self, state: Any, op: str, args: Tuple) -> Tuple[Any, Any]:
        """Sequentially apply read/write; returns (state, result)."""
        if op == "read":
            return state, state
        if op == "write":
            (value,) = args
            return value, value
        raise ValidationError(f"register spec has no operation {op!r}")


class SwapSpec:
    """Sequential specification of a swap object."""

    kind = "swap"

    def __init__(self, initial: Any = None) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        """The cell holds its initial value."""
        return self.initial

    def apply(self, state: Any, op: str, args: Tuple) -> Tuple[Any, Any]:
        """Sequentially apply read/swap; returns (state, result)."""
        if op == "read":
            return state, state
        if op == "swap":
            (value,) = args
            return value, state
        raise ValidationError(f"swap spec has no operation {op!r}")


class TestAndSetSpec:
    """Sequential specification of a (resettable) test-and-set bit."""

    kind = "test-and-set"

    def __init__(self, initial: Any = 0) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        """The bit holds its initial value."""
        return self.initial

    def apply(self, state: Any, op: str, args: Tuple) -> Tuple[Any, Any]:
        """Sequentially apply read/test_and_set/reset."""
        if op == "read":
            return state, state
        if op == "test_and_set":
            return 1, state
        if op == "reset":
            return self.initial, self.initial
        raise ValidationError(f"test-and-set spec has no operation {op!r}")


class CompareAndSwapSpec:
    """Sequential specification of a compare-and-swap object."""

    kind = "compare-and-swap"

    def __init__(self, initial: Any = None) -> None:
        self.initial = initial

    def initial_state(self) -> Any:
        """The cell holds its initial value."""
        return self.initial

    def apply(self, state: Any, op: str, args: Tuple) -> Tuple[Any, Any]:
        """Sequentially apply read/compare_and_swap."""
        if op == "read":
            return state, state
        if op == "compare_and_swap":
            expected, new = args
            if state == expected:
                return new, state
            return state, state
        raise ValidationError(f"CAS spec has no operation {op!r}")


#: Base-object kind -> sequential spec class, for parameterizing the
#: checker (and the certificate descriptors) over the primitive type.
BASE_OBJECT_SPECS = {
    "register": RegisterSpec,
    "swap": SwapSpec,
    "test-and-set": TestAndSetSpec,
    "compare-and-swap": CompareAndSwapSpec,
}


def spec_for_base_object(kind: str, initial: Any = None):
    """The sequential spec for a one-word base object of ``kind``.

    ``kind`` is one of ``register`` / ``swap`` / ``test-and-set`` /
    ``compare-and-swap``; ``initial`` seeds the object's initial value
    (defaulting to 0 for test-and-set, whose unset value is 0).
    """
    try:
        cls = BASE_OBJECT_SPECS[kind]
    except KeyError:
        raise ValidationError(
            f"unknown base-object kind {kind!r} (expected one of "
            f"{sorted(BASE_OBJECT_SPECS)})"
        ) from None
    if kind == "test-and-set" and initial is None:
        return cls()
    return cls(initial)


def crossing_pairs(history: Sequence[CompletedOperation]) -> int:
    """Number of concurrent (interval-overlapping) operation pairs — a
    quick measure of how contended a history is."""
    count = 0
    for i, a in enumerate(history):
        for b in history[i + 1:]:
            if not (a.end < b.start or b.end < a.start):
                count += 1
    return count


def check_linearizable(
    history: Sequence[CompletedOperation],
    spec,
    max_nodes: int = 2_000_000,
) -> Tuple[bool, Optional[List[str]]]:
    """Decide linearizability of ``history`` against ``spec``.

    Returns ``(True, witness)`` with a witness order of op_ids, or
    ``(False, None)``.  Raises :class:`~repro.errors.ValidationError` if the
    search exceeds ``max_nodes`` (history too large to decide).
    """
    ops = list(history)
    ids = {op.op_id for op in ops}
    if len(ids) != len(ops):
        raise ValidationError("duplicate operation ids in history")
    by_id = {op.op_id: op for op in ops}

    # Precompute precedence: preds[x] = ids that must come before x.
    preds: Dict[str, set] = {op.op_id: set() for op in ops}
    for a in ops:
        for b in ops:
            if a.end < b.start:
                preds[b.op_id].add(a.op_id)

    failed = set()
    nodes = 0
    witness: List[str] = []

    def search(remaining: frozenset, state: Any) -> bool:
        nonlocal nodes
        if not remaining:
            return True
        key = (remaining, state)
        if key in failed:
            return False
        nodes += 1
        if nodes > max_nodes:
            raise ValidationError(
                f"linearizability search exceeded {max_nodes} nodes"
            )
        for op_id in sorted(remaining):
            if preds[op_id] & remaining:
                continue  # a predecessor is still pending
            op = by_id[op_id]
            new_state, result = spec.apply(state, op.op, op.args)
            if result != op.result:
                continue
            witness.append(op_id)
            if search(remaining - {op_id}, new_state):
                return True
            witness.pop()
        failed.add(key)
        return False

    ok = search(frozenset(ids), spec.initial_state())
    return (True, list(witness)) if ok else (False, None)


def certified_linearization(
    history: Sequence[CompletedOperation],
    spec,
    max_nodes: int = 2_000_000,
):
    """Like :func:`check_linearizable`, but also certify the witness.

    Returns ``(ok, witness, certificate)`` where ``certificate`` is a
    :class:`~repro.certify.certificates.Certificate` for the witness
    order (``None`` when the history is not linearizable): the
    independent verifier re-applies the order against its own
    sequential spec, so the linearization claim no longer rests on this
    checker's search being correct.
    """
    ok, witness = check_linearizable(history, spec, max_nodes=max_nodes)
    if not ok:
        return ok, witness, None
    from repro.certify.emit import linearization_certificate

    return ok, witness, linearization_certificate(spec, history, witness)


#: Annotation tag emitted by composed objects for generic operation markers.
OBJECT_OP_TAG = "object.op"


def history_from_trace(trace, object_name: str) -> List[CompletedOperation]:
    """Collect the completed operations recorded via OBJECT_OP_TAG markers.

    Composed objects (e.g. the [AAD+93] snapshots) annotate each high-level
    operation's begin/end; this converts those markers into
    :class:`CompletedOperation` records with trace-seq intervals.
    """
    prefix = object_name + "."
    open_ops: Dict[str, Dict] = {}
    completed: List[CompletedOperation] = []
    for event in trace:
        if event.is_step() and event.obj_name and (
            event.obj_name == object_name or event.obj_name.startswith(prefix)
        ):
            # Tighten intervals to the operation's own primitive steps: the
            # issuing process is sequential, so any step it takes between an
            # op's begin and end markers belongs to that op.
            for started in open_ops.values():
                if started["pid"] == event.pid:
                    if started["first_step"] is None:
                        started["first_step"] = event.seq
                    started["last_step"] = event.seq
            continue
        if not event.is_annotation() or event.tag != OBJECT_OP_TAG:
            continue
        info = event.payload
        if info.get("object") != object_name:
            continue
        if info["phase"] == "begin":
            open_ops[info["op_id"]] = {
                "pid": event.pid,
                "op": info["op"],
                "args": tuple(info.get("args", ())),
                "start": event.seq,
                "first_step": None,
                "last_step": None,
            }
        else:
            started = open_ops.pop(info["op_id"], None)
            if started is None:
                raise ValidationError(
                    f"end marker without begin for op {info['op_id']}"
                )
            start = started["first_step"]
            end = started["last_step"]
            if start is None:
                start, end = started["start"], event.seq
            completed.append(
                CompletedOperation(
                    op_id=info["op_id"],
                    pid=started["pid"],
                    op=started["op"],
                    args=started["args"],
                    result=info.get("result"),
                    start=start,
                    end=end,
                )
            )
    return completed
