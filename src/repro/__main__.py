"""Command-line interface: the paper's results from a shell.

Installed as the ``repro`` console script (``python -m repro`` is the
same entry point).  Usage::

    repro bounds [--n-max 32] [--k-max 4]
    repro simulate [--k 2] [--x 1] [--m 3] [--seed 0]
    repro falsify [--k 1] [--x 1] [--m 1] [--runs 10]
    repro approx [--m 2] [--eps-exp 16]
    repro check [--seed 0]
    repro campaign [--seeds 50] [--workers N] [--chunk-size C]
                   [--base-object swap] [--checkpoint PATH]
                   [--resume [PATH]] [--strict]
                   [--verify-certificates] [--certificates-dir DIR]
    repro explore [--scenario truncated | --base-object swap]
                  [--workers N] [--symmetry] [--packed/--no-packed]
                  [--verify-certificates]
                  [--checkpoint PATH] [--resume [PATH]] [--strict]
    repro certify emit [--scenario falsify] --out DIR
    repro certify verify [PATH ...] [--dir DIR] [--deep]
    repro serve --state DIR [--port 8765] [--workers N]
    repro bench run [--quick] [--experiments E13,E14]
    repro bench compare [--baseline baselines/]

``bounds`` prints the Theorem 3 table; ``simulate`` runs the revisionist
simulation on a correct workload and checks the Lemma 28 invariant;
``falsify`` feeds it an under-provisioned consensus protocol and reports
the violations; ``approx`` runs the Appendix D reduction and shows the
ε-independent step count; ``check`` runs the Appendix B lemma checkers on
a random augmented-snapshot execution; ``campaign`` runs the safety
oracles as hardware-parallel seed/fuzz campaigns through
:mod:`repro.campaign`, printing per-experiment reports with throughput
telemetry (results are byte-identical for any worker count — see
docs/CAMPAIGNS.md); ``explore`` runs the bounded-exhaustive model
checker sharded over schedule-prefix subtrees, optionally verifying the
sharded report against a serial run (``--symmetry`` reduces
full-symmetric protocols under process permutation, ``--no-packed``
falls back to the object-tuple configuration encoding — see
docs/PERFORMANCE.md); ``--base-object`` selects the memory primitive
the scenario is built from (register / swap / test-and-set /
compare-and-swap / the large-register emulation — see
EXPERIMENTS.md E17); ``certify`` emits and verifies the
witness certificates of :mod:`repro.certify` (docs/CERTIFICATES.md) —
machine-checkable claims that an independent verifier replays without
trusting the searcher that produced them; ``campaign
--verify-certificates`` applies the same gate inside the engine,
rejecting worker chunks whose certificates fail to replay;
``bench`` measures the EXPERIMENTS.md
experiments (E1–E17), writes schema-versioned ``BENCH_*.json`` artifacts,
and regression-gates them against a committed baseline (see
docs/BENCHMARKS.md); ``serve`` runs the campaign engine as a long-lived
multi-tenant job service — submit sweeps over HTTP, stream progress,
kill and restart the server without losing work (docs/SERVICE.md).

Both campaign commands are fault tolerant: failed or hung chunks are
retried with backoff (``--max-retries``), completed chunks are journaled
crash-safely with ``--checkpoint PATH``, and an interrupted run resumes
with ``--resume [PATH]`` — skipping finished chunks and merging to a
report identical to an uninterrupted run.  Chunks that exhaust their
retries degrade to an explicit partial result naming the missing unit
ranges; ``--strict`` turns a partial result into a non-zero exit.
"""

from __future__ import annotations

import argparse
import math
import os
import sys

#: ``--base-object`` spelling -> the canonical explore scenario built on
#: that memory primitive.  ``register`` names the racing-consensus
#: scenario (the paper's read/write normal form); the rest name the
#: multi-primitive families of :mod:`repro.protocols.rmw` and
#: :mod:`repro.protocols.largereg`.
BASE_OBJECT_SCENARIOS = {
    "register": "racing",
    "swap": "swap",
    "tas": "tas",
    "cas": "cas",
    "large-register": "large-register",
}


def cmd_bounds(args) -> int:
    from repro.core import bound_table

    rows = bound_table(
        ns=range(2, args.n_max + 1),
        ks=range(1, args.k_max + 1),
        xs=range(1, args.k_max + 1),
    )
    print(f"{'n':>4} {'k':>3} {'x':>3} {'lower':>6} {'upper':>6} {'tight':>6}")
    for row in rows:
        print(
            f"{row.n:>4} {row.k:>3} {row.x:>3} {row.lower:>6} "
            f"{row.upper:>6} {'yes' if row.tight else '':>6}"
        )
    return 0


def cmd_simulate(args) -> int:
    from repro.core import check_correspondence, run_simulation
    from repro.protocols import RotatingWrites
    from repro.runtime import RandomScheduler

    n = (args.k + 1 - args.x) * args.m + args.x
    protocol = RotatingWrites(n, args.m, rounds=2 * args.m + 2)
    inputs = list(range(10, 11 + args.k))
    outcome = run_simulation(
        protocol, k=args.k, x=args.x, inputs=inputs,
        scheduler=RandomScheduler(args.seed), max_steps=800_000,
    )
    print(f"protocol: {protocol.name}  simulators: {args.k + 1} "
          f"(covering ranks {list(outcome.setup.covering_ranks)})")
    print(f"decisions: {outcome.decisions}")
    print(f"block-updates: {outcome.block_update_count()}  "
          f"revisions: {outcome.revision_count()}")
    correspondence = check_correspondence(outcome)
    print(f"Lemma 28 correspondence: "
          f"{'OK' if correspondence.ok else 'VIOLATED'} "
          f"(σ length {len(correspondence.entries)}, "
          f"{correspondence.hidden_steps} hidden)")
    return 0 if correspondence.ok and outcome.all_decided else 1


def cmd_falsify(args) -> int:
    from repro.core import (
        kset_space_lower_bound,
        run_simulation,
        simulated_process_count,
    )
    from repro.protocols import (
        KSetAgreementTask,
        RacingConsensus,
        TruncatedProtocol,
    )
    from repro.runtime import RandomScheduler

    n = simulated_process_count(args.m, args.k, args.x)
    bound = kset_space_lower_bound(n, args.k, args.x)
    # With n derived from m, m < bound always holds (the simulation pivot):
    # there is always something to falsify.
    assert args.m < bound
    task = KSetAgreementTask(args.k)
    hits = 0
    for seed in range(args.runs):
        protocol = TruncatedProtocol(RacingConsensus(n), args.m)
        outcome = run_simulation(
            protocol, k=args.k, x=args.x, inputs=list(range(args.k + 1)),
            scheduler=RandomScheduler(seed), max_steps=400_000,
        )
        violations = outcome.task_violations(task)
        if violations:
            hits += 1
            if hits == 1:
                print(f"seed {seed}: {violations[0]}")
    print(f"{hits}/{args.runs} runs exhibited a safety violation "
          f"(n={n}, m={args.m}, Theorem 3 bound={bound})")
    return 0


def cmd_approx(args) -> int:
    from repro.core import run_approx_simulation
    from repro.protocols import AveragingApprox, TruncatedProtocol
    from repro.runtime import RoundRobinScheduler

    eps = 2.0 ** -args.eps_exp
    protocol = TruncatedProtocol(AveragingApprox(2 * args.m, eps), args.m)
    outcome = run_approx_simulation(protocol, [0, 1], RoundRobinScheduler())
    hoest_shavit = math.log(1 / eps, 3)
    print(f"ε = 2^-{args.eps_exp}; Hoest-Shavit bound log3(1/ε) = "
          f"{hoest_shavit:.1f} steps")
    print(f"simulator steps (m={args.m}): {outcome.max_steps_taken} "
          f"— ε-independent")
    print(f"decisions: {outcome.decisions}")
    if outcome.max_steps_taken < hoest_shavit:
        print("the simulation beats the lower bound: a correct protocol "
              "with this m cannot exist (Appendix D)")
    return 0


def cmd_check(args) -> int:
    from repro.augmented import AugmentedSnapshot
    from repro.augmented.linearization import check_all
    from repro.runtime import RandomScheduler, System

    system = System()
    aug = AugmentedSnapshot("M", components=3, pids=[0, 1, 2])

    def body(proc):
        for round_no in range(4):
            yield from aug.block_update(
                proc.pid, [(proc.pid + round_no) % 3], [round_no]
            )
            yield from aug.scan(proc.pid)

    for _ in range(3):
        system.add_process(body)
    system.run(RandomScheduler(args.seed), max_steps=500_000)
    violations = check_all(system.trace, aug)
    print(f"steps: {len(system.trace.steps())}  "
          f"atomic: {sum(aug.atomic_counts.values())}  "
          f"yield: {sum(aug.yield_counts.values())}")
    if violations:
        for violation in violations:
            print("VIOLATION:", violation)
        return 1
    print("all Appendix B lemma checks passed")
    return 0


def _resolve_fault_tolerance(args):
    """Shared ``--checkpoint/--resume/--max-retries`` flag resolution.

    Returns ``(base_checkpoint_path_or_None, resume_bool, RetryPolicy)``
    or an integer exit code on invalid combinations.
    """
    from repro.campaign import RetryPolicy

    if args.max_retries < 0:
        print(f"error: --max-retries must be >= 0, got {args.max_retries}",
              file=sys.stderr)
        return 2
    checkpoint = args.checkpoint
    resume = False
    if args.resume is not None:
        resume = True
        if args.resume:
            checkpoint = args.resume
        elif checkpoint is None:
            print("error: --resume needs a path (or combine with "
                  "--checkpoint PATH)", file=sys.stderr)
            return 2
    return checkpoint, resume, RetryPolicy(max_retries=args.max_retries)


def _notice_fresh_resume(checkpoint, resume) -> None:
    """Announce a ``--resume`` whose journal doesn't exist yet.

    First boots of scripted runs (``repro campaign --checkpoint P
    --resume``) hit this path before any journal has been written; the
    engine starts fresh and creates the journal (and any missing parent
    directories) rather than failing, and this notice says so — silence
    here would look like chunks were being skipped.
    """
    if resume and checkpoint and not os.path.exists(checkpoint):
        print(f"notice: no checkpoint found at {checkpoint}; starting "
              f"fresh (the journal will be created there)",
              file=sys.stderr)


def cmd_campaign(args) -> int:
    from repro.campaign import (
        fuzz_campaign,
        sweep_protocol_campaign,
        sweep_simulation_campaign,
    )
    from repro.core import kset_space_lower_bound
    from repro.protocols import (
        CASConsensus,
        KSetAgreementTask,
        MinSeen,
        RacingConsensus,
        SwapConsensus,
        TASConsensus,
        TruncatedProtocol,
    )

    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(f"error: --chunk-size must be >= 1, got {args.chunk_size}",
              file=sys.stderr)
        return 2
    resolved = _resolve_fault_tolerance(args)
    if isinstance(resolved, int):
        return resolved
    base_checkpoint, resume, retry = resolved

    def fault_options(name):
        """Per-experiment engine options; checkpoints get a name suffix
        so ``--experiment all`` journals each campaign separately."""
        checkpoint = (
            f"{base_checkpoint}.{name}" if base_checkpoint else None
        )
        _notice_fresh_resume(checkpoint, resume)
        return dict(checkpoint=checkpoint, resume=resume, retry=retry)

    seeds = range(args.seeds)
    options = dict(
        workers=args.workers, chunk_size=args.chunk_size,
        verify_certificates=args.verify_certificates,
    )
    failures = 0
    partials = 0
    emitted: list = []

    def show(title, result, ok):
        nonlocal failures, partials
        print(f"{title}:")
        print(f"   {result.report.summary()}")
        print(f"   {result.telemetry.summary()}")
        emitted.extend(getattr(result.report, "certificates", None) or [])
        if not result.complete:
            partials += 1
            print("   PARTIAL RESULT — missing "
                  + "; ".join(result.missing))
        if not ok:
            failures += 1
            print("   EXPECTATION FAILED")

    if args.experiment in ("falsify", "all"):
        bound = kset_space_lower_bound(2, 1, 1)
        result = sweep_simulation_campaign(
            TruncatedProtocol(RacingConsensus(2), 1), k=1, x=1,
            inputs=[0, 1], seeds=seeds, task=KSetAgreementTask(1),
            **options, **fault_options("falsify"),
        )
        show(
            f"Theorem 3 falsifier (consensus on 1 register, bound {bound})",
            result,
            result.report.safety_violations == result.report.runs,
        )
        print(f"   first violating seed: "
              f"{result.report.first_violating_seed}")

    # Per-base-object protocol sweeps: each entry is the safe instance
    # of the family built on that primitive (expected clean under every
    # schedule the sweep draws).
    protocol_sweeps = {
        "register": (
            (RacingConsensus(3), [0, 1, 1], KSetAgreementTask(1)),
            (MinSeen(3, rounds=2), [4, 1, 9], KSetAgreementTask(3)),
        ),
        "swap": (
            (SwapConsensus(2), [0, 1], KSetAgreementTask(1)),
        ),
        "tas": (
            (TASConsensus(2), [0, 1], KSetAgreementTask(1)),
        ),
        "cas": (
            (CASConsensus(3), [0, 1, 2], KSetAgreementTask(1)),
        ),
    }

    if args.experiment in ("protocol", "all"):
        for protocol, inputs, task in protocol_sweeps[args.base_object]:
            result = sweep_protocol_campaign(
                protocol, inputs, seeds, task=task, **options,
                **fault_options(f"protocol-{protocol.name}"),
            )
            show(f"protocol safety: {protocol.name}", result,
                 result.report.clean)

    if args.experiment in ("fuzz", "all"):
        result = fuzz_campaign(
            TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
            KSetAgreementTask(1), runs=args.fuzz_runs,
            schedule_length=40, seed=args.seed, **options,
            **fault_options("fuzz"),
        )
        # The must-violate expectation is vacuous for a zero-run campaign:
        # an empty fuzz report is clean by construction, not evidence the
        # protocol is safe.
        ok = result.report.runs == 0 or not result.report.clean
        show("schedule fuzz (truncated consensus, must violate)", result, ok)
        if result.report.minimized is not None:
            print(f"   minimized counterexample: "
                  f"{result.report.minimized.minimized}")

    if args.certificates_dir is not None and emitted:
        from repro.certify.certificates import write_certificates

        paths = write_certificates(args.certificates_dir, emitted)
        print(f"\n{len(paths)} certificate(s) written to "
              f"{args.certificates_dir}")

    strict_partial = args.strict and partials
    if failures:
        print(f"\ncampaign FAILED: {failures} expectation(s) violated")
    elif strict_partial:
        print(f"\ncampaign INCOMPLETE (--strict): {partials} partial "
              f"result(s)")
    else:
        print("\ncampaign complete: all expectations held")
    return 0 if failures == 0 and not strict_partial else 1


def cmd_explore(args) -> int:
    from repro.analysis import explore_protocol
    from repro.campaign import explore_campaign
    from repro.protocols import (
        AnonymousSweepConsensus,
        CASConsensus,
        KSetAgreementTask,
        LargeRegisterEmulation,
        MinSeen,
        RacingConsensus,
        RegularRegisterTask,
        SwapConsensus,
        TASConsensus,
        TruncatedProtocol,
    )

    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.chunk_size is not None and args.chunk_size < 1:
        print(f"error: --chunk-size must be >= 1, got {args.chunk_size}",
              file=sys.stderr)
        return 2
    if args.symmetry and not args.packed:
        # Fail fast: otherwise every chunk would burn its retry budget
        # on the same ValidationError inside the workers.
        print("error: --symmetry requires the packed encoding "
              "(drop --no-packed)", file=sys.stderr)
        return 2
    resolved = _resolve_fault_tolerance(args)
    if isinstance(resolved, int):
        return resolved
    checkpoint, resume, retry = resolved
    _notice_fresh_resume(checkpoint, resume)

    scenarios = {
        # name: (protocol, inputs, task, expect_safe)
        "truncated": (
            TruncatedProtocol(RacingConsensus(3), 1), [0, 1, 2],
            KSetAgreementTask(1), False,
        ),
        "racing": (
            RacingConsensus(2), [0, 1], KSetAgreementTask(1), True,
        ),
        "minseen": (
            MinSeen(2), [0, 1], KSetAgreementTask(2), True,
        ),
        # Genuinely unsafe at m < n: the checker finds (and the runtime
        # replays) a two-value decision, the covering-attack frontier
        # the anonymous module's docstring describes.
        "anonymous": (
            AnonymousSweepConsensus(3, m=2), [0, 1, 1],
            KSetAgreementTask(1), False,
        ),
        # Base-object scenarios: a single swap cell solves consensus for
        # n=2 but not n=3 (the third process can adopt a chained-out
        # value); one test-and-set bit plus posted proposals likewise
        # break at n=3; compare-and-swap has infinite consensus number,
        # so its scenario is expected safe.
        "swap": (
            SwapConsensus(3), [0, 1, 2], KSetAgreementTask(1), False,
        ),
        "cas": (
            CASConsensus(3), [0, 1, 2], KSetAgreementTask(1), True,
        ),
        "tas": (
            TASConsensus(3), [0, 1, 2], KSetAgreementTask(1), False,
        ),
        # The deliberately broken clear-then-set sweep order: some
        # reader/writer interleaving sees no set bit at all.
        "large-register": (
            LargeRegisterEmulation(3, (2,), safe=False), [0, 0],
            RegularRegisterTask(3, (2,)), False,
        ),
    }
    if args.base_object is not None:
        if args.scenario is not None:
            print("error: give --scenario or --base-object, not both",
                  file=sys.stderr)
            return 2
        scenario = BASE_OBJECT_SCENARIOS[args.base_object]
    else:
        scenario = args.scenario or "truncated"
    protocol, inputs, task, expect_safe = scenarios[scenario]

    result = explore_campaign(
        protocol, inputs, task,
        max_configs=args.max_configs, max_steps=args.max_steps,
        stop_at_first_violation=not args.collect_all,
        prefix_depth=args.prefix_depth,
        workers=args.workers, chunk_size=args.chunk_size,
        checkpoint=checkpoint, resume=resume, retry=retry,
        packed=args.packed, symmetry=args.symmetry,
        verify_certificates=args.verify_certificates,
    )
    mode = "" if args.packed else ", unpacked"
    if args.symmetry:
        mode += ", symmetry-reduced"
    if args.verify_certificates:
        mode += ", certificate-gated"
    print(f"exploring {protocol.name} on inputs {inputs} "
          f"(prefix depth {args.prefix_depth}{mode}):")
    print(f"   {result.report.summary()}")
    print(f"   {result.telemetry.summary()}")
    if not result.complete:
        print("   PARTIAL RESULT — missing " + "; ".join(result.missing))
    if result.report.counterexample is not None:
        print(f"   counterexample schedule: {result.report.counterexample}")

    failures = 0
    if args.strict and not result.complete:
        failures += 1
    if result.report.safe != expect_safe:
        failures += 1
        print(f"   EXPECTATION FAILED: expected "
              f"{'safe' if expect_safe else 'unsafe'}")

    if args.verify_serial:
        serial = explore_protocol(
            protocol, inputs, task,
            max_configs=args.max_configs, max_steps=args.max_steps,
            stop_at_first_violation=not args.collect_all,
            prefix_depth=args.prefix_depth,
            packed=args.packed, symmetry=args.symmetry,
        )
        if result.report == serial and repr(result.report) == repr(serial):
            print("   serial verification: sharded report identical")
        else:
            failures += 1
            print("   serial verification FAILED:")
            print(f"      sharded: {result.report!r}")
            print(f"      serial:  {serial!r}")
    return 0 if failures == 0 else 1


def cmd_serve(args) -> int:
    from repro.serve.service import serve_main

    return serve_main(args)


def _add_fault_tolerance_args(subparser) -> None:
    """Install the shared checkpoint/resume/retry flags on a subparser."""
    subparser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="journal completed chunks to PATH (crash-safe)",
    )
    subparser.add_argument(
        "--resume", nargs="?", const="", default=None, metavar="PATH",
        help="resume from a checkpoint, skipping finished chunks "
             "(bare --resume reuses the --checkpoint path)",
    )
    subparser.add_argument(
        "--max-retries", type=int, default=2,
        help="retry budget per failed or hung chunk (default: 2)",
    )
    subparser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any chunk permanently failed",
    )


def build_parser() -> argparse.ArgumentParser:
    # prog matches the installed console-script entry point (setup.cfg:
    # ``repro = repro.__main__:main``) so help text, docs, and the
    # ``python -m repro`` spelling all name the same command.
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Revisionist Simulations (PODC 2018), executable.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bounds = sub.add_parser("bounds", help="print the Theorem 3 bound table")
    bounds.add_argument("--n-max", type=int, default=16)
    bounds.add_argument("--k-max", type=int, default=3)
    bounds.set_defaults(func=cmd_bounds)

    simulate = sub.add_parser("simulate", help="run the simulation")
    simulate.add_argument("--k", type=int, default=2)
    simulate.add_argument("--x", type=int, default=1)
    simulate.add_argument("--m", type=int, default=3)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=cmd_simulate)

    falsify = sub.add_parser("falsify", help="falsify below the bound")
    falsify.add_argument("--k", type=int, default=1)
    falsify.add_argument("--x", type=int, default=1)
    falsify.add_argument("--m", type=int, default=1)
    falsify.add_argument("--runs", type=int, default=10)
    falsify.set_defaults(func=cmd_falsify)

    approx = sub.add_parser("approx", help="Appendix D reduction")
    approx.add_argument("--m", type=int, default=2)
    approx.add_argument("--eps-exp", type=int, default=16)
    approx.set_defaults(func=cmd_approx)

    check = sub.add_parser("check", help="Appendix B lemma checks")
    check.add_argument("--seed", type=int, default=0)
    check.set_defaults(func=cmd_check)

    campaign = sub.add_parser(
        "campaign", help="parallel seed-sweep / fuzz campaigns"
    )
    campaign.add_argument("--seeds", type=int, default=50)
    campaign.add_argument("--workers", type=int, default=None)
    campaign.add_argument("--chunk-size", type=int, default=None)
    campaign.add_argument(
        "--experiment",
        choices=["falsify", "protocol", "fuzz", "all"],
        default="all",
    )
    campaign.add_argument(
        "--base-object",
        choices=["register", "swap", "tas", "cas"],
        default="register",
        help="memory primitive for the protocol-safety sweeps "
             "(default: register)",
    )
    campaign.add_argument("--fuzz-runs", type=int, default=200)
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument(
        "--verify-certificates", action="store_true",
        help="make workers emit witness certificates and reject any "
             "chunk whose certificates fail independent replay",
    )
    campaign.add_argument(
        "--certificates-dir", default=None, metavar="DIR",
        help="write the final reports' certificates to DIR",
    )
    _add_fault_tolerance_args(campaign)
    campaign.set_defaults(func=cmd_campaign)

    explore = sub.add_parser(
        "explore", help="sharded bounded-exhaustive model checking"
    )
    explore.add_argument(
        "--scenario",
        choices=[
            "truncated", "racing", "minseen", "anonymous",
            "swap", "cas", "tas", "large-register",
        ],
        default=None,
        help="named scenario to explore (default: truncated)",
    )
    explore.add_argument(
        "--base-object",
        choices=sorted(BASE_OBJECT_SCENARIOS),
        default=None,
        help="pick the canonical scenario for a memory primitive "
             "(mutually exclusive with --scenario)",
    )
    explore.add_argument("--max-configs", type=int, default=200_000)
    explore.add_argument("--max-steps", type=int, default=30)
    explore.add_argument("--prefix-depth", type=int, default=2)
    explore.add_argument("--workers", type=int, default=None)
    explore.add_argument("--chunk-size", type=int, default=None)
    explore.add_argument(
        "--collect-all", action="store_true",
        help="keep exploring past the first violation",
    )
    explore.add_argument(
        "--symmetry", action="store_true",
        help="canonicalize configurations under process permutation "
             "(reduces protocols that declare full symmetry)",
    )
    explore.add_argument(
        "--packed", action=argparse.BooleanOptionalAction, default=True,
        help="pack configurations into integer keys (--no-packed falls "
             "back to the object-tuple encoding; reports are identical)",
    )
    explore.add_argument(
        "--verify-serial", action="store_true",
        help="re-run serially and assert the sharded report is identical",
    )
    explore.add_argument(
        "--verify-certificates", action="store_true",
        help="make workers emit witness certificates and reject any "
             "chunk whose certificates fail independent replay",
    )
    _add_fault_tolerance_args(explore)
    explore.set_defaults(func=cmd_explore)

    from repro.bench.cli import add_bench_parser
    from repro.certify.cli import add_certify_parser
    from repro.serve.service import add_serve_arguments

    serve = sub.add_parser(
        "serve", help="run the campaign job service (docs/SERVICE.md)"
    )
    add_serve_arguments(serve)
    serve.set_defaults(func=cmd_serve)

    add_bench_parser(sub)
    add_certify_parser(sub)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
