"""Lexicographically ordered vector timestamps.

A :class:`VectorTimestamp` wraps a tuple of non-negative integers, one
component per process, and compares *lexicographically* — the order the
paper writes as ``t' ≻ t``.  Lexicographic (rather than component-wise)
ordering is what makes the New-timestamp rule of Figure 1 produce a value
strictly larger than every timestamp contained in the scanned history
(Corollary 11): bumping your own component by one wins any comparison that
earlier components do not already decide.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.errors import ValidationError


class VectorTimestamp:
    """An immutable vector of non-negative integers, ordered lexicographically.

    Timestamps are compared and hashed constantly in the augmented-object
    hot path (history sets, view selection), so the hash is computed once
    at construction — tuples don't cache theirs — and all six comparison
    operators are written out directly instead of derived via
    ``functools.total_ordering`` (whose derived operators cost an extra
    ``__lt__``/``__eq__`` round-trip per call).
    """

    __slots__ = ("components", "_hash")

    def __init__(self, components: Iterable[int]) -> None:
        comps = tuple(int(c) for c in components)
        if not comps:
            raise ValidationError("timestamp needs at least one component")
        if any(c < 0 for c in comps):
            raise ValidationError("timestamp components must be non-negative")
        object.__setattr__(self, "components", comps)
        object.__setattr__(self, "_hash", hash(comps))

    def __setattr__(self, key, value):  # immutability guard
        raise AttributeError("VectorTimestamp is immutable")

    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, size: int) -> "VectorTimestamp":
        """The minimum timestamp on ``size`` components."""
        return cls((0,) * size)

    def bump(self, index: int) -> "VectorTimestamp":
        """A copy with component ``index`` incremented by one."""
        comps = list(self.components)
        try:
            comps[index] += 1
        except IndexError:
            raise ValidationError(
                f"component {index} out of range for size {len(comps)}"
            ) from None
        return VectorTimestamp(comps)

    @property
    def size(self) -> int:
        return len(self.components)

    # ------------------------------------------------------------------
    def _check_comparable(self, other) -> None:
        if len(self.components) != len(other.components):
            raise ValidationError(
                "cannot compare timestamps of different sizes "
                f"({len(self.components)} vs {len(other.components)})"
            )

    def __eq__(self, other) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        return self.components == other.components

    def __lt__(self, other) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        self._check_comparable(other)
        return self.components < other.components

    def __le__(self, other) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        self._check_comparable(other)
        return self.components <= other.components

    def __gt__(self, other) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        self._check_comparable(other)
        return self.components > other.components

    def __ge__(self, other) -> bool:
        if not isinstance(other, VectorTimestamp):
            return NotImplemented
        self._check_comparable(other)
        return self.components >= other.components

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"VectorTimestamp{self.components}"

    def as_tuple(self) -> Tuple[int, ...]:
        """The raw component tuple."""
        return self.components
