"""A linearizable Get-timestamp object from a single-writer snapshot.

The paper notes (Section 3.2) that lines 23–25 of Figure 1 — scan the
history, form a new vector timestamp by copying every other process's
operation count and incrementing your own, then publish — "may be viewed as
a Get-timestamp operation".  :class:`TimestampObject` packages exactly that
pattern as a standalone object: each Get-timestamp returns a
:class:`~repro.timestamps.vector.VectorTimestamp` strictly larger than every
timestamp returned by any Get-timestamp that completed earlier.

It is built from a :class:`~repro.memory.snapshot.SingleWriterSnapshot`
(itself implementable from registers via
:class:`~repro.memory.afek.AfekSnapshot`), so the whole stack bottoms out in
reads and writes.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from repro.errors import ModelError
from repro.memory.snapshot import SingleWriterSnapshot
from repro.runtime.events import Invoke
from repro.timestamps.vector import VectorTimestamp


class TimestampObject:
    """Get-timestamp for a fixed set of processes.

    Component ``i`` of the backing snapshot counts how many timestamps
    process ``i`` has generated.  ``get_timestamp(pid)`` scans, copies the
    counts, bumps its own, publishes the new count, and returns the vector.
    Monotonicity across processes follows the paper's Lemma 12 argument:
    two concurrent generations differ in whose component got bumped, and a
    completed earlier generation is visible in any later scan.
    """

    def __init__(self, name: str, pids: Sequence[int]) -> None:
        self.name = name
        self.pids = list(pids)
        self._slot = {pid: i for i, pid in enumerate(self.pids)}
        if len(self._slot) != len(self.pids):
            raise ModelError("duplicate pids")
        self.counts = SingleWriterSnapshot(f"{name}.counts", self.pids, initial=0)

    def register_count(self) -> int:
        """One register (snapshot component) per process."""
        return self.counts.register_count()

    def get_timestamp(
        self, pid: int
    ) -> Generator[Invoke, Any, VectorTimestamp]:
        """Generator method: yields two snapshot steps, returns the timestamp."""
        slot = self._slot.get(pid)
        if slot is None:
            raise ModelError(f"pid {pid} does not own a component of {self.name}")
        counts = yield Invoke(self.counts, "scan")
        components: List[int] = list(counts)
        components[slot] += 1
        yield Invoke(self.counts, "update", (slot, components[slot]))
        return VectorTimestamp(components)
