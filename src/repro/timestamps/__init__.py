"""Vector timestamps (Section 2, "Timestamps").

The paper uses a variant of vector timestamps [Fid91, Mat89]: values are
vectors of non-negative integers with one component per process, ordered
*lexicographically* (not component-wise), and a Get-timestamp operation must
return a value strictly larger than all previously returned values.
"""

from repro.timestamps.object import TimestampObject
from repro.timestamps.vector import VectorTimestamp

__all__ = ["VectorTimestamp", "TimestampObject"]
