"""The Theorem 4 construction: shortest solo paths as a deterministic policy.

Given a nondeterministic solo-terminating machine, the converted machine's
ν′ picks, in each (state, local-view) pair, the first step of a *shortest*
terminating solo path — where the local view fixes the contents of every
register the process has accessed, and registers it has never touched may
hold any value from the machine's (finite) value domain, since the path
only needs to be a solo execution from *some* reachable configuration
consistent with the view.

The obstruction-freedom argument is the paper's: once a solo run has
touched every register it will ever access, its local view pins the
responses, so each real step follows the current shortest path and the
remaining path length strictly decreases — the run terminates within the
first path's length.  :func:`solo_run_machine` instruments exactly that
measure so tests can assert the strict decrease.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import DivergenceError, ValidationError
from repro.memory.registers import Register
from repro.runtime.events import Invoke
from repro.runtime.process import Process
from repro.solo.machines import READ, NondetMachine

View = Tuple[Tuple[int, Any], ...]  # sorted (register, value) pairs


def _freeze(view: Dict[int, Any]) -> View:
    return tuple(sorted(view.items()))


def shortest_solo_path(
    machine: NondetMachine,
    state: Any,
    view: Dict[int, Any],
    max_nodes: int = 200_000,
) -> List[Tuple]:
    """A shortest terminating solo path from ``state`` under ``view``.

    BFS over (machine state, register view).  Reads of registers absent
    from the view branch over the machine's value domain — the construction
    may pick the friendliest consistent configuration.  Raises
    :class:`~repro.errors.DivergenceError` if no terminating path exists
    within ``max_nodes`` (i.e. the machine is not nondeterministic solo
    terminating, or the search budget is too small).
    """
    start = (state, _freeze(view))
    if machine.is_final(state):
        return []
    seen = {start}
    queue = deque([(state, dict(view), [])])
    nodes = 0
    while queue:
        current, current_view, path = queue.popleft()
        nodes += 1
        if nodes > max_nodes:
            break
        for step in machine.steps(current):
            if step[0] == READ:
                register = step[1]
                if register in current_view:
                    responses = (current_view[register],)
                else:
                    responses = tuple(machine.value_domain)
            else:
                responses = (step[2],)
            for response in responses:
                next_state = machine.transition(current, step, response)
                next_view = dict(current_view)
                next_view[step[1]] = response if step[0] == READ else step[2]
                key = (next_state, _freeze(next_view))
                if key in seen:
                    continue
                seen.add(key)
                next_path = path + [step]
                if machine.is_final(next_state):
                    return next_path
                queue.append((next_state, next_view, next_path))
    raise DivergenceError(
        f"{machine.name}: no terminating solo path found from {state!r} "
        f"within {max_nodes} nodes — not nondeterministic solo terminating?"
    )


class ConvertedMachine:
    """The deterministic machine Π′ of Theorem 4.

    Exposes ``next_step(state, view)`` = ν′: the first step of a shortest
    solo path, memoized per (state, view).  Uses exactly the registers of
    the original machine — the space-preservation half of the theorem.
    """

    def __init__(self, machine: NondetMachine, max_nodes: int = 200_000):
        self.machine = machine
        self.name = f"{machine.name}|derandomized"
        self.registers = machine.registers
        self.max_nodes = max_nodes
        self._policy: Dict[Tuple[Any, View], Tuple] = {}
        self._lengths: Dict[Tuple[Any, View], int] = {}

    def next_step(self, state: Any, view: Dict[int, Any]) -> Tuple:
        """ν′: the first step of a shortest solo path from (state, view)."""
        key = (state, _freeze(view))
        if key not in self._policy:
            path = shortest_solo_path(
                self.machine, state, view, max_nodes=self.max_nodes
            )
            if not path:
                raise ValidationError("next_step on a final state")
            self._policy[key] = path[0]
            self._lengths[key] = len(path)
        return self._policy[key]

    def path_length(self, state: Any, view: Dict[int, Any]) -> int:
        """The solo-termination measure: length of the chosen shortest path."""
        key = (state, _freeze(view))
        if key not in self._lengths:
            self.next_step(state, view)
        return self._lengths[key]


def make_registers(machine: NondetMachine, prefix: str = "R") -> List[Register]:
    """Fresh registers for one machine instance (shared by all processes)."""
    return [
        Register(f"{prefix}[{index}]", initial=None)
        for index in range(machine.registers)
    ]


def converted_body(
    converted: ConvertedMachine,
    registers: Sequence[Register],
    value: Any,
) -> Callable[[Process], Generator]:
    """Runtime body executing the deterministic Π′ on shared registers."""
    machine = converted.machine
    if len(registers) != machine.registers:
        raise ValidationError(
            f"{machine.name} needs {machine.registers} registers, got "
            f"{len(registers)}"
        )

    def body(proc: Process) -> Generator:
        state = machine.initial_state(value)
        view: Dict[int, Any] = {}
        while not machine.is_final(state):
            step = converted.next_step(state, view)
            if step[0] == READ:
                response = yield Invoke(registers[step[1]], "read")
            else:
                response = yield Invoke(registers[step[1]], "write", (step[2],))
            view[step[1]] = response
            state = machine.transition(state, step, response)
        return machine.output(state)

    return body


def nondet_body(
    machine: NondetMachine,
    registers: Sequence[Register],
    value: Any,
    chooser: Callable[[Sequence[Tuple]], Tuple],
) -> Callable[[Process], Generator]:
    """Runtime body executing the *original* Π with an explicit chooser.

    ``chooser`` resolves ν's nondeterminism (e.g. ``random.Random(seed)
    .choice`` for a randomized protocol, or an adversarial policy).  Every
    execution of the converted machine is also producible here with the
    right chooser — the "every execution of Π′ is an execution of Π" half
    of Theorem 4, which tests check by replaying recorded step sequences.
    """
    if len(registers) != machine.registers:
        raise ValidationError(
            f"{machine.name} needs {machine.registers} registers, got "
            f"{len(registers)}"
        )

    def body(proc: Process) -> Generator:
        state = machine.initial_state(value)
        while not machine.is_final(state):
            step = chooser(machine.steps(state))
            if step[0] == READ:
                response = yield Invoke(registers[step[1]], "read")
            else:
                response = yield Invoke(registers[step[1]], "write", (step[2],))
            state = machine.transition(state, step, response)
        return machine.output(state)

    return body


def solo_run_machine(
    converted: ConvertedMachine,
    value: Any,
    initial_contents: Optional[Dict[int, Any]] = None,
    max_steps: int = 10_000,
) -> Tuple[Any, List[int], int]:
    """Run Π′ solo from given register contents.

    Returns ``(output, measures, covered_at)``: ``measures`` is the
    sequence of shortest-path lengths observed before each step — the
    Theorem 4 potential function — and ``covered_at`` is the index of the
    first measure taken after the local view covered every register (the
    paper's prefix α′).  The potential may rise while unknown registers can
    falsify optimistic branches, but from ``covered_at`` on the view pins
    every response, so the potential strictly decreases — the
    obstruction-freedom argument.  The run executes against a private copy
    of the registers (it is solo by construction).
    """
    machine = converted.machine
    contents: Dict[int, Any] = {
        index: None for index in range(machine.registers)
    }
    if initial_contents:
        contents.update(initial_contents)
    state = machine.initial_state(value)
    view: Dict[int, Any] = {}
    measures: List[int] = []
    covered_at: Optional[int] = None
    for _ in range(max_steps):
        if machine.is_final(state):
            return machine.output(state), measures, (
                covered_at if covered_at is not None else len(measures)
            )
        if covered_at is None and len(view) == machine.registers:
            covered_at = len(measures)
        measures.append(converted.path_length(state, view))
        step = converted.next_step(state, view)
        if step[0] == READ:
            response = contents[step[1]]
        else:
            contents[step[1]] = step[2]
            response = step[2]
        view[step[1]] = response
        state = machine.transition(state, step, response)
    raise DivergenceError(
        f"{converted.name}: solo run exceeded {max_steps} steps"
    )
