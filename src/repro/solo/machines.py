"""The Appendix A nondeterministic machine model and example machines.

A nondeterministic protocol specifies, per process, a state machine
``M_p = (S_p, F_p, i_p, ν_p, δ_p, ω_p)``: states, final states, an initial
state, a *set* of possible next steps per non-final state, a transition
function over (state, step, response), and an output function on final
states.  Steps are plain register accesses — ``("read", r)`` or
``("write", r, v)`` — and writes return the value written (the paper's
convention).

The example machines are deliberately adversarial to naive determinization:
each has infinite solo runs (a scheduler of nondeterministic choices can
spin forever) while still being nondeterministic solo terminating (a
terminating choice sequence always exists) — exactly the gap Theorem 4's
shortest-path construction closes.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

from repro.errors import ValidationError

READ = "read"
WRITE = "write"


class NondetMachine:
    """Base class for Appendix A machines.

    Attributes:
        name: label.
        registers: number of registers the machine may access (its space).
        value_domain: finite set of values that may appear in registers —
            needed so the shortest-solo-path search can branch over the
            possible contents of registers the process has never accessed.
    """

    name: str = "machine"
    registers: int = 1
    value_domain: Tuple[Any, ...] = (None,)

    def initial_state(self, value: Any) -> Any:
        """The initial state i_p for an input value."""
        raise NotImplementedError

    def is_final(self, state: Any) -> bool:
        """Whether the state is in F_p."""
        raise NotImplementedError

    def output(self, state: Any) -> Any:
        """ω: the value returned in a final state."""
        raise NotImplementedError

    def steps(self, state: Any) -> Tuple[Tuple, ...]:
        """ν: the possible next steps in a non-final state (non-empty)."""
        raise NotImplementedError

    def transition(self, state: Any, step: Tuple, response: Any) -> Any:
        """δ: the next state after ``step`` returned ``response``."""
        raise NotImplementedError


class SpinOrCommit(NondetMachine):
    """Spin on reads or commit a token — the minimal Theorem 4 witness.

    One register.  From the start state the machine may either read the
    register (and spin in place) or write its token; after writing it must
    read once more and terminates if it sees its own token, else returns to
    the start.  Solo, the write→read path always terminates in two steps,
    but the all-reads choice sequence never does: nondeterministic solo
    termination without obstruction-freedom.
    """

    def __init__(self, token: Any = "token") -> None:
        self.name = f"spin-or-commit({token!r})"
        self.registers = 1
        self.token = token
        self.value_domain = (None, token, "other")

    def initial_state(self, value: Any) -> Any:
        return ("start", value)

    def is_final(self, state: Any) -> bool:
        return state[0] == "done"

    def output(self, state: Any) -> Any:
        if not self.is_final(state):
            raise ValidationError("output of a non-final state")
        return state[1]

    def steps(self, state: Any) -> Tuple[Tuple, ...]:
        phase, _value = state
        if phase == "start":
            return ((READ, 0), (WRITE, 0, self.token))
        if phase == "wrote":
            return ((READ, 0),)
        raise ValidationError(f"no steps in state {state!r}")

    def transition(self, state: Any, step: Tuple, response: Any) -> Any:
        phase, value = state
        if phase == "start":
            if step[0] == READ:
                return ("start", value)  # spin
            return ("wrote", value)
        if phase == "wrote":
            if response == self.token:
                return ("done", value)
            return ("start", value)
        raise ValidationError(f"no transition from {state!r}")


class TokenRace(NondetMachine):
    """A two-register race with nondeterministic retry — a randomized-
    consensus-shaped machine.

    The process nondeterministically picks a register to claim with its
    input, then verifies both registers: if both hold the same value it
    decides that value; otherwise it may either retry (rewriting a
    register) or re-verify.  Infinite solo runs exist (perpetual
    re-verification), but a solo process can always claim both registers
    and decide — nondeterministic solo termination.

    States: ``(phase, value, seen)`` where phase walks
    start → check0 → check1 → (done | start).
    """

    def __init__(self, values: Iterable[Any] = (0, 1)) -> None:
        self.values = tuple(values)
        self.name = f"token-race({self.values})"
        self.registers = 2
        self.value_domain = (None,) + self.values

    def initial_state(self, value: Any) -> Any:
        if value not in self.values:
            raise ValidationError(
                f"input {value!r} not in declared values {self.values}"
            )
        return ("start", value, None)

    def is_final(self, state: Any) -> bool:
        return state[0] == "done"

    def output(self, state: Any) -> Any:
        if not self.is_final(state):
            raise ValidationError("output of a non-final state")
        return state[1]

    def steps(self, state: Any) -> Tuple[Tuple, ...]:
        phase, value, _seen = state
        if phase == "start":
            # Claim either register, or idle-read the first one.
            return ((WRITE, 0, value), (WRITE, 1, value), (READ, 0))
        if phase == "check0":
            return ((READ, 0),)
        if phase == "check1":
            return ((READ, 1),)
        raise ValidationError(f"no steps in state {state!r}")

    def transition(self, state: Any, step: Tuple, response: Any) -> Any:
        phase, value, seen = state
        if phase == "start":
            if step[0] == READ:
                return ("start", value, None)  # idle
            return ("check0", value, None)
        if phase == "check0":
            return ("check1", value, response)
        if phase == "check1":
            if seen is not None and seen == response:
                return ("done", seen, None)
            # Mismatch: adopt what register 0 held if anything, else keep.
            adopted = seen if seen is not None else value
            return ("start", adopted, None)
        raise ValidationError(f"no transition from {state!r}")
