"""Appendix A: nondeterministic solo termination → obstruction-freedom.

A protocol satisfies *nondeterministic solo termination* [FHS98] if from
every reachable configuration, every process has **some** solo execution
that decides — the progress property shared by randomized wait-free
protocols.  Theorem 4 converts any such protocol into a *deterministic
obstruction-free* protocol using the same registers: in every state, take
the first step of a shortest terminating solo path.  Consequently every
space lower bound proved for obstruction-free protocols (Theorem 3,
Appendix D) applies to randomized wait-free protocols too.

* :mod:`repro.solo.machines` — the Appendix A machine model
  ``(S, F, i, ν, δ, ω)`` plus concrete nondeterministic example machines.
* :mod:`repro.solo.conversion` — the shortest-solo-path derandomization and
  runtime adapters for both the nondeterministic original and the converted
  deterministic machine.
"""

from repro.solo.conversion import (
    ConvertedMachine,
    converted_body,
    nondet_body,
    shortest_solo_path,
)
from repro.solo.machines import (
    NondetMachine,
    SpinOrCommit,
    TokenRace,
)

__all__ = [
    "NondetMachine",
    "SpinOrCommit",
    "TokenRace",
    "shortest_solo_path",
    "ConvertedMachine",
    "converted_body",
    "nondet_body",
]
